//! Umbrella crate of the EasyTracker reproduction workspace: hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`), and re-exports the member crates so examples can name them
//! uniformly.
//!
//! Start with [`easytracker`] — the paper's contribution — then see the
//! examples:
//!
//! * `quickstart` — one controller, three inferior languages;
//! * `stack_heap`, `loop_invariant`, `recursion_tree`, `riscv_viewer`,
//!   `debugging_game`, `pt_export` — the paper's §III tools (Figs. 1,
//!   6–10);
//! * `minidbg` — an interactive command-line debugger over the API;
//! * `reverse_debugging`, `lockstep_equivalence` — the §V future-work
//!   extensions.

pub use easytracker;
pub use game;
pub use mi;
pub use miniasm;
pub use minic;
pub use minipy;
pub use pttrace;
pub use state;
pub use viz;
