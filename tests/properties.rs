//! Property-based tests spanning the substrates: expression semantics
//! checked against a reference evaluator for both languages, state-model
//! serialization, allocator invariants under random workloads, and
//! record/replay equivalence.

use proptest::prelude::*;
use state::{Location, Prim, Value};

// ---------------------------------------------------------------------------
// A tiny reference expression language, rendered to MiniC and MiniPy.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    /// Program variable by index (differential tests only; `usize::MAX`
    /// is the loop-counter placeholder).
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    /// Reference semantics (wrapping like both our VMs at i64 width;
    /// values stay far from overflow by construction).
    fn eval(&self) -> i64 {
        match self {
            E::Lit(v) => *v as i64,
            E::Var(_) => unreachable!("arb_expr never generates variables"),
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::Neg(a) => a.eval().wrapping_neg(),
        }
    }

    /// Renders with full parentheses (valid in both languages).
    fn render(&self) -> String {
        match self {
            E::Lit(v) => format!("({v})"),
            E::Var(_) => unreachable!("arb_expr never generates variables"),
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Neg(a) => format!("(-{})", a.render()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-50i32..50).prop_map(E::Lit);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

fn run_minic(expr: &str) -> i64 {
    // Compute in `long` and take a residue so any i32 exit-code concerns
    // disappear: return ((v % 1000) + 1000) % 1000.
    let src =
        format!("int main() {{ long v = {expr}; return (int)(((v % 1000) + 1000) % 1000); }}");
    let program = minic::compile("prop.c", &src).expect("compiles");
    minic::vm::Vm::new(&program)
        .run_to_completion()
        .expect("runs")
}

fn run_minipy(expr: &str) -> i64 {
    let src = format!("print((({expr}) % 1000 + 1000) % 1000)");
    let out = minipy::run_source(&src, &mut minipy::NullTracer).expect("runs");
    out.output.trim().parse().expect("integer output")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MiniC evaluates integer arithmetic exactly like the reference.
    #[test]
    fn minic_matches_reference(e in arb_expr()) {
        let expected = ((e.eval() % 1000) + 1000) % 1000;
        prop_assert_eq!(run_minic(&e.render()), expected);
    }

    /// MiniPy agrees too (Python's `%` on positives matches here since the
    /// programs normalize into [0, 1000)).
    #[test]
    fn minipy_matches_reference(e in arb_expr()) {
        let expected = ((e.eval() % 1000) + 1000) % 1000;
        prop_assert_eq!(run_minipy(&e.render()), expected);
    }

    /// And therefore the two languages agree with each other — the
    /// cross-language consistency the language-agnostic API relies on.
    #[test]
    fn languages_agree(e in arb_expr()) {
        prop_assert_eq!(run_minic(&e.render()), run_minipy(&e.render()));
    }
}

// ---------------------------------------------------------------------------
// State model: arbitrary value trees round-trip through JSON.
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(|v| Value::primitive(Prim::Int(v), "int")),
        // Finite floats only: NaN breaks equality, infinities break JSON.
        (-1e12f64..1e12).prop_map(|v| Value::primitive(Prim::Float(v), "double")),
        "[a-z]{0,12}".prop_map(|s| Value::primitive(Prim::Str(s), "str")),
        any::<bool>().prop_map(|b| Value::primitive(Prim::Bool(b), "bool")),
        Just(Value::none("NoneType")),
        Just(Value::invalid("int*")),
        "[a-z]{1,8}".prop_map(|n| Value::function(n, "function")),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(|items| Value::list(items, "list")),
            prop::collection::vec((inner.clone(), inner.clone()), 0..3)
                .prop_map(|entries| Value::dict(entries, "dict")),
            prop::collection::vec(("[a-z]{1,6}", inner.clone()), 0..3)
                .prop_map(|fields| Value::structure(fields, "S")),
            (inner, any::<u64>()).prop_map(|(v, addr)| {
                Value::reference(v.with_address(addr).with_location(Location::Heap), "ref")
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn values_roundtrip_json(v in arb_value()) {
        let json = serde_json::to_string(&v).expect("serializes");
        let back: Value = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&v, &back);
        // Rendering never panics and is non-empty.
        prop_assert!(!state::render_value(&v).is_empty());
        // Traversal metrics are consistent.
        prop_assert!(v.depth() >= 1);
        prop_assert!(v.node_count() >= 1);
    }
}

// ---------------------------------------------------------------------------
// Allocator invariants under random malloc/free workloads.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocator_blocks_never_overlap(ops in prop::collection::vec((0u8..3, 1u64..256), 1..60)) {
        use minic::alloc::Allocator;
        use minic::mem::Memory;
        let mut alloc = Allocator::new();
        let mut mem = Memory::new(0);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (op, size) in ops {
            match op {
                0 | 1 => {
                    let addr = alloc.malloc(&mut mem, size).expect("arena big enough");
                    // Alignment invariant.
                    prop_assert_eq!(addr % minic::alloc::ALIGN, 0);
                    // No overlap with any live block.
                    for &(a, s) in &live {
                        prop_assert!(addr + size <= a || a + s <= addr,
                            "overlap: new [{}, {}) vs live [{}, {})", addr, addr + size, a, a + s);
                    }
                    live.push((addr, size));
                }
                _ => {
                    if let Some((addr, _)) = live.pop() {
                        alloc.free(addr).expect("valid free");
                        prop_assert!(!alloc.is_live(addr));
                    }
                }
            }
        }
        // Bookkeeping agrees with our model.
        let model: u64 = live.iter().map(|(_, s)| *s).sum();
        prop_assert_eq!(alloc.live_bytes(), model);
    }
}

// ---------------------------------------------------------------------------
// Record/replay equivalence on random straight-line programs.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn replay_preserves_step_structure(values in prop::collection::vec(-100i64..100, 2..10)) {
        use easytracker::{PyTracker, Recording, ReplayTracker, Tracker};
        let src: String = values
            .iter()
            .enumerate()
            .map(|(i, v)| format!("v{i} = {v}\n"))
            .collect();
        let mut live = PyTracker::load("gen.py", &src).unwrap();
        let rec = Recording::capture(&mut live).unwrap();
        live.terminate();
        prop_assert_eq!(rec.len(), values.len());

        let mut t = ReplayTracker::new(rec);
        t.start().unwrap();
        let mut steps = 0;
        while t.get_exit_code().is_none() {
            let frame = t.get_current_frame().unwrap();
            // Variables assigned so far are visible with their values.
            for (i, v) in values.iter().enumerate().take(steps) {
                let name = format!("v{i}");
                let var = frame.variable(&name).unwrap();
                prop_assert_eq!(
                    state::render_value(var.value().deref_fully()),
                    v.to_string()
                );
            }
            t.step().unwrap();
            steps += 1;
        }
        prop_assert_eq!(steps, values.len());
    }
}

// ---------------------------------------------------------------------------
// Differential testing: random *structured programs* (assignments, ifs,
// bounded whiles) rendered to both MiniC and MiniPy must leave identical
// final states. This exercises the full front ends + engines against each
// other, not just the expression evaluators.
// ---------------------------------------------------------------------------

/// Variables `v0..v3`; each `while` gets its own dedicated counter `k{n}`
/// incremented exactly once per iteration, so every program terminates.
#[derive(Debug, Clone)]
enum PStmt {
    Assign(usize, E),
    If(PCond, Vec<PStmt>, Vec<PStmt>),
    While(PCond, usize, Vec<PStmt>),
}

#[derive(Debug, Clone)]
enum PCond {
    Lt(E, E),
    Eq(E, E),
    Ne(E, E),
}

const NVARS: usize = 4;

fn var_expr() -> impl Strategy<Value = E> {
    // Reuse the arithmetic generator but keep magnitudes small.
    (-9i32..10).prop_map(E::Lit)
}

fn small_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![var_expr(), (0usize..NVARS).prop_map(E::Var)];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn cond() -> impl Strategy<Value = PCond> {
    prop_oneof![
        (small_expr(), small_expr()).prop_map(|(a, b)| PCond::Lt(a, b)),
        (small_expr(), small_expr()).prop_map(|(a, b)| PCond::Eq(a, b)),
        (small_expr(), small_expr()).prop_map(|(a, b)| PCond::Ne(a, b)),
    ]
}

fn stmts(depth: u32) -> BoxedStrategy<Vec<PStmt>> {
    let assign = (0usize..NVARS, small_expr()).prop_map(|(v, e)| PStmt::Assign(v, e));
    if depth == 0 {
        return prop::collection::vec(assign, 1..4).boxed();
    }
    let stmt = prop_oneof![
        3 => (0usize..NVARS, small_expr()).prop_map(|(v, e)| PStmt::Assign(v, e)),
        1 => (cond(), stmts(depth - 1), stmts(depth - 1))
            .prop_map(|(c, a, b)| PStmt::If(c, a, b)),
        1 => (1usize..5, stmts(depth - 1)).prop_map(|(bound, body)| {
            PStmt::While(PCond::Lt(E::Var(usize::MAX), E::Lit(bound as i32)), 0, body)
        }),
    ];
    prop::collection::vec(stmt, 1..4).boxed()
}

/// Renders/normalizes: assigns each `while` a unique counter id.
fn number_loops(body: &mut [PStmt], next: &mut usize) {
    for s in body {
        match s {
            PStmt::While(_, id, inner) => {
                *id = *next;
                *next += 1;
                number_loops(inner, next);
            }
            PStmt::If(_, a, b) => {
                number_loops(a, next);
                number_loops(b, next);
            }
            PStmt::Assign(..) => {}
        }
    }
}

fn expr_text(e: &E) -> String {
    match e {
        E::Lit(v) => format!("({v})"),
        E::Var(i) if *i == usize::MAX => "LOOPVAR".into(),
        E::Var(i) => format!("v{i}"),
        E::Add(a, b) => format!("({} + {})", expr_text(a), expr_text(b)),
        E::Sub(a, b) => format!("({} - {})", expr_text(a), expr_text(b)),
        E::Mul(a, b) => format!("({} * {})", expr_text(a), expr_text(b)),
        E::Neg(a) => format!("(-{})", expr_text(a)),
    }
}

fn cond_text(c: &PCond, loopvar: Option<usize>) -> String {
    let sub = |e: &E| {
        let mut t = expr_text(e);
        if let Some(k) = loopvar {
            t = t.replace("LOOPVAR", &format!("k{k}"));
        }
        t
    };
    match c {
        PCond::Lt(a, b) => format!("{} < {}", sub(a), sub(b)),
        PCond::Eq(a, b) => format!("{} == {}", sub(a), sub(b)),
        PCond::Ne(a, b) => format!("{} != {}", sub(a), sub(b)),
    }
}

fn render_c(body: &[PStmt], out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    for s in body {
        match s {
            PStmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = {};\n", expr_text(e)));
            }
            PStmt::If(c, a, b) => {
                out.push_str(&format!("{pad}if ({}) {{\n", cond_text(c, None)));
                render_c(a, out, indent + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_c(b, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            PStmt::While(c, id, inner) => {
                out.push_str(&format!("{pad}k{id} = 0;\n"));
                out.push_str(&format!("{pad}while ({}) {{\n", cond_text(c, Some(*id))));
                render_c(inner, out, indent + 1);
                out.push_str(&format!("{pad}    k{id} = k{id} + 1;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn render_py(body: &[PStmt], out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    for s in body {
        match s {
            PStmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = {}\n", expr_text(e)));
            }
            PStmt::If(c, a, b) => {
                out.push_str(&format!("{pad}if {}:\n", cond_text(c, None)));
                render_py(a, out, indent + 1);
                out.push_str(&format!("{pad}else:\n"));
                render_py(b, out, indent + 1);
            }
            PStmt::While(c, id, inner) => {
                out.push_str(&format!("{pad}k{id} = 0\n"));
                out.push_str(&format!("{pad}while {}:\n", cond_text(c, Some(*id))));
                render_py(inner, out, indent + 1);
                out.push_str(&format!("{pad}    k{id} = k{id} + 1\n"));
            }
        }
    }
}

fn count_loops(body: &[PStmt]) -> usize {
    body.iter()
        .map(|s| match s {
            PStmt::While(_, _, inner) => 1 + count_loops(inner),
            PStmt::If(_, a, b) => count_loops(a) + count_loops(b),
            PStmt::Assign(..) => 0,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn structured_programs_agree_across_languages(mut body in stmts(2)) {
        let mut next = 0usize;
        number_loops(&mut body, &mut next);
        let nloops = count_loops(&body);
        prop_assume!(nloops == next);

        // Common prologue: deterministic initial values.
        let mut c_src = String::from("int main() {\n");
        // `long` on the C side: both languages then wrap at 64 bits, so
        // overflow semantics agree (MiniPy ints are wrapping i64).
        for v in 0..NVARS {
            c_src.push_str(&format!("    long v{v} = {};\n", v as i32 + 1));
        }
        for k in 0..nloops {
            c_src.push_str(&format!("    long k{k} = 0;\n"));
        }
        render_c(&body, &mut c_src, 1);
        // Residue of a mixed hash of the final state.
        c_src.push_str("    long h = 0;\n");
        for v in 0..NVARS {
            c_src.push_str(&format!("    h = h * 31 + (v{v} % 1000);\n"));
        }
        c_src.push_str("    return (int)(((h % 1000) + 1000) % 1000);\n}\n");

        let mut py_src = String::new();
        for v in 0..NVARS {
            py_src.push_str(&format!("v{v} = {}\n", v as i32 + 1));
        }
        for k in 0..nloops {
            py_src.push_str(&format!("k{k} = 0\n"));
        }
        render_py(&body, &mut py_src, 0);
        py_src.push_str("h = 0\n");
        for v in 0..NVARS {
            // Match C's truncating % on possibly-negative values (Python's
            // % floors; MiniPy has no conditional expressions, so spell it
            // out as statements).
            py_src.push_str(&format!("if v{v} >= 0:\n    m{v} = v{v} % 1000\n"));
            py_src.push_str(&format!("else:\n    m{v} = 0 - ((0 - v{v}) % 1000)\n"));
            py_src.push_str(&format!("h = h * 31 + m{v}\n"));
        }
        py_src.push_str("print((h % 1000 + 1000) % 1000)\n");

        let program = minic::compile("diff.c", &c_src).expect("C side compiles");
        let c_result = minic::vm::Vm::new(&program)
            .run_to_completion()
            .expect("C side runs");

        let module = minipy::parser::parse(&py_src).expect("Python side parses");
        let mut interp = minipy::Interp::new(module);
        interp.set_max_steps(Some(2_000_000));
        let out = interp.run(&mut minipy::NullTracer).expect("Python side runs");
        let py_result: i64 = out.output.trim().parse().expect("integer output");

        prop_assert_eq!(c_result, py_result, "\nC:\n{}\nPy:\n{}", c_src, py_src);
    }
}

// ---------------------------------------------------------------------------
// Panic-freedom: the front ends must reject arbitrary garbage with an
// error, never a panic (tools feed them student-typed text).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn minic_frontend_never_panics(src in "[ -~\n]{0,200}") {
        let _ = minic::compile("fuzz.c", &src);
    }

    #[test]
    fn minipy_frontend_never_panics(src in "[ -~\n]{0,200}") {
        let _ = minipy::parser::parse(&src);
    }

    #[test]
    fn miniasm_frontend_never_panics(src in "[ -~\n]{0,200}") {
        let _ = miniasm::asm::assemble("fuzz.s", &src);
    }

    /// Structured-looking garbage too: C-ish token soup.
    #[test]
    fn minic_token_soup_never_panics(words in prop::collection::vec(
        prop_oneof![
            Just("int"), Just("while"), Just("if"), Just("("), Just(")"),
            Just("{"), Just("}"), Just(";"), Just("x"), Just("="),
            Just("1"), Just("+"), Just("*"), Just("&"), Just("switch"),
            Just("case"), Just(":"), Just("do"), Just("struct"), Just(","),
        ], 0..60))
    {
        let src = words.join(" ");
        let _ = minic::compile("soup.c", &src);
    }
}

// ---------------------------------------------------------------------------
// Record/replay reason coverage over the conformance generators.
//
// The proptest above (`replay_preserves_step_structure`) checks plain
// stepping; these deterministic runs drive the richer control-point
// scenario from the conformance crate — line breakpoint, watchpoint,
// tracked function with `finish`, `next` — and require that the live and
// replayed reason sequences agree and that, across the seed set, every
// PauseReason variant a run can produce is actually exercised.
// ---------------------------------------------------------------------------

#[test]
fn replay_reason_sequences_cover_every_pause_variant() {
    let driver = conformance::Driver::new();
    let mut seen = std::collections::BTreeSet::new();
    for seed in 0..8 {
        let (divergences, live_tags) = driver.check_control_points_c(seed);
        assert!(
            divergences.is_empty(),
            "C seed {seed}: {}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        seen.extend(live_tags);
        let (divergences, live_tags) = driver.check_control_points_py(seed);
        assert!(
            divergences.is_empty(),
            "Py seed {seed}: {}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        seen.extend(live_tags);
    }
    for variant in [
        "Started",
        "Breakpoint",
        "Watchpoint",
        "FunctionCall",
        "FunctionReturn",
        "Step",
        "Exited",
    ] {
        assert!(
            seen.contains(variant),
            "reason {variant} never exercised by the control-point scenario \
             (seen: {seen:?})"
        );
    }
}

/// The remaining variant: a tracker that has not started reports
/// `NotStarted`, live and replayed alike.
#[test]
fn not_started_matches_between_live_and_replay() {
    use easytracker::Tracker;
    let src = conformance::gen::render_c(&conformance::gen::gen_program(1));
    let mut live = easytracker::MiTracker::load_c("gen.c", &src).expect("load");
    assert_eq!(live.pause_reason().tag(), "NotStarted");
    let recording = {
        let mut t = easytracker::MiTracker::load_c("gen.c", &src).expect("load");
        let r = easytracker::Recording::capture(&mut t).expect("capture");
        t.terminate();
        r
    };
    let replay = easytracker::ReplayTracker::new(recording);
    assert_eq!(replay.pause_reason().tag(), "NotStarted");
    live.terminate();
}
