//! Multi-session host integration tests against a real `mi-server
//! --host` child process: many concurrent supervised sessions multiplex
//! over one engine process, and each must behave byte-for-byte like a
//! session that owns a dedicated process.

use easytracker::{MiTracker, PauseReason, ProgramSpec, Supervision, Tracker};
use mi::HostHandle;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn server_bin() -> PathBuf {
    conformance::mi_server_bin().expect("mi_server binary builds")
}

fn fast_supervision() -> Supervision {
    Supervision {
        deadline: Some(Duration::from_secs(10)),
        ping_deadline: Duration::from_millis(500),
        max_retries: 1,
        max_respawns: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        jitter_seed: 0x5e55_10f5_0000_0001,
    }
}

fn load_hosted(host: &HostHandle, file: &str, source: &str) -> MiTracker {
    MiTracker::load_spec(
        ProgramSpec::c(file, source).via_host(host),
        obs::Registry::new(),
        fast_supervision(),
        None,
    )
    .expect("hosted session opens")
}

/// One observation per pause: the reason plus the full serialized state
/// snapshot. Byte-identical across deployments or the test fails.
fn observe(t: &mut MiTracker, reason: &PauseReason) -> String {
    let mut obs = format!("pause={reason}");
    if reason.is_alive() {
        let state = t.get_state().expect("state");
        obs.push_str(" state=");
        obs.push_str(&serde_json::to_string(&state).expect("state serializes"));
    } else {
        obs.push_str(&format!(" exit={:?}", t.get_exit_code()));
    }
    obs
}

const MAX_STEPS: usize = 300;

/// Runs the whole step/inspect script solo — one tracker, one dedicated
/// `mi-server` child — and returns the observation trace: the oracle.
fn solo_oracle(file: &str, source: &str) -> Vec<String> {
    let mut t = MiTracker::load_spec(
        ProgramSpec::c(file, source).via_server(&server_bin()),
        obs::Registry::new(),
        fast_supervision(),
        None,
    )
    .expect("solo session spawns");
    let mut trace = Vec::new();
    let reason = t.start().expect("start");
    trace.push(observe(&mut t, &reason));
    let mut alive = reason.is_alive();
    while alive && trace.len() < MAX_STEPS {
        let reason = t.step().expect("step");
        trace.push(observe(&mut t, &reason));
        alive = reason.is_alive();
    }
    t.terminate();
    trace
}

/// The tentpole proof: ≥8 concurrent sessions in ONE host child,
/// advanced in interleaved lockstep (round-robin, one step per pass),
/// each checked pause-for-pause against its solo-process oracle run.
/// The generated programs have different lengths, so sessions complete
/// out of order while their neighbours keep stepping — a finished or
/// terminated session must never disturb a live one.
#[test]
fn interleaved_sessions_match_solo_process_oracles() {
    const N: usize = 8;
    let programs: Vec<(String, String)> = (0..N)
        .map(|i| {
            let program = conformance::gen::gen_program(0xc0de + i as u64);
            (format!("lock{i}.c"), conformance::gen::render_c(&program))
        })
        .collect();
    let oracles: Vec<Vec<String>> = programs
        .iter()
        .map(|(file, source)| solo_oracle(file, source))
        .collect();

    let host = HostHandle::spawn_process(server_bin(), 4).expect("host spawns");
    let mut sessions: Vec<MiTracker> = programs
        .iter()
        .map(|(file, source)| load_hosted(&host, file, source))
        .collect();
    let mut traces: Vec<Vec<String>> = vec![Vec::new(); N];
    let mut alive = [true; N];
    for (i, t) in sessions.iter_mut().enumerate() {
        let reason = t.start().expect("start");
        traces[i].push(observe(t, &reason));
        alive[i] = reason.is_alive();
    }
    let mut finished_order: Vec<usize> = Vec::new();
    while alive.iter().any(|a| *a) {
        for (i, t) in sessions.iter_mut().enumerate() {
            if !alive[i] || traces[i].len() >= MAX_STEPS {
                alive[i] = false;
                continue;
            }
            let reason = t.step().expect("step");
            traces[i].push(observe(t, &reason));
            if !reason.is_alive() {
                alive[i] = false;
                finished_order.push(i);
                // Ending one tenant mid-interleave must not perturb the
                // others (their traces are checked below).
                t.terminate();
            }
        }
    }
    for (i, (trace, oracle)) in traces.iter().zip(oracles.iter()).enumerate() {
        assert_eq!(trace, oracle, "session {i} diverged from its solo oracle");
    }
    // Different program lengths really did finish out of order (sorted
    // order would mean the interleave degenerated to sequential runs).
    let mut sorted = finished_order.clone();
    sorted.sort_unstable();
    assert!(
        finished_order.len() > 1 && finished_order != sorted,
        "expected out-of-order completion, got {finished_order:?}"
    );
}

/// Per-session config is invisible to the neighbours: a breakpoint, the
/// sanitizer, and a profiler armed in session A never fire in session B
/// sharing the same host process.
#[test]
fn session_config_does_not_leak_between_tenants() {
    const PROG: &str = "int f(int n) { return n + 1; }\n\
                        int main() {\n\
                        int x = 0;\n\
                        x = f(x);\n\
                        x = f(x);\n\
                        return x;\n\
                        }\n";
    let host = HostHandle::spawn_process(server_bin(), 2).expect("host spawns");
    let mut a = load_hosted(&host, "iso.c", PROG);
    let mut b = load_hosted(&host, "iso.c", PROG);

    // Arm everything in A only.
    a.break_before_func("f", None).expect("breakpoint");
    a.set_sanitizer(true).expect("sanitizer");
    a.set_profile(obs::ProfileMode::Counting, 1)
        .expect("profiler");

    a.start().expect("start a");
    b.start().expect("start b");
    // A pauses at its breakpoint on f; B runs straight to exit.
    let ra = a.resume().expect("resume a");
    assert!(
        matches!(ra, PauseReason::Breakpoint { .. }),
        "A must hit its own breakpoint, got {ra}"
    );
    let rb = b.resume().expect("resume b");
    assert!(
        matches!(rb, PauseReason::Exited(_)),
        "B must run to exit untouched by A's breakpoint, got {rb}"
    );
    assert_eq!(b.get_exit_code(), Some(2));
    // A's profiler counted units; B's was never armed and reports none.
    while a.resume().expect("resume a").is_alive() {}
    let pa = a.profile().expect("profile a");
    assert!(pa.units > 0, "A's profiler must have counted");
    let pb = b.profile().expect("profile b");
    assert_eq!(pb.units, 0, "B's profiler was never armed");
    a.terminate();
    b.terminate();
}

/// Satellite fix regression: `Telemetry{since}` and
/// `ProfileReport{since}` cursors are per-session. Two sessions draining
/// interleaved must each see their own engine's events exactly once —
/// a shared cursor would skip or repeat.
#[test]
fn telemetry_and_profile_cursors_are_independent_across_sessions() {
    const PROG: &str = "int main() {\n\
                        int i = 0;\n\
                        while (i < 6) {\n\
                        i = i + 1;\n\
                        }\n\
                        return i;\n\
                        }\n";
    let host = HostHandle::spawn_process(server_bin(), 2).expect("host spawns");
    let mut a = load_hosted(&host, "cur.c", PROG);
    let mut b = load_hosted(&host, "cur.c", PROG);
    a.set_profile(obs::ProfileMode::Counting, 1)
        .expect("profile a");
    b.set_profile(obs::ProfileMode::Counting, 1)
        .expect("profile b");
    a.start().expect("start a");
    b.start().expect("start b");

    // Interleave: A steps + drains, then B, then A again. Cursor leakage
    // would make one session's drain advance the other's.
    let mut a_events = 0usize;
    let mut b_events = 0usize;
    let mut a_units = 0u64;
    let mut b_units = 0u64;
    for round in 0..6 {
        for (t, events, units) in [
            (&mut a, &mut a_events, &mut a_units),
            (&mut b, &mut b_events, &mut b_units),
        ] {
            if t.pause_reason().is_alive() {
                t.step().expect("step");
            }
            let frame = t.drain_telemetry().expect("telemetry");
            *events += frame.events.len();
            let report = t.profile().expect("profile");
            assert!(
                report.units >= *units,
                "round {round}: profile cursor went backwards"
            );
            *units = report.units;
        }
    }
    assert!(a_events > 0, "A drained none of its own events");
    assert!(b_events > 0, "B drained none of its own events");
    assert!(a_units > 0 && b_units > 0, "profilers must both count");
    // Draining A again immediately returns nothing new: its cursor was
    // not rewound by B's drains.
    let again = a.drain_telemetry().expect("telemetry");
    assert_eq!(
        again.events.len(),
        0,
        "A's cursor was disturbed by B's drains"
    );
    a.terminate();
    b.terminate();
}

/// Recovery matrix, session half: a session swept out of a *live* host
/// (here: closed out from under its tracker) is re-established inside
/// the same host process by journal replay — the host child itself is
/// not respawned.
#[test]
fn dead_session_is_respawned_inside_the_live_host() {
    const PROG: &str = "int main() {\n\
                        int x = 1;\n\
                        puts(\"alpha\");\n\
                        x = x + 1;\n\
                        puts(\"beta\");\n\
                        return x;\n\
                        }\n";
    let host = HostHandle::spawn_process(server_bin(), 2).expect("host spawns");
    let mut t = load_hosted(&host, "resp.c", PROG);
    t.start().expect("start");
    t.step().expect("step");
    let pid_before = host.host_pid().expect("host child pid");
    let sid_before = t.host_session_id().expect("hosted session");

    // Sweep the session out from under its tracker, as a host would
    // after e.g. the session's other endpoint vanished.
    host.close_session(sid_before);

    // The next command sees the typed SessionGone, classifies it as
    // engine loss, re-opens a session in the SAME host child, replays
    // the journal (start + step), and serves the command.
    let mut reason = t.step().expect("step after sweep");
    while reason.is_alive() {
        reason = t.resume().expect("resume");
    }
    assert_eq!(t.get_exit_code(), Some(2));
    assert_eq!(t.get_output().expect("output"), "alpha\nbeta\n");
    assert_eq!(t.respawns(), 1, "exactly one session re-establishment");
    assert_eq!(
        host.host_pid().expect("host still alive"),
        pid_before,
        "the host child must not be respawned for a session-level death"
    );
    assert_ne!(
        t.host_session_id().expect("re-opened session"),
        sid_before,
        "session ids are never recycled"
    );
    t.terminate();
}

/// Recovery matrix, process half: SIGKILL the host child and every
/// session re-establishes — the first tracker to notice respawns the
/// whole process, each tracker re-opens its own session via journal
/// replay, and both finish with oracle-identical results.
#[test]
fn dead_host_is_respawned_with_every_session_reestablished() {
    const PROG: &str = "int main() {\n\
                        int x = 0;\n\
                        x = x + 2;\n\
                        puts(\"tick\");\n\
                        x = x + 3;\n\
                        return x;\n\
                        }\n";
    let host = HostHandle::spawn_process(server_bin(), 2).expect("host spawns");
    let mut a = load_hosted(&host, "ha.c", PROG);
    let mut b = load_hosted(&host, "hb.c", PROG);
    a.start().expect("start a");
    b.start().expect("start b");
    a.step().expect("step a");
    let pid_before = host.host_pid().expect("host child pid");

    let status = std::process::Command::new("kill")
        .args(["-KILL", &pid_before.to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success());
    // Wait for the OS to reap visibility of the death.
    let deadline = Instant::now() + Duration::from_secs(5);
    while host.engine_died().is_none() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    for (name, t) in [("a", &mut a), ("b", &mut b)] {
        let mut reason = t.step().expect("step after host kill");
        while reason.is_alive() {
            reason = t.resume().expect("resume");
        }
        assert_eq!(t.get_exit_code(), Some(5), "session {name}");
        assert_eq!(t.get_output().expect("output"), "tick\n", "session {name}");
        assert_eq!(t.respawns(), 1, "session {name}");
    }
    assert_ne!(
        host.host_pid().expect("respawned host"),
        pid_before,
        "a new host child must be serving"
    );
    assert_eq!(host.respawns(), 1, "one whole-process respawn, shared");
    a.terminate();
    b.terminate();
}

/// Satellite fix regression: one client's connection dying mid-command
/// ends *its* sessions with a per-session peer-closed end — the host
/// keeps serving every other connection (no host-fatal exit path).
#[test]
fn client_death_mid_command_spares_other_connections() {
    const SLOW: &str = "int main() {\n\
                        int i = 0;\n\
                        while (i < 100000) {\n\
                        i = i + 1;\n\
                        }\n\
                        return 1;\n\
                        }\n";
    const QUICK: &str = "int main() { return 7; }";
    let host = mi::SessionHost::new(2);
    let doomed = HostHandle::connect_in_process(&host);
    let survivor = HostHandle::connect_in_process(&host);

    drop(doomed);
    let mut bystander = load_hosted(&survivor, "quick.c", QUICK);
    bystander.start().expect("start bystander");

    // The doomed client speaks the raw wire so its transport can be
    // severed while a command is mid-flight in a worker.
    let (mut wire, far) = mi::transport::duplex();
    let (ftx, frx) = far.split();
    host.accept(frx, ftx);
    fn send(
        wire: &mut mi::transport::ChannelTransport,
        seq: u64,
        session: Option<u64>,
        cmd: mi::Command,
    ) {
        use mi::transport::Transport as _;
        let bytes = serde_json::to_vec(&mi::CommandFrame {
            seq,
            cmd,
            trace: None,
            session,
        })
        .expect("frame encodes");
        wire.send(&bytes).expect("send");
    }
    fn recv(wire: &mut mi::transport::ChannelTransport) -> mi::ResponseFrame {
        use mi::transport::Transport as _;
        let bytes = wire
            .recv_deadline(Duration::from_secs(10))
            .expect("host reply");
        serde_json::from_slice(&bytes).expect("response frame")
    }
    send(
        &mut wire,
        0,
        None,
        mi::Command::OpenSession {
            file: "slow.c".into(),
            source: SLOW.into(),
            opt: 0,
        },
    );
    let sid = match recv(&mut wire).resp {
        mi::Response::SessionOpened { session } => session,
        other => panic!("expected SessionOpened, got {other:?}"),
    };
    send(&mut wire, 1, Some(sid), mi::Command::Start);
    assert!(matches!(recv(&mut wire).resp, mi::Response::Paused(_)));
    // Fire the long-running resume, then kill the client with the
    // command still executing in a worker.
    send(&mut wire, 2, Some(sid), mi::Command::Resume);
    std::thread::sleep(Duration::from_millis(20));
    drop(wire);

    // The other connection keeps being served throughout and after.
    let reason = bystander.resume().expect("bystander resume");
    assert!(matches!(reason, PauseReason::Exited(_)));
    assert_eq!(bystander.get_exit_code(), Some(7));

    // The victim's session ends as a per-session peer-closed end; the
    // bystander's session is still in the table.
    let deadline = Instant::now() + Duration::from_secs(5);
    while host.session_count() != 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(host.session_count(), 1);
    let snap = host.registry().snapshot();
    assert!(
        snap.counter("mi.host.session_end.peer_closed") >= 1,
        "the victim's end must be accounted as peer_closed"
    );
    bystander.terminate();
    host.shutdown();
}
