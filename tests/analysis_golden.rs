//! Golden-fixture coverage for the static analysis and the VM sanitizer.
//!
//! Each committed fixture under `tests/fixtures/` pins the exact
//! `(kind, line)` diagnostics the static checker reports *and* the exact
//! trap sequence the runtime sanitizer raises, so every diagnostic kind
//! is demonstrated both ways at a predicted source span. The fixtures
//! also pin the two relations the stack is built on: static findings
//! contain runtime traps, and sanitized execution is behaviour-neutral.

use state::DiagnosticKind;
use std::collections::HashSet;
use std::path::PathBuf;

struct Golden {
    file: &'static str,
    /// Exact `(kind, line)` set the static checker reports in `main`.
    statics: &'static [(DiagnosticKind, u32)],
    /// Exact `(kind, line)` sequence of runtime sanitizer traps.
    traps: &'static [(DiagnosticKind, u32)],
    /// Exit code of the sanitized run (traps never abort execution).
    exit: i64,
}

use DiagnosticKind::{DeadStore, DoubleFree, Leak, OutOfBounds, UninitRead, UseAfterFree};

const GOLDENS: &[Golden] = &[
    Golden {
        file: "uninit_read.mc",
        statics: &[(UninitRead, 3)],
        traps: &[(UninitRead, 3)],
        exit: 0,
    },
    Golden {
        file: "use_after_free_read.mc",
        statics: &[(UseAfterFree, 5)],
        traps: &[(UseAfterFree, 5)],
        exit: 7,
    },
    Golden {
        file: "use_after_free_write.mc",
        statics: &[(UseAfterFree, 6)],
        traps: &[(UseAfterFree, 6)],
        exit: 0,
    },
    Golden {
        file: "double_free.mc",
        statics: &[(DoubleFree, 4)],
        traps: &[(DoubleFree, 4)],
        exit: 0,
    },
    Golden {
        file: "out_of_bounds_read.mc",
        statics: &[(OutOfBounds, 4)],
        traps: &[(OutOfBounds, 4)],
        exit: 0,
    },
    Golden {
        file: "out_of_bounds_write.mc",
        statics: &[(OutOfBounds, 4)],
        traps: &[(OutOfBounds, 4)],
        exit: 0,
    },
    Golden {
        file: "dead_store.mc",
        // Both sides attribute a dead store to the *overwritten* store's
        // line — the defect is storing a value nobody will read.
        statics: &[(DeadStore, 2)],
        traps: &[(DeadStore, 2)],
        exit: 0,
    },
    Golden {
        file: "leak.mc",
        // Leaks are attributed to the allocation site.
        statics: &[(Leak, 2)],
        traps: &[(Leak, 2)],
        exit: 0,
    },
    Golden {
        // The double free sits on a branch the concrete run skips: the
        // may-analysis reports it, the runtime never traps. Containment
        // is one-directional by design.
        file: "branch_divergence.mc",
        statics: &[(DoubleFree, 7)],
        traps: &[],
        exit: 0,
    },
    Golden {
        file: "mixed.mc",
        statics: &[(UninitRead, 3), (DoubleFree, 6), (Leak, 7)],
        traps: &[(UninitRead, 3), (DoubleFree, 6), (Leak, 7)],
        exit: 0,
    },
    Golden {
        file: "clean.mc",
        statics: &[],
        traps: &[],
        exit: 0,
    },
];

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn compile(name: &str) -> minic::Program {
    minic::compile(name, &fixture(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Runs `program` under the sanitizer to completion, returning the trap
/// sequence and the exit code.
fn sanitized_run(name: &str, program: &minic::Program) -> (Vec<state::Diagnostic>, i64) {
    let mut vm = minic::vm::Vm::new(program);
    vm.set_sanitizer(true);
    let mut traps = Vec::new();
    let exit = loop {
        match vm.step() {
            Ok(minic::Event::SanitizerTrap(d)) => traps.push(d),
            Ok(minic::Event::Exited(code)) => break code,
            Ok(_) => {}
            Err(e) => panic!("{name}: sanitized run faulted: {e}"),
        }
    };
    (traps, exit)
}

#[test]
fn fixtures_match_their_golden_diagnostics() {
    for g in GOLDENS {
        let program = compile(g.file);

        let statics: Vec<(DiagnosticKind, u32)> = analysis::analyze(&program)
            .iter()
            .map(|d| {
                assert_eq!(d.function, "main", "{}: {d:?}", g.file);
                (d.kind, d.span)
            })
            .collect();
        let want: HashSet<_> = g.statics.iter().copied().collect();
        let got: HashSet<_> = statics.iter().copied().collect();
        assert_eq!(got, want, "{}: static findings drifted", g.file);
        assert_eq!(statics.len(), g.statics.len(), "{}: duplicates", g.file);

        let (traps, exit) = sanitized_run(g.file, &program);
        let got_traps: Vec<(DiagnosticKind, u32)> =
            traps.iter().map(|d| (d.kind, d.span)).collect();
        assert_eq!(got_traps, g.traps, "{}: trap sequence drifted", g.file);
        assert_eq!(exit, g.exit, "{}: sanitized exit code drifted", g.file);

        // The containment relation, on the goldens themselves: every
        // runtime trap is a static finding at the same place.
        for t in &got_traps {
            assert!(
                want.contains(t),
                "{}: runtime trap {t:?} has no static finding",
                g.file
            );
        }
    }
}

#[test]
fn every_diagnostic_kind_is_demonstrated_both_ways() {
    let static_kinds: HashSet<DiagnosticKind> = GOLDENS
        .iter()
        .flat_map(|g| g.statics.iter().map(|(k, _)| *k))
        .collect();
    let trap_kinds: HashSet<DiagnosticKind> = GOLDENS
        .iter()
        .flat_map(|g| g.traps.iter().map(|(k, _)| *k))
        .collect();
    for kind in DiagnosticKind::ALL {
        assert!(
            static_kinds.contains(&kind),
            "no static golden for {kind:?}"
        );
        assert!(trap_kinds.contains(&kind), "no runtime golden for {kind:?}");
    }
}

/// Every golden holds unchanged at -O1: the observation-preserving
/// optimizer must leave the static findings, the sanitizer trap
/// sequence, the exit code, and the full pause-state transcript (every
/// VM event, with store events on) byte-identical to the -O0 run — while
/// actually shrinking the program, so the pass pipeline is exercised.
#[test]
fn optimized_fixtures_match_their_goldens() {
    for g in GOLDENS {
        let program = compile(g.file);
        let (optimized, report) = analysis::opt::optimize(&program, 1)
            .unwrap_or_else(|e| panic!("{}: optimizer rejected: {e}", g.file));
        assert!(
            report.ops_after < report.ops_before,
            "{}: -O1 did not shrink the program ({} -> {})",
            g.file,
            report.ops_before,
            report.ops_after
        );

        // Static diagnostics are stable across optimization on every
        // fixture: folding and DCE never invent or drop a finding here.
        let statics: HashSet<(DiagnosticKind, u32)> = analysis::analyze(&optimized)
            .iter()
            .map(|d| (d.kind, d.span))
            .collect();
        let want: HashSet<_> = g.statics.iter().copied().collect();
        assert_eq!(statics, want, "{}: -O1 static findings drifted", g.file);

        // Same trap sequence and exit under the sanitizer.
        let (traps, exit) = sanitized_run(g.file, &optimized);
        let got_traps: Vec<(DiagnosticKind, u32)> =
            traps.iter().map(|d| (d.kind, d.span)).collect();
        assert_eq!(got_traps, g.traps, "{}: -O1 trap sequence drifted", g.file);
        assert_eq!(exit, g.exit, "{}: -O1 sanitized exit drifted", g.file);

        // Full event transcript (the debugger's pause-state stream) at
        // -O0 and -O1, store events on so writes are observable too.
        assert_eq!(
            transcript(g.file, &program),
            transcript(g.file, &optimized),
            "{}: -O1 event transcript drifted",
            g.file
        );
        assert_eq!(
            program.breakable_lines(),
            optimized.breakable_lines(),
            "{}: -O1 breakable lines drifted",
            g.file
        );
    }
}

/// Every debug event the VM emits for `program`, plus output and how the
/// run ended. A runtime fault (some fixtures double-free the plain
/// allocator on purpose) is itself an observable: both programs must
/// fault with the same message at the same point.
fn transcript(name: &str, program: &minic::Program) -> (Vec<String>, String, String) {
    let _ = name;
    let mut vm = minic::vm::Vm::new(program);
    vm.set_store_events(true);
    let mut events = Vec::new();
    let end = loop {
        match vm.step() {
            Ok(minic::Event::Exited(code)) => break format!("exit {code}"),
            Ok(ev) => events.push(format!("{ev:?}")),
            Err(e) => break format!("fault: {e}"),
        }
    };
    (events, vm.output().to_owned(), end)
}

/// On every fixture the plain VM completes, the sanitized VM must print
/// the same output and exit with the same code: traps are observations,
/// never behaviour changes. Where the plain VM *faults* (its allocator
/// rejects double frees and some wild accesses outright), the sanitized
/// VM must still run to a normal exit — that containment is what makes
/// sanitized sessions steppable past the defect.
#[test]
fn sanitized_execution_is_behaviour_neutral() {
    let mut plain_completed = 0;
    let mut plain_faulted = 0;
    for g in GOLDENS {
        let program = compile(g.file);
        let mut plain = minic::vm::Vm::new(&program);
        let plain_result = plain.run_to_completion();

        let mut sanitized = minic::vm::Vm::new(&program);
        sanitized.set_sanitizer(true);
        let san_exit = loop {
            match sanitized.step() {
                Ok(minic::Event::Exited(code)) => break code,
                Ok(_) => {}
                Err(e) => panic!("{}: sanitized run faulted: {e}", g.file),
            }
        };

        match plain_result {
            Ok(plain_exit) => {
                plain_completed += 1;
                assert_eq!(plain_exit, san_exit, "{}: exit codes differ", g.file);
                assert_eq!(
                    plain.output(),
                    sanitized.output(),
                    "{}: outputs differ",
                    g.file
                );
            }
            Err(_) => plain_faulted += 1,
        }
    }
    // The roster must keep exercising both halves of the claim.
    assert!(
        plain_completed >= 7,
        "only {plain_completed} plain-clean fixtures"
    );
    assert!(
        plain_faulted >= 2,
        "only {plain_faulted} plain-faulting fixtures"
    );
}
