//! Observability must be observation only: wiring a registry (with or
//! without sinks) through a tracker must not change a single bit of the
//! abstract state the tool sees, and the no-sink configuration must stay
//! cheap enough to leave on everywhere.

use easytracker::{init_tracker, init_tracker_with_registry, MiTracker, PauseReason, Tracker};

const C_PROG: &str = "int square(int x) {\nreturn x * x;\n}\nint main() {\nint s = 0;\nfor (int i = 1; i <= 3; i++) {\ns += square(i);\n}\nreturn s;\n}";

const PY_PROG: &str =
    "def square(x):\n    return x * x\ns = 0\nfor i in [1, 2, 3]:\n    s = s + square(i)\n";

/// Runs the same control script on a tracker and returns everything a tool
/// could observe, serialized: pause reasons, full state snapshots, output
/// and the exit code. Does not terminate, so callers can drain diagnostics
/// (like a profile) after the fact.
fn run_script(tracker: &mut dyn Tracker) -> Vec<String> {
    let mut log = Vec::new();
    let r = tracker.start().unwrap();
    log.push(format!("start: {r}"));
    tracker.track_function("square", None).unwrap();
    loop {
        let r = tracker.resume().unwrap();
        log.push(format!("resume: {r}"));
        if matches!(r, PauseReason::Exited(_)) {
            break;
        }
        let state = tracker.get_state().unwrap();
        log.push(serde_json::to_string(&state).unwrap());
        if let Some(v) = tracker.get_variable("s").unwrap() {
            log.push(serde_json::to_string(&v).unwrap());
        }
    }
    log.push(format!("exit: {:?}", tracker.get_exit_code()));
    log.push(format!("output: {:?}", tracker.get_output().unwrap()));
    log
}

fn observe(tracker: &mut dyn Tracker) -> Vec<String> {
    let log = run_script(tracker);
    tracker.terminate();
    log
}

/// [`run_script`] with the in-engine profiler armed before start; returns
/// the observation log plus the drained profile.
fn observe_profiled(
    tracker: &mut dyn Tracker,
    mode: obs::ProfileMode,
    period: u64,
) -> (Vec<String>, obs::ProfileReport) {
    tracker.set_profile(mode, period).unwrap();
    let log = run_script(tracker);
    let report = tracker.profile().unwrap();
    tracker.terminate();
    (log, report)
}

fn run_plain(file: &str, source: &str) -> Vec<String> {
    observe(&mut *init_tracker(file, source).unwrap())
}

fn run_with(file: &str, source: &str, session: &obs::Session) -> Vec<String> {
    observe(&mut *init_tracker_with_registry(file, source, session.registry()).unwrap())
}

#[test]
fn c_states_identical_with_and_without_obs() {
    let plain = run_plain("n.c", C_PROG);
    let sinkless = run_with("n.c", C_PROG, &obs::Session::without_sinks());
    let full = obs::Session::new();
    let traced = run_with("n.c", C_PROG, &full);
    assert_eq!(plain, sinkless);
    assert_eq!(plain, traced);
    // ... and the instrumented run really did instrument.
    let snap = full.snapshot();
    assert!(snap.histogram("tracker.control.Resume").is_some());
    assert!(snap.gauge("mi.client.bytes_sent") > 0);
    assert!(full.trace_len() > 0);
}

#[test]
fn py_states_identical_with_and_without_obs() {
    let plain = run_plain("n.py", PY_PROG);
    let sinkless = run_with("n.py", PY_PROG, &obs::Session::without_sinks());
    let full = obs::Session::new();
    let traced = run_with("n.py", PY_PROG, &full);
    assert_eq!(plain, sinkless);
    assert_eq!(plain, traced);
    let snap = full.snapshot();
    assert!(snap.histogram("tracker.control.Resume").is_some());
    assert!(snap.counter("vm.minipy.trace_hooks") > 0);
}

#[test]
fn asm_tracker_reports_through_the_same_registry() {
    // A subset of the quickstart fib program: enough to verify the asm
    // MI engine publishes its VM stats like the minic engine does.
    let asm = "main:\n    li a0, 3\n    addi a0, a0, 4\n    li a7, 93\n    ecall\n";
    let session = obs::Session::new();
    let mut t = init_tracker_with_registry("n.s", asm, session.registry()).unwrap();
    t.start().unwrap();
    while t.get_exit_code().is_none() {
        t.step().unwrap();
    }
    t.terminate();
    let snap = session.snapshot();
    assert!(snap.gauge("vm.miniasm.instret") > 0);
    assert!(snap.histogram("tracker.control.Step").is_some());
    assert!(snap.gauge("mi.client.bytes_sent") > 0);
    assert!(snap.counter_prefix_sum("mi.server.cmd.") > 0);
}

/// The [`observe`] script over an [`MiTracker`], optionally draining
/// engine telemetry between every control step. The drain results are
/// deliberately *not* part of the observation — only what a tool sees.
fn observe_mi(tracker: &mut MiTracker, drain: bool) -> Vec<String> {
    let mut log = Vec::new();
    let r = tracker.start().unwrap();
    log.push(format!("start: {r}"));
    if drain {
        tracker.drain_telemetry().unwrap();
    }
    tracker.track_function("square", None).unwrap();
    loop {
        if drain {
            tracker.drain_telemetry().unwrap();
        }
        let r = tracker.resume().unwrap();
        log.push(format!("resume: {r}"));
        if matches!(r, PauseReason::Exited(_)) {
            break;
        }
        let state = tracker.get_state().unwrap();
        log.push(serde_json::to_string(&state).unwrap());
        if let Some(v) = tracker.get_variable("s").unwrap() {
            log.push(serde_json::to_string(&v).unwrap());
        }
        if drain {
            tracker.drain_telemetry().unwrap();
        }
    }
    log.push(format!("exit: {:?}", tracker.get_exit_code()));
    log.push(format!("output: {:?}", tracker.get_output().unwrap()));
    tracker.terminate();
    log
}

/// Engine-side neutrality: draining `Command::Telemetry` mid-session —
/// against a real `mi-server` child with its own registry — must not
/// perturb VM state, pause order, or serialized snapshots, lockstep
/// against an undrained run of the same program.
#[test]
fn telemetry_drains_do_not_perturb_the_session() {
    let Some(server) = conformance::mi_server_bin() else {
        panic!("mi_server binary not found or buildable");
    };
    let spec = || easytracker::ProgramSpec::c("n.c", C_PROG).via_server(&server);
    let load = |reg: obs::Registry| {
        MiTracker::load_spec(spec(), reg, easytracker::Supervision::default(), None).unwrap()
    };
    let undrained = observe_mi(&mut load(obs::Registry::new()), false);
    let reg = obs::Registry::new();
    let mut t = load(reg.clone());
    let drained = observe_mi(&mut t, true);
    assert_eq!(undrained, drained);
    // ... and the drains really pulled engine-side telemetry across.
    let snap = reg.snapshot();
    assert!(snap.gauge("engine.vm.minic.ops") > 0);
    assert!(snap.gauge("engine.mi.server.cmd.Resume") > 0);
}

/// The same lockstep over the in-process channel, where engine and
/// tracker share one registry: the drain must still be a no-op for the
/// session.
#[test]
fn in_process_telemetry_drains_are_neutral_too() {
    let undrained = observe_mi(&mut MiTracker::load_c("n.c", C_PROG).unwrap(), false);
    let drained = observe_mi(&mut MiTracker::load_c("n.c", C_PROG).unwrap(), true);
    assert_eq!(undrained, drained);
}

#[test]
fn replay_states_identical_with_and_without_obs() {
    let mut live = init_tracker("n.c", C_PROG).unwrap();
    let rec = easytracker::Recording::capture(&mut *live).unwrap();
    live.terminate();
    let json = rec.to_json().unwrap();
    let plain = run_plain("n.json", &json);
    let traced = run_with("n.json", &json, &obs::Session::new());
    assert_eq!(plain, traced);
}

/// The profiling plane is observation only: arming the counting profiler
/// must not change a single bit of what the control script observes — on
/// the MiniC tracker, the MiniPy tracker, *and* a replay of the same
/// session — while still producing a real profile.
#[test]
fn profiling_is_behavior_neutral_across_trackers() {
    for (file, source) in [("n.c", C_PROG), ("n.py", PY_PROG)] {
        let plain = run_plain(file, source);
        let mut t = init_tracker(file, source).unwrap();
        let (profiled, report) = observe_profiled(&mut *t, obs::ProfileMode::Counting, 0);
        assert_eq!(plain, profiled, "profiler perturbed the {file} session");
        assert!(!report.is_empty(), "{file} profile came back empty");
        let square = report
            .functions
            .iter()
            .find(|f| f.name == "square")
            .expect("square profiled");
        assert_eq!(square.calls, 3, "{file}");
    }

    // Replay: the derived profile must ride along without perturbing the
    // replayed observation either.
    let mut live = init_tracker("n.c", C_PROG).unwrap();
    let rec = easytracker::Recording::capture(&mut *live).unwrap();
    live.terminate();
    let json = rec.to_json().unwrap();
    let plain = run_plain("n.json", &json);
    let mut t = init_tracker("n.json", &json).unwrap();
    let (profiled, report) = observe_profiled(&mut *t, obs::ProfileMode::Counting, 0);
    assert_eq!(plain, profiled, "profiler perturbed the replay session");
    assert!(report.functions.iter().any(|f| f.name == "square"));
}

/// Sampling runs on a deterministic unit clock seeded from a fixed
/// constant: two runs of the same program with the same period must
/// produce bit-identical profiles — and still observe the same session.
#[test]
fn sampling_profiles_are_deterministic() {
    for (file, source) in [("n.c", C_PROG), ("n.py", PY_PROG)] {
        let plain = run_plain(file, source);
        let run = || {
            let mut t = init_tracker(file, source).unwrap();
            observe_profiled(&mut *t, obs::ProfileMode::Sampling, 4)
        };
        let (log_a, rep_a) = run();
        let (log_b, rep_b) = run();
        assert_eq!(plain, log_a, "sampling perturbed the {file} session");
        assert_eq!(log_a, log_b);
        assert_eq!(
            serde_json::to_string(&rep_a).unwrap(),
            serde_json::to_string(&rep_b).unwrap(),
            "sampling profile not reproducible for {file}"
        );
        assert!(rep_a.samples > 0, "{file} took no samples");
    }
}

#[test]
fn sinkless_instrumentation_overhead_is_bounded() {
    // A sinkless registry only bumps atomics and one histogram bucket per
    // span; 10k spans must finish in well under a second even on a busy
    // CI box. This is the "leave it on in production" guarantee.
    let session = obs::Session::without_sinks();
    let reg = session.registry();
    let start = std::time::Instant::now();
    for _ in 0..10_000 {
        let mut span = reg.span("tracker.control.Step");
        span.tag("pause_reason", "Step");
        span.finish();
        reg.inc("tracker.inspect.GetState");
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(1),
        "10k sinkless spans took {elapsed:?}"
    );
    let snap = session.snapshot();
    assert_eq!(snap.counter("tracker.inspect.GetState"), 10_000);
    assert_eq!(
        snap.histogram("tracker.control.Step").unwrap().count,
        10_000
    );
}
