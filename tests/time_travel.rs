//! Memory regression gate for store-backed time travel: scrubbing a
//! long recording must NOT cost what the naive full-snapshot replay
//! path costs (one decoded `ProgramState` per pause, forever resident).
//! The trace store keeps compressed deltas plus a bounded decoded-
//! segment cache, and reports its footprint through the
//! `replay.resident_bytes` gauge — this test pins that gauge to a
//! fraction of the naive cost so a cache or encoding regression fails
//! loudly instead of quietly re-growing O(pauses) memory.

use easytracker::{MiTracker, Recording, ReplayTracker, Tracker};

/// A loop long enough that full snapshots measurably dominate: ~8k
/// pauses of a two-variable frame.
const PROG: &str = "\
int main() {
    int i = 0;
    int s = 0;
    while (i < 2000) {
        s = s + i;
        i = i + 1;
    }
    return 0;
}
";

fn capture() -> Recording {
    let mut live = MiTracker::load_c("loop.c", PROG).unwrap();
    let rec = Recording::capture(&mut live).unwrap();
    live.terminate();
    rec
}

#[test]
fn resident_bytes_stay_a_fraction_of_full_snapshots() {
    let recording = capture();
    assert!(
        recording.len() > 4_000,
        "workload too short to measure ({} pauses)",
        recording.len()
    );
    // The naive replay path this store replaced: every pause's state
    // decoded and resident at once.
    let naive: u64 = recording
        .steps
        .iter()
        .map(|s| serde_json::to_vec(&s.state).unwrap().len() as u64)
        .sum();

    let registry = obs::Registry::new();
    let mut t = ReplayTracker::with_registry(recording, registry.clone());
    t.start().unwrap();
    // Scrub all over the timeline — worst case for the segment cache.
    let n = t.recorded_pauses();
    for k in 0..64 {
        t.seek(k * 997 % n).unwrap();
    }
    let resident = registry.snapshot().gauge("replay.resident_bytes");
    assert!(resident > 0, "gauge never set");
    assert!(
        resident < naive / 2,
        "store-backed replay resident {resident}B is not below half the \
         naive full-snapshot cost {naive}B"
    );
}

#[test]
fn many_readers_share_one_store() {
    let recording = capture();
    let shared = ReplayTracker::new(recording);
    let store = shared.store().clone();
    let n = store.len();

    // Four readers scrub the same recording to different places; each
    // keeps its own position and cache, none copies the store.
    let mut readers: Vec<ReplayTracker> = (0..4)
        .map(|_| ReplayTracker::from_store(store.clone()))
        .collect();
    for (k, r) in readers.iter_mut().enumerate() {
        r.start().unwrap();
        r.seek(n * (k as u64 + 1) / 5).unwrap();
    }
    let lines: Vec<u32> = readers
        .iter_mut()
        .map(|r| r.current_line().unwrap())
        .collect();
    // Positions are independent…
    assert!(
        lines.windows(2).any(|w| w[0] != w[1]),
        "readers collapsed to one position: {lines:?}"
    );
    // …and every reader answers identically where timelines coincide.
    for r in &mut readers {
        r.seek(7).unwrap();
        assert_eq!(
            serde_json::to_string(&r.get_state().unwrap()).unwrap(),
            serde_json::to_string(&store.state_at(7).unwrap()).unwrap(),
        );
    }
}
