//! Adversarial-tenant chaos: abusive sessions sharing a governed host
//! with innocent ones. Four abuser archetypes — a hot infinite loop, an
//! allocation bomb, a command-queue flood, and a wall-clock hog — plus
//! an admission flood hammering the session cap, all running against 16
//! innocent tenants in the same host.
//!
//! The governance contract under abuse:
//!
//! * every innocent finishes pause-for-pause byte-identical to its
//!   dedicated-engine oracle — neighbours' abuse is invisible;
//! * every abuser is stopped with a *typed* verdict — `ResourceExhausted`
//!   naming the budget, `QueueFull`, or `Overloaded` — never a hang;
//! * every frame an abuser sent gets exactly one reply — refusals are
//!   answered, not dropped.
//!
//! The abuser connections are also slow readers: they write their whole
//! attack before draining a single reply, so responses pile up in the
//! connection until the end (in-process channels are unbounded, so a
//! slow reader cannot wedge the host's reply path — that limitation is
//! what keeps this abuse shape safe to host).

use easytracker::{MiTracker, PauseReason, ProgramSpec, Supervision, Tracker};
use mi::transport::{duplex, ChannelTransport, Transport as _};
use mi::{Command, CommandFrame, HostConfig, HostHandle, Response, ResponseFrame, SessionHost};
use std::time::Duration;

const INNOCENTS: usize = 16;
/// Sessions the host admits: the innocents plus the four abusive ones.
/// The admission flood then attacks a genuinely full house.
const MAX_SESSIONS: usize = INNOCENTS + 4;

/// A loop too long to finish inside any budget used here.
const HOT_PROG: &str = "int main() {\n\
                        int i = 0;\n\
                        while (i < 2000000000) {\n\
                        i = i + 1;\n\
                        }\n\
                        return i;\n\
                        }\n";

/// Leaks a 4 KiB block per iteration; the live-heap gauge only climbs.
const BOMB_PROG: &str = "int main() {\n\
                         long* p = malloc(8);\n\
                         int i = 0;\n\
                         while (i < 1000000) {\n\
                         p = malloc(4096);\n\
                         i = i + 1;\n\
                         }\n\
                         return 0;\n\
                         }\n";

fn fast_supervision() -> Supervision {
    Supervision {
        deadline: Some(Duration::from_secs(10)),
        ping_deadline: Duration::from_millis(500),
        max_retries: 1,
        max_respawns: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        jitter_seed: 0xabad_7e4a_0000_0001,
    }
}

/// One abuser wire: frames out, replies left unread until the end.
struct Abuser {
    t: ChannelTransport,
    sent: u64,
    consumed: u64,
    seq: u64,
}

impl Abuser {
    fn connect(host: &SessionHost) -> Self {
        let (a, b) = duplex();
        let (btx, brx) = b.split();
        host.accept(brx, btx);
        Abuser {
            t: a,
            sent: 0,
            consumed: 0,
            seq: 0,
        }
    }

    fn send(&mut self, session: Option<u64>, cmd: Command) {
        let frame = CommandFrame {
            seq: self.seq,
            cmd,
            trace: None,
            session,
        };
        self.seq += 1;
        self.sent += 1;
        self.t
            .send(&serde_json::to_vec(&frame).expect("frame encodes"))
            .expect("send");
    }

    fn recv(&mut self) -> ResponseFrame {
        let bytes = self
            .t
            .recv_deadline(Duration::from_secs(30))
            .expect("typed reply, not a hang");
        self.consumed += 1;
        serde_json::from_slice(&bytes).expect("response frame")
    }

    /// Opening is synchronous: the attack needs the session id back.
    fn open(&mut self, source: &str) -> u64 {
        self.send(
            None,
            Command::OpenSession {
                file: "abuse.c".into(),
                source: source.into(),
                opt: 0,
            },
        );
        match self.recv().resp {
            Response::SessionOpened { session } => session,
            other => panic!("expected SessionOpened, got {other:?}"),
        }
    }

    /// Arming budgets is synchronous too: the attack only tests the
    /// budget that was acknowledged before it started.
    fn arm(&mut self, session: u64, cmd: Command) {
        self.send(Some(session), cmd);
        let resp = self.recv().resp;
        assert!(matches!(resp, Response::Ok), "SetLimits failed: {resp:?}");
    }

    /// Drains exactly one reply per frame still outstanding and returns
    /// the response summaries, in order. A missing reply times out
    /// loudly — silent drops are the failure this asserts against.
    fn drain(mut self) -> Vec<String> {
        let outstanding = self.sent - self.consumed;
        (0..outstanding)
            .map(|_| self.recv().resp.summary())
            .collect()
    }
}

fn observe(t: &mut MiTracker, reason: &PauseReason) -> String {
    let mut obs = format!("pause={reason}");
    if reason.is_alive() {
        let state = t.get_state().expect("state");
        obs.push_str(" state=");
        obs.push_str(&serde_json::to_string(&state).expect("state serializes"));
    } else {
        obs.push_str(&format!(" exit={:?}", t.get_exit_code()));
    }
    obs
}

const MAX_STEPS: usize = 200;

/// The fault-free trace: a dedicated in-process engine, no host at all.
fn oracle(file: &str, source: &str) -> Vec<String> {
    let mut t = MiTracker::load_c(file, source).expect("oracle loads");
    let mut trace = Vec::new();
    let reason = t.start().expect("start");
    trace.push(observe(&mut t, &reason));
    let mut alive = reason.is_alive();
    while alive && trace.len() < MAX_STEPS {
        let reason = t.step().expect("step");
        trace.push(observe(&mut t, &reason));
        alive = reason.is_alive();
    }
    t.terminate();
    trace
}

fn limits(
    max_steps: Option<u64>,
    max_heap_bytes: Option<u64>,
    max_wall_ms: Option<u64>,
    max_queue_depth: Option<u64>,
) -> Command {
    Command::SetLimits {
        max_steps,
        max_heap_bytes,
        max_wall_ms,
        max_queue_depth,
    }
}

#[test]
fn governed_host_isolates_innocents_from_adversarial_tenants() {
    let registry = obs::Registry::new();
    let config = HostConfig {
        workers: 4,
        max_sessions: Some(MAX_SESSIONS),
        slice_steps: Some(2_000),
        ..HostConfig::default()
    };
    let host = SessionHost::with_config(config, registry.clone());
    let handle = HostHandle::connect_in_process(&host);

    // Innocent tenants and their oracles.
    let programs: Vec<(String, String)> = (0..INNOCENTS)
        .map(|i| {
            let program = conformance::gen::gen_program(0xabad_0000 + i as u64);
            (format!("good{i}.c"), conformance::gen::render_c(&program))
        })
        .collect();
    let oracles: Vec<Vec<String>> = programs
        .iter()
        .map(|(file, source)| oracle(file, source))
        .collect();
    let mut innocents: Vec<MiTracker> = programs
        .iter()
        .map(|(file, source)| {
            MiTracker::load_spec(
                ProgramSpec::c(file, source).via_host(&handle),
                obs::Registry::new(),
                fast_supervision(),
                None,
            )
            .expect("innocent session opens")
        })
        .collect();

    // Open and arm every abusive session first: with the 16 innocents
    // the house is now exactly full, and nothing has run yet, so no
    // slot can free up under the admission flood below.
    let mut hot = Abuser::connect(&host);
    let hot_sid = hot.open(HOT_PROG);
    hot.arm(hot_sid, limits(Some(150_000), None, None, None));

    let mut bomb = Abuser::connect(&host);
    let bomb_sid = bomb.open(BOMB_PROG);
    bomb.arm(bomb_sid, limits(None, Some(1 << 20), None, None));

    let mut flood = Abuser::connect(&host);
    let flood_sid = flood.open(HOT_PROG);
    flood.arm(flood_sid, limits(Some(150_000), None, None, Some(2)));

    let mut hog = Abuser::connect(&host);
    let hog_sid = hog.open(HOT_PROG);
    hog.arm(hog_sid, limits(None, None, Some(100), None));

    // Admission flood against the full house: every open is refused.
    let mut gate = Abuser::connect(&host);
    for _ in 0..3 {
        gate.send(
            None,
            Command::OpenSession {
                file: "late.c".into(),
                source: HOT_PROG.into(),
                opt: 0,
            },
        );
    }

    // Now fire the attacks, before the innocents run a single step, so
    // every innocent observation happens under contention.
    hot.send(Some(hot_sid), Command::Start);
    hot.send(Some(hot_sid), Command::Resume);
    bomb.send(Some(bomb_sid), Command::Start);
    bomb.send(Some(bomb_sid), Command::Resume);
    flood.send(Some(flood_sid), Command::Start);
    flood.send(Some(flood_sid), Command::Resume);
    // 32 commands against a depth-2 queue while the resume chews fuel.
    for _ in 0..32 {
        flood.send(Some(flood_sid), Command::Step);
    }
    hog.send(Some(hog_sid), Command::Start);
    hog.send(Some(hog_sid), Command::Resume);

    // Drive every innocent to completion, interleaved, under abuse.
    let mut traces: Vec<Vec<String>> = vec![Vec::new(); INNOCENTS];
    let mut alive = [true; INNOCENTS];
    for (i, t) in innocents.iter_mut().enumerate() {
        let reason = t.start().expect("start under abuse");
        traces[i].push(observe(t, &reason));
        alive[i] = reason.is_alive();
    }
    while alive.iter().any(|a| *a) {
        for (i, t) in innocents.iter_mut().enumerate() {
            if !alive[i] || traces[i].len() >= MAX_STEPS {
                alive[i] = false;
                continue;
            }
            let reason = t.step().expect("step under abuse");
            traces[i].push(observe(t, &reason));
            if !reason.is_alive() {
                alive[i] = false;
                t.terminate();
            }
        }
    }
    for (i, (trace, oracle)) in traces.iter().zip(oracles.iter()).enumerate() {
        assert_eq!(
            trace, oracle,
            "innocent {i} diverged from its oracle under adversarial load"
        );
    }

    // Every abuser got a typed stop, and one reply per frame sent.
    let hot_replies = hot.drain();
    assert!(
        hot_replies
            .iter()
            .any(|s| s.contains("ResourceExhausted(steps")),
        "hot loop must exhaust its step budget, got {hot_replies:?}"
    );
    let bomb_replies = bomb.drain();
    assert!(
        bomb_replies
            .iter()
            .any(|s| s.contains("ResourceExhausted(heap_bytes")),
        "alloc bomb must exhaust its heap budget, got {bomb_replies:?}"
    );
    let flood_replies = flood.drain();
    assert!(
        flood_replies.iter().any(|s| s.contains("QueueFull")),
        "queue flood must see QueueFull, got {flood_replies:?}"
    );
    assert!(
        flood_replies
            .iter()
            .any(|s| s.contains("ResourceExhausted(steps")),
        "the flooded session still exhausts its step budget, got {flood_replies:?}"
    );
    let hog_replies = hog.drain();
    assert!(
        hog_replies
            .iter()
            .any(|s| s.contains("ResourceExhausted(wall_ms")),
        "wall hog must exhaust its wall budget, got {hog_replies:?}"
    );
    let gate_replies = gate.drain();
    assert_eq!(gate_replies.len(), 3);
    assert!(
        gate_replies.iter().all(|s| s.contains("Overloaded")),
        "every open past the cap is refused typed, got {gate_replies:?}"
    );

    // The governance machinery demonstrably fired.
    let snap = registry.snapshot();
    assert!(
        snap.counter("mi.host.preemptions") > 0,
        "no slice preempted"
    );
    assert!(
        snap.counter("mi.host.budget_exhausted") >= 3,
        "steps, heap, and wall budgets must all have tripped"
    );
    assert!(snap.counter("mi.host.rejected_queue_full") > 0);
    assert!(snap.counter("mi.host.rejected_overloaded") >= 3);

    // Exhausted abusers were swept; innocents closed themselves.
    assert_eq!(host.session_count(), 0, "no session may linger");
    host.shutdown();
}
