//! Fig. 4 of the paper: the GDB-tracker architecture. The tracker and the
//! engine live on different threads and everything between them really is
//! serialized, framed and shipped as bytes — these tests observe that
//! boundary directly.

use mi::protocol::{Command, Response};
use mi::transport::{duplex, Transport};
use mi::{Server, Session};
use state::PauseReason;

fn c_session(src: &str) -> Session {
    let program = minic::compile("t.c", src).unwrap();
    mi::spawn_minic(&program)
}

#[test]
fn commands_and_state_cross_as_bytes() {
    let mut session =
        c_session("int main() {\nint xs[3] = {7, 8, 9};\nint* p = xs;\nreturn p[1];\n}");
    session.client.call(Command::Start).unwrap();
    session.client.call(Command::Step).unwrap();
    session.client.call(Command::Step).unwrap();
    let before = session.client.transport().counters().bytes_received;
    let resp = session.client.call(Command::GetState).unwrap();
    let after = session.client.transport().counters().bytes_received;
    let Response::State(st) = resp else {
        panic!("expected state");
    };
    // The snapshot was big enough to dominate the frame traffic, proving
    // it crossed serialized (not shared by pointer).
    assert!(after - before > 200, "state bytes: {}", after - before);
    assert_eq!(st.frame.name(), "main");
    assert!(st.frame.variable("xs").is_some());
    session.shutdown();
}

#[test]
fn engine_runs_concurrently_with_tool_thread() {
    // While the tool thread sleeps between commands, the engine thread
    // retains all state (it is a live process, like gdb).
    let mut session = c_session(
        "int main() {\nint total = 0;\nfor (int i = 0; i < 5; i++) {\ntotal += i;\n}\nreturn total;\n}",
    );
    session.client.call(Command::Start).unwrap();
    session
        .client
        .call(Command::SetBreakLine { line: 4 })
        .unwrap();
    let Response::Paused(r) = session.client.call(Command::Resume).unwrap() else {
        panic!("expected pause");
    };
    assert!(matches!(r, PauseReason::Breakpoint { .. }));
    std::thread::sleep(std::time::Duration::from_millis(20));
    // Engine still there, state intact.
    let Response::Variable(Some(v)) = session
        .client
        .call(Command::GetVariable { name: "i".into() })
        .unwrap()
    else {
        panic!("expected i");
    };
    assert_eq!(state::render_value(v.value()), "0");
    session.shutdown();
}

#[test]
fn malformed_bytes_do_not_kill_the_engine() {
    let program = minic::compile("t.c", "int main() { return 1; }").unwrap();
    let (mut a, b) = duplex();
    let engine = mi::minic_engine::MinicEngine::new(&program);
    let handle = std::thread::spawn(move || {
        let _ = Server::new(engine, b).serve();
    });
    // Garbage frame -> error response, engine alive.
    a.send(b"\x00garbage\xff").unwrap();
    let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { .. }));
    // Proper command still works afterwards.
    a.send(&serde_json::to_vec(&Command::GetExitCode).unwrap())
        .unwrap();
    let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
    assert_eq!(resp, Response::ExitCode(None));
    a.send(&serde_json::to_vec(&Command::Terminate).unwrap())
        .unwrap();
    let _ = a.recv();
    handle.join().unwrap();
}

#[test]
fn disconnect_shuts_the_server_down() {
    let program = minic::compile("t.c", "int main() { return 0; }").unwrap();
    let (a, b) = duplex();
    let engine = mi::minic_engine::MinicEngine::new(&program);
    let handle = std::thread::spawn(move || {
        let _ = Server::new(engine, b).serve();
    });
    drop(a); // tracker goes away
    handle.join().unwrap(); // server notices and exits
}

#[test]
fn per_command_traffic_is_bounded() {
    // A control command's frames are small; only state snapshots are big.
    let mut session = c_session("int main() {\nint x = 0;\nx = 1;\nreturn x;\n}");
    session.client.call(Command::Start).unwrap();
    let before = session.client.transport().counters().bytes_total();
    session.client.call(Command::Step).unwrap();
    let after = session.client.transport().counters().bytes_total();
    assert!(after - before < 200, "step traffic: {}", after - before);
    session.shutdown();
}
