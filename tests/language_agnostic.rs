//! The paper's core promise (Listing 1): one control script, unchanged,
//! works on every inferior language. These tests run identical controller
//! functions over the MiniC tracker (behind the MI boundary), the MiniPy
//! tracker (thread-based, in-process), the RISC-V tracker, and a replayed
//! recording — asserting the same observable behaviour.

use easytracker::{init_tracker, PauseReason, Recording, ReplayTracker, Tracker};

/// Equivalent "sum of squares via a helper" programs in each language.
const C_PROG: &str = "\
int square(int x) {
return x * x;
}
int main() {
int s = 0;
for (int i = 1; i <= 4; i++) {
s = s + square(i);
}
printf(\"%d\\n\", s);
return s;
}
";

const PY_PROG: &str = "\
def square(x):
    return x * x
s = 0
for i in range(1, 5):
    s = s + square(i)
print(s)
";

const ASM_PROG: &str = "\
main:
    li s0, 0        # s
    li s1, 1        # i
loop:
    li t0, 4
    bgt s1, t0, done
    mv a0, s1
    call square
    add s0, s0, a0
    addi s1, s1, 1
    j loop
done:
    mv a0, s0
    li a7, 1
    ecall
    li a0, 10
    li a7, 11
    ecall
    mv a0, s0
    li a7, 93
    ecall
square:
    mul a0, a0, a0
    ret
";

/// The generic controller: track `square`, count boundary events, collect
/// return values, run to completion. Works on any `Tracker`.
fn controlled_run(tracker: &mut dyn Tracker) -> (u32, Vec<String>, i64) {
    tracker.track_function("square", None).expect("track");
    tracker.start().expect("start");
    let mut calls = 0;
    let mut returns = Vec::new();
    loop {
        match tracker.resume().expect("resume") {
            PauseReason::FunctionCall { function, .. } => {
                assert_eq!(function, "square");
                calls += 1;
            }
            PauseReason::FunctionReturn {
                function,
                return_value,
                ..
            } => {
                assert_eq!(function, "square");
                returns.push(return_value.unwrap_or_default());
            }
            PauseReason::Exited(status) => {
                return (calls, returns, status.code().unwrap_or(-1));
            }
            other => panic!("unexpected pause: {other}"),
        }
    }
}

#[test]
fn same_controller_for_c() {
    let mut t = init_tracker("p.c", C_PROG).unwrap();
    let (calls, returns, code) = controlled_run(t.as_mut());
    assert_eq!(calls, 4);
    assert_eq!(returns, ["1", "4", "9", "16"]);
    assert_eq!(code, 30);
    assert_eq!(t.get_output().unwrap(), "30\n");
}

#[test]
fn same_controller_for_python() {
    let mut t = init_tracker("p.py", PY_PROG).unwrap();
    let (calls, returns, code) = controlled_run(t.as_mut());
    assert_eq!(calls, 4);
    assert_eq!(returns, ["1", "4", "9", "16"]);
    assert_eq!(code, 0); // MiniPy modules exit 0
    assert_eq!(t.get_output().unwrap(), "30\n");
}

#[test]
fn same_controller_for_assembly() {
    let mut t = init_tracker("p.s", ASM_PROG).unwrap();
    let (calls, returns, code) = controlled_run(t.as_mut());
    assert_eq!(calls, 4);
    assert_eq!(returns, ["1", "4", "9", "16"]);
    assert_eq!(code, 30);
    assert_eq!(t.get_output().unwrap(), "30\n");
}

#[test]
fn same_controller_for_replayed_recording() {
    // Record the C run, then run the identical controller on the replay.
    let mut live = init_tracker("p.c", C_PROG).unwrap();
    let rec = Recording::capture(live.as_mut()).unwrap();
    live.terminate();
    let mut t = ReplayTracker::new(rec);
    let (calls, returns, code) = controlled_run(&mut t);
    assert_eq!(calls, 4);
    // Replay cannot recover concrete return values (documented), but the
    // boundary structure is identical.
    assert_eq!(returns.len(), 4);
    assert_eq!(code, 30);
}

/// Listing 1's stepping loop, shared verbatim across languages.
fn step_count(tracker: &mut dyn Tracker) -> usize {
    tracker.start().expect("start");
    let mut n = 0;
    while tracker.get_exit_code().is_none() {
        let frame = tracker.get_current_frame().expect("frame");
        assert!(!frame.name().is_empty());
        n += 1;
        tracker.step().expect("step");
    }
    n
}

#[test]
fn listing1_step_loop_works_everywhere() {
    for (file, src) in [("p.c", C_PROG), ("p.py", PY_PROG), ("p.s", ASM_PROG)] {
        let mut t = init_tracker(file, src).unwrap();
        let n = step_count(t.as_mut());
        assert!(n > 10, "{file}: stepped only {n} times");
        t.terminate();
    }
}

/// Inspection shape: every tracker exposes the same serializable state
/// model, so a single serde path handles them all.
#[test]
fn state_snapshots_serialize_identically_shaped() {
    for (file, src) in [("p.c", C_PROG), ("p.py", PY_PROG), ("p.s", ASM_PROG)] {
        let mut t = init_tracker(file, src).unwrap();
        t.start().unwrap();
        t.step().unwrap();
        let st = t.get_state().unwrap();
        let json = serde_json::to_string(&st).unwrap();
        let back: easytracker::ProgramState = serde_json::from_str(&json).unwrap();
        assert_eq!(st, back, "{file}: state must round-trip");
        t.terminate();
    }
}

/// `maxdepth` semantics match across trackers (paper Listing 2).
#[test]
fn maxdepth_filters_uniformly() {
    const REC_C: &str = "\
int down(int n) {
if (n == 0) { return 0; }
return down(n - 1);
}
int main() {
return down(5);
}
";
    const REC_PY: &str = "\
def down(n):
    if n == 0:
        return 0
    return down(n - 1)
down(5)
";
    for (file, src) in [("r.c", REC_C), ("r.py", REC_PY)] {
        let mut t = init_tracker(file, src).unwrap();
        t.break_before_func("down", Some(2)).unwrap();
        t.start().unwrap();
        let mut hits = 0;
        loop {
            match t.resume().unwrap() {
                PauseReason::Breakpoint { .. } => hits += 1,
                PauseReason::Exited(_) => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(hits, 2, "{file}: maxdepth=2 must allow exactly 2 hits");
        t.terminate();
    }
}
