//! The RISC-V inferior through the public `Tracker` API: register and
//! memory watchpoints, low-level access, and the Fig. 7 viewing loop.

use easytracker::{init_tracker, PauseReason};

const PROG: &str = "\
.data
total: .word 0
.text
main:
    li t0, 0          # i
    la t1, total
loop:
    li t2, 5
    bge t0, t2, done
    lw t3, 0(t1)
    add t3, t3, t0
    sw t3, 0(t1)
    addi t0, t0, 1
    j loop
done:
    lw a0, 0(t1)
    li a7, 93
    ecall
";

#[test]
fn register_watch_through_the_api() {
    let mut t = init_tracker("w.s", PROG).unwrap();
    t.start().unwrap();
    t.watch("t0").unwrap();
    let mut values = Vec::new();
    loop {
        match t.resume().unwrap() {
            PauseReason::Watchpoint { variable, new, .. } => {
                assert_eq!(variable, "t0");
                values.push(new.parse::<i64>().unwrap());
            }
            PauseReason::Exited(status) => {
                assert_eq!(status.code(), Some(10)); // 0+1+2+3+4
                break;
            }
            other => panic!("unexpected {other}"),
        }
    }
    assert_eq!(values, vec![1, 2, 3, 4, 5]);
    t.terminate();
}

#[test]
fn data_label_memory_watch_through_the_api() {
    let mut t = init_tracker("w.s", PROG).unwrap();
    t.start().unwrap();
    t.watch("total").unwrap();
    let mut hits = 0;
    loop {
        match t.resume().unwrap() {
            PauseReason::Watchpoint { .. } => hits += 1,
            PauseReason::Exited(_) => break,
            other => panic!("unexpected {other}"),
        }
    }
    // total changes on the stores where i > 0 (0+0 leaves it unchanged).
    assert_eq!(hits, 4);
    t.terminate();
}

#[test]
fn low_level_viewer_loop() {
    let mut t = init_tracker("w.s", PROG).unwrap();
    t.start().unwrap();
    let mut snapshots = 0;
    while t.get_exit_code().is_none() {
        let low = t.low_level().expect("asm tracker is low-level");
        let regs = low.registers().unwrap();
        assert_eq!(regs.len(), 33);
        let mem = low.read_memory(0, 64).unwrap();
        assert_eq!(mem.len(), 64);
        snapshots += 1;
        t.step().unwrap();
    }
    assert!(snapshots > 10);
    // Final value of `total` readable from memory via its label.
    let v = t.get_variable("total").unwrap().unwrap();
    assert_eq!(state::render_value(v.value()), "10");
    t.terminate();
}
