//! Property tests of the session envelope: random abuse frames —
//! unknown and stale session ids, duplicate and replayed sequence
//! numbers, frames addressed to another connection's session — must be
//! rejected with *typed* errors that echo the offending seq and session
//! id, and must never desynchronize an innocent session's stream.

use mi::transport::{duplex, ChannelTransport, Transport as _};
use mi::{Command, CommandFrame, ResourceKind, Response, ResponseFrame, SessionHost};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Duration;

const PROG: &str = "int main() {\n\
                    int x = 0;\n\
                    x = x + 1;\n\
                    x = x + 2;\n\
                    x = x + 3;\n\
                    return x;\n\
                    }\n";

/// Raw-wire client: hand-built frames over one channel transport, so
/// the test controls every seq and session id on the wire.
struct Raw {
    t: ChannelTransport,
    seq: u64,
}

impl Raw {
    fn connect(host: &SessionHost) -> Self {
        let (a, b) = duplex();
        let (btx, brx) = b.split();
        host.accept(brx, btx);
        Raw { t: a, seq: 0 }
    }

    fn send(&mut self, seq: u64, session: Option<u64>, cmd: Command) {
        let bytes = serde_json::to_vec(&CommandFrame {
            seq,
            cmd,
            trace: None,
            session,
        })
        .expect("frame encodes");
        self.t.send(&bytes).expect("send");
    }

    fn recv(&mut self) -> ResponseFrame {
        let bytes = self
            .t
            .recv_deadline(Duration::from_secs(10))
            .expect("host reply");
        serde_json::from_slice(&bytes).expect("response frame")
    }

    /// Sends at the next fresh seq and waits for the matching reply.
    fn roundtrip(&mut self, session: Option<u64>, cmd: Command) -> ResponseFrame {
        let seq = self.seq;
        self.seq += 1;
        self.send(seq, session, cmd);
        let rf = self.recv();
        assert_eq!(rf.seq, seq, "reply must echo the request seq");
        rf
    }

    fn open(&mut self, file: &str) -> u64 {
        match self
            .roundtrip(
                None,
                Command::OpenSession {
                    file: file.into(),
                    source: PROG.into(),
                    opt: 0,
                },
            )
            .resp
        {
            Response::SessionOpened { session } => session,
            other => panic!("expected SessionOpened, got {other:?}"),
        }
    }
}

/// One abuse frame to inject between legitimate commands.
#[derive(Debug, Clone)]
enum Abuse {
    /// A session id the host never assigned (ids start at 1 and stay
    /// tiny here; the offset keeps these unreachable).
    UnknownSid(u64),
    /// Replay the seq of the victim's most recent served command.
    StaleSeq,
    /// Replay a seq from the victim's deeper past (always ≤ last).
    AncientSeq(u64),
    /// Address the *other* connection's session from the victim's
    /// connection, reusing the victim's own seq numbering.
    ForeignSid,
}

fn arb_abuse() -> impl Strategy<Value = Abuse> {
    prop_oneof![
        (0u64..1000).prop_map(|x| Abuse::UnknownSid(1_000_000 + x)),
        Just(Abuse::StaleSeq),
        (0u64..8).prop_map(Abuse::AncientSeq),
        Just(Abuse::ForeignSid),
    ]
}

/// The victim's expected clean trace: response summaries of the legit
/// script run against an un-abused host.
fn clean_trace() -> Vec<String> {
    let host = SessionHost::new(1);
    let mut c = Raw::connect(&host);
    let sid = c.open("v.c");
    let mut trace = Vec::new();
    trace.push(c.roundtrip(Some(sid), Command::Start).resp.summary());
    loop {
        let s = c.roundtrip(Some(sid), Command::Step).resp.summary();
        let done = s.contains("exited") || s.contains("crashed");
        trace.push(s);
        trace.push(c.roundtrip(Some(sid), Command::GetState).resp.summary());
        if done {
            break;
        }
    }
    trace.push(c.roundtrip(Some(sid), Command::GetExitCode).resp.summary());
    let t = trace;
    host.shutdown();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Abuse frames interleaved into a live stream each get a typed
    /// rejection echoing their seq + session id, and the victim's own
    /// script still produces exactly the clean-run responses.
    #[test]
    fn envelope_abuse_is_rejected_typed_and_never_desyncs(
        abuses in prop::collection::vec(arb_abuse(), 1..10),
    ) {
        let oracle = clean_trace();
        let host = SessionHost::new(2);
        let mut victim = Raw::connect(&host);
        let vsid = victim.open("v.c");
        let mut other = Raw::connect(&host);
        let osid = other.open("o.c");

        fn abuse_once(
            victim: &mut Raw,
            abuse: &Abuse,
            vsid: u64,
            osid: u64,
            last_vseq: u64,
        ) {
            match abuse {
                Abuse::UnknownSid(sid) => {
                    let rf = victim.roundtrip(Some(*sid), Command::GetExitCode);
                    prop_assert_eq!(rf.resp, Response::SessionGone { session: *sid });
                    prop_assert_eq!(rf.session, Some(*sid));
                }
                Abuse::StaleSeq | Abuse::AncientSeq(_) => {
                    // Replay a seq at or below the session's last served
                    // one: an exact duplicate or a deep replay.
                    let seq = match abuse {
                        Abuse::AncientSeq(back) => last_vseq.saturating_sub(*back),
                        _ => last_vseq,
                    };
                    victim.send(seq, Some(vsid), Command::GetExitCode);
                    let rf = victim.recv();
                    prop_assert_eq!(rf.seq, seq);
                    prop_assert_eq!(rf.session, Some(vsid));
                    match &rf.resp {
                        Response::Error { message } => {
                            prop_assert!(
                                message.contains("stale or duplicate seq"),
                                "unexpected rejection: {}",
                                message
                            );
                        }
                        other => prop_assert!(false, "expected typed Error, got {other:?}"),
                    }
                }
                Abuse::ForeignSid => {
                    let rf = victim.roundtrip(Some(osid), Command::GetState);
                    prop_assert_eq!(rf.session, Some(osid));
                    match &rf.resp {
                        Response::Error { message } => {
                            prop_assert!(
                                message.contains("belongs to another connection"),
                                "unexpected rejection: {}",
                                message
                            );
                        }
                        other => prop_assert!(false, "expected typed Error, got {other:?}"),
                    }
                }
            }
        }

        let mut trace = Vec::new();
        let mut abuses = abuses.iter();
        // The victim session's most recently served seq (stale replays
        // must target at-or-below this; the client-side `seq` counter
        // also advances for abuse frames, which the session never saw).
        let mut last_vseq = victim.seq;
        trace.push(victim.roundtrip(Some(vsid), Command::Start).resp.summary());
        loop {
            if let Some(abuse) = abuses.next() {
                abuse_once(&mut victim, abuse, vsid, osid, last_vseq);
            }
            last_vseq = victim.seq;
            let s = victim.roundtrip(Some(vsid), Command::Step).resp.summary();
            let done = s.contains("exited") || s.contains("crashed");
            trace.push(s);
            trace.push(victim.roundtrip(Some(vsid), Command::GetState).resp.summary());
            if done {
                break;
            }
        }
        last_vseq = victim.seq;
        trace.push(
            victim
                .roundtrip(Some(vsid), Command::GetExitCode)
                .resp
                .summary(),
        );
        // Any abuse left over lands after the script, on a still-open
        // (parked) session.
        for abuse in abuses {
            abuse_once(&mut victim, abuse, vsid, osid, last_vseq);
        }
        prop_assert_eq!(trace, oracle, "abuse desynchronized the victim's stream");

        // The bystander session on the other connection is untouched
        // even though its id was used in foreign-sid abuse.
        let rf = other.roundtrip(Some(osid), Command::Start);
        prop_assert!(matches!(rf.resp, Response::Paused(_)));
        prop_assert_eq!(host.session_count(), 2);
        host.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Governance wire compatibility
// ---------------------------------------------------------------------------

/// Mirror of the pre-governance command vocabulary, as a peer compiled
/// before `SetLimits` existed would have it. Serde rejects unknown
/// variants, so a successful decode through this type proves an old
/// peer reads the frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum LegacyCommand {
    Start,
    Resume,
    Step,
    GetExitCode,
    Ping,
    Telemetry { since: u64 },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LegacyCommandFrame {
    seq: u64,
    cmd: LegacyCommand,
    trace: Option<serde_json::Value>,
    session: Option<u64>,
}

fn legacy_pairs() -> Vec<(Command, LegacyCommand)> {
    vec![
        (Command::Start, LegacyCommand::Start),
        (Command::Resume, LegacyCommand::Resume),
        (Command::Step, LegacyCommand::Step),
        (Command::GetExitCode, LegacyCommand::GetExitCode),
        (Command::Ping, LegacyCommand::Ping),
        (
            Command::Telemetry { since: 7 },
            LegacyCommand::Telemetry { since: 7 },
        ),
    ]
}

/// The vendored proptest has no `prop::option`; roll one.
fn arb_opt_u64() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), any::<u64>().prop_map(Some)].boxed()
}

fn arb_limits() -> impl Strategy<Value = Command> {
    (arb_opt_u64(), arb_opt_u64(), arb_opt_u64(), arb_opt_u64()).prop_map(|(s, h, w, q)| {
        Command::SetLimits {
            max_steps: s,
            max_heap_bytes: h,
            max_wall_ms: w,
            max_queue_depth: q,
        }
    })
}

fn arb_kind() -> impl Strategy<Value = ResourceKind> {
    prop_oneof![
        Just(ResourceKind::Steps),
        Just(ResourceKind::HeapBytes),
        Just(ResourceKind::WallMs),
        Just(ResourceKind::QueueDepth),
    ]
}

fn arb_governance_resp() -> impl Strategy<Value = Response> {
    prop_oneof![
        (arb_kind(), any::<u64>(), any::<u64>()).prop_map(|(which, used, limit)| {
            Response::ResourceExhausted { which, used, limit }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(load, limit)| Response::Overloaded { load, limit }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(depth, limit)| Response::QueueFull { depth, limit }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SetLimits` commands and the three governance responses survive
    /// a framed JSON round-trip bit-exactly, any combination of set
    /// and cleared budgets included.
    #[test]
    fn governance_frames_roundtrip(
        cmd in arb_limits(),
        resp in arb_governance_resp(),
        seq in any::<u64>(),
        session in arb_opt_u64(),
    ) {
        let cf = CommandFrame { seq, cmd, trace: None, session };
        let bytes = serde_json::to_vec(&cf).expect("encode");
        let back: CommandFrame = serde_json::from_slice(&bytes).expect("decode");
        prop_assert_eq!(&back, &cf);

        let rf = ResponseFrame { seq, resp, session };
        let bytes = serde_json::to_vec(&rf).expect("encode");
        let back: ResponseFrame = serde_json::from_slice(&bytes).expect("decode");
        prop_assert_eq!(&back, &rf);
    }

    /// Wire compatibility with peers that predate governance, both
    /// directions: frames an old peer emits (no limits anywhere)
    /// decode under the new vocabulary, and governance-free frames the
    /// new code emits decode under the old vocabulary — adding the
    /// variants changed nothing about the existing encoding.
    #[test]
    fn old_peers_interoperate_with_governance_free_frames(
        seq in any::<u64>(),
        session in arb_opt_u64(),
        pick in 0usize..6,
    ) {
        let (new_cmd, legacy_cmd) = legacy_pairs().swap_remove(pick);

        // Old peer encodes → new code decodes.
        let old_frame = LegacyCommandFrame {
            seq,
            cmd: legacy_cmd.clone(),
            trace: None,
            session,
        };
        let bytes = serde_json::to_vec(&old_frame).expect("legacy encode");
        let decoded: CommandFrame = serde_json::from_slice(&bytes)
            .expect("new decoder reads old frames");
        prop_assert_eq!(&decoded.cmd, &new_cmd);
        prop_assert_eq!(decoded.seq, seq);
        prop_assert_eq!(decoded.session, session);

        // New code encodes (no governance used) → old peer decodes.
        let new_frame = CommandFrame { seq, cmd: new_cmd, trace: None, session };
        let bytes = serde_json::to_vec(&new_frame).expect("encode");
        let decoded: LegacyCommandFrame = serde_json::from_slice(&bytes)
            .expect("old decoder reads governance-free frames");
        prop_assert_eq!(decoded.cmd, legacy_cmd);
    }
}
