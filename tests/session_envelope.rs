//! Property tests of the session envelope: random abuse frames —
//! unknown and stale session ids, duplicate and replayed sequence
//! numbers, frames addressed to another connection's session — must be
//! rejected with *typed* errors that echo the offending seq and session
//! id, and must never desynchronize an innocent session's stream.

use mi::transport::{duplex, ChannelTransport, Transport as _};
use mi::{Command, CommandFrame, Response, ResponseFrame, SessionHost};
use proptest::prelude::*;
use std::time::Duration;

const PROG: &str = "int main() {\n\
                    int x = 0;\n\
                    x = x + 1;\n\
                    x = x + 2;\n\
                    x = x + 3;\n\
                    return x;\n\
                    }\n";

/// Raw-wire client: hand-built frames over one channel transport, so
/// the test controls every seq and session id on the wire.
struct Raw {
    t: ChannelTransport,
    seq: u64,
}

impl Raw {
    fn connect(host: &SessionHost) -> Self {
        let (a, b) = duplex();
        let (btx, brx) = b.split();
        host.accept(brx, btx);
        Raw { t: a, seq: 0 }
    }

    fn send(&mut self, seq: u64, session: Option<u64>, cmd: Command) {
        let bytes = serde_json::to_vec(&CommandFrame {
            seq,
            cmd,
            trace: None,
            session,
        })
        .expect("frame encodes");
        self.t.send(&bytes).expect("send");
    }

    fn recv(&mut self) -> ResponseFrame {
        let bytes = self
            .t
            .recv_deadline(Duration::from_secs(10))
            .expect("host reply");
        serde_json::from_slice(&bytes).expect("response frame")
    }

    /// Sends at the next fresh seq and waits for the matching reply.
    fn roundtrip(&mut self, session: Option<u64>, cmd: Command) -> ResponseFrame {
        let seq = self.seq;
        self.seq += 1;
        self.send(seq, session, cmd);
        let rf = self.recv();
        assert_eq!(rf.seq, seq, "reply must echo the request seq");
        rf
    }

    fn open(&mut self, file: &str) -> u64 {
        match self
            .roundtrip(
                None,
                Command::OpenSession {
                    file: file.into(),
                    source: PROG.into(),
                },
            )
            .resp
        {
            Response::SessionOpened { session } => session,
            other => panic!("expected SessionOpened, got {other:?}"),
        }
    }
}

/// One abuse frame to inject between legitimate commands.
#[derive(Debug, Clone)]
enum Abuse {
    /// A session id the host never assigned (ids start at 1 and stay
    /// tiny here; the offset keeps these unreachable).
    UnknownSid(u64),
    /// Replay the seq of the victim's most recent served command.
    StaleSeq,
    /// Replay a seq from the victim's deeper past (always ≤ last).
    AncientSeq(u64),
    /// Address the *other* connection's session from the victim's
    /// connection, reusing the victim's own seq numbering.
    ForeignSid,
}

fn arb_abuse() -> impl Strategy<Value = Abuse> {
    prop_oneof![
        (0u64..1000).prop_map(|x| Abuse::UnknownSid(1_000_000 + x)),
        Just(Abuse::StaleSeq),
        (0u64..8).prop_map(Abuse::AncientSeq),
        Just(Abuse::ForeignSid),
    ]
}

/// The victim's expected clean trace: response summaries of the legit
/// script run against an un-abused host.
fn clean_trace() -> Vec<String> {
    let host = SessionHost::new(1);
    let mut c = Raw::connect(&host);
    let sid = c.open("v.c");
    let mut trace = Vec::new();
    trace.push(c.roundtrip(Some(sid), Command::Start).resp.summary());
    loop {
        let s = c.roundtrip(Some(sid), Command::Step).resp.summary();
        let done = s.contains("exited") || s.contains("crashed");
        trace.push(s);
        trace.push(c.roundtrip(Some(sid), Command::GetState).resp.summary());
        if done {
            break;
        }
    }
    trace.push(c.roundtrip(Some(sid), Command::GetExitCode).resp.summary());
    let t = trace;
    host.shutdown();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Abuse frames interleaved into a live stream each get a typed
    /// rejection echoing their seq + session id, and the victim's own
    /// script still produces exactly the clean-run responses.
    #[test]
    fn envelope_abuse_is_rejected_typed_and_never_desyncs(
        abuses in prop::collection::vec(arb_abuse(), 1..10),
    ) {
        let oracle = clean_trace();
        let host = SessionHost::new(2);
        let mut victim = Raw::connect(&host);
        let vsid = victim.open("v.c");
        let mut other = Raw::connect(&host);
        let osid = other.open("o.c");

        fn abuse_once(
            victim: &mut Raw,
            abuse: &Abuse,
            vsid: u64,
            osid: u64,
            last_vseq: u64,
        ) {
            match abuse {
                Abuse::UnknownSid(sid) => {
                    let rf = victim.roundtrip(Some(*sid), Command::GetExitCode);
                    prop_assert_eq!(rf.resp, Response::SessionGone { session: *sid });
                    prop_assert_eq!(rf.session, Some(*sid));
                }
                Abuse::StaleSeq | Abuse::AncientSeq(_) => {
                    // Replay a seq at or below the session's last served
                    // one: an exact duplicate or a deep replay.
                    let seq = match abuse {
                        Abuse::AncientSeq(back) => last_vseq.saturating_sub(*back),
                        _ => last_vseq,
                    };
                    victim.send(seq, Some(vsid), Command::GetExitCode);
                    let rf = victim.recv();
                    prop_assert_eq!(rf.seq, seq);
                    prop_assert_eq!(rf.session, Some(vsid));
                    match &rf.resp {
                        Response::Error { message } => {
                            prop_assert!(
                                message.contains("stale or duplicate seq"),
                                "unexpected rejection: {}",
                                message
                            );
                        }
                        other => prop_assert!(false, "expected typed Error, got {other:?}"),
                    }
                }
                Abuse::ForeignSid => {
                    let rf = victim.roundtrip(Some(osid), Command::GetState);
                    prop_assert_eq!(rf.session, Some(osid));
                    match &rf.resp {
                        Response::Error { message } => {
                            prop_assert!(
                                message.contains("belongs to another connection"),
                                "unexpected rejection: {}",
                                message
                            );
                        }
                        other => prop_assert!(false, "expected typed Error, got {other:?}"),
                    }
                }
            }
        }

        let mut trace = Vec::new();
        let mut abuses = abuses.iter();
        // The victim session's most recently served seq (stale replays
        // must target at-or-below this; the client-side `seq` counter
        // also advances for abuse frames, which the session never saw).
        let mut last_vseq = victim.seq;
        trace.push(victim.roundtrip(Some(vsid), Command::Start).resp.summary());
        loop {
            if let Some(abuse) = abuses.next() {
                abuse_once(&mut victim, abuse, vsid, osid, last_vseq);
            }
            last_vseq = victim.seq;
            let s = victim.roundtrip(Some(vsid), Command::Step).resp.summary();
            let done = s.contains("exited") || s.contains("crashed");
            trace.push(s);
            trace.push(victim.roundtrip(Some(vsid), Command::GetState).resp.summary());
            if done {
                break;
            }
        }
        last_vseq = victim.seq;
        trace.push(
            victim
                .roundtrip(Some(vsid), Command::GetExitCode)
                .resp
                .summary(),
        );
        // Any abuse left over lands after the script, on a still-open
        // (parked) session.
        for abuse in abuses {
            abuse_once(&mut victim, abuse, vsid, osid, last_vseq);
        }
        prop_assert_eq!(trace, oracle, "abuse desynchronized the victim's stream");

        // The bystander session on the other connection is untouched
        // even though its id was used in foreign-sid abuse.
        let rf = other.roundtrip(Some(osid), Command::Start);
        prop_assert!(matches!(rf.resp, Response::Paused(_)));
        prop_assert_eq!(host.session_count(), 2);
        host.shutdown();
    }
}
