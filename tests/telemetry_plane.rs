//! Cross-process telemetry-plane integration against a real `mi-server`
//! child: trace contexts propagate over the MI wire, engine-side spans
//! drain back, the clock offset is estimated from Ping roundtrips, and
//! the merged Chrome trace has two process lanes where an engine VM
//! span nests — after alignment — inside the tracker control span that
//! caused it.

use easytracker::{MiTracker, ProgramSpec, Supervision, Tracker};
use std::sync::Arc;

const PROGRAM: &str = "int square(int x) {\nreturn x * x;\n}\nint main() {\nint s = 0;\nfor (int i = 1; i <= 3; i++) {\ns += square(i);\n}\nreturn s;\n}";

fn arg<'a>(e: &'a obs::TraceEvent, key: &str) -> Option<&'a str> {
    e.args
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[test]
fn merged_trace_nests_engine_spans_inside_tracker_spans() {
    let Some(server) = conformance::mi_server_bin() else {
        panic!("mi_server binary not found or buildable");
    };
    let reg = obs::Registry::new();
    let tracker_sink = Arc::new(obs::ExportSink::new(4096));
    reg.add_sink(tracker_sink.clone());
    let mut t = MiTracker::load_spec(
        ProgramSpec::c("tp.c", PROGRAM).via_server(&server),
        reg.clone(),
        Supervision::default(),
        None,
    )
    .expect("process-deployed load");

    t.sync_clock(8).expect("clock sync").expect("an estimate");
    t.start().expect("start");
    let mut reason = t.resume().expect("resume");
    while reason.is_alive() {
        reason = t.resume().expect("resume");
    }
    t.drain_telemetry().expect("drain");

    // Engine spans crossed the wire, carrying the tracker's trace ids.
    let engine_events = t.engine_trace_events().to_vec();
    let exec = engine_events
        .iter()
        .find(|e| e.name == "vm.minic.exec")
        .expect("an engine exec span was drained");
    let exec_trace = arg(exec, "trace_id").expect("exec span has a trace id");
    let (tracker_events, _, _) = tracker_sink.since(0);
    let owner = tracker_events
        .iter()
        .filter(|e| e.name.starts_with("tracker.control."))
        .find(|e| arg(e, "trace_id") == Some(exec_trace))
        .expect("the exec span's trace id belongs to a tracker control span");
    // The engine span's remote parent is the MI roundtrip span nested
    // under that control span — same trace, tracker-side span id.
    let roundtrip = tracker_events
        .iter()
        .filter(|e| e.name.starts_with("mi.client.roundtrip."))
        .find(|e| arg(e, "span_id") == arg(exec, "parent_span"))
        .expect("the exec span's parent is a tracker-side roundtrip span");
    assert_eq!(arg(roundtrip, "trace_id"), Some(exec_trace));

    // Temporal nesting after clock alignment: the control span covers
    // the full MI roundtrip, so the engine-side execution must land
    // inside it. The midpoint assumption errs by at most RTT/2; a small
    // slack absorbs that plus clock-read jitter.
    let sync_offset = t.clock_offset_us().expect("offset estimated");
    let aligned = |ts: u64| (ts as i64 - sync_offset).max(0) as u64;
    let slack = 2_000u64;
    let (exec_start, exec_end) = (aligned(exec.ts_us), aligned(exec.ts_us + exec.dur_us));
    let (own_start, own_end) = (owner.ts_us, owner.ts_us + owner.dur_us);
    assert!(
        exec_start + slack >= own_start && exec_end <= own_end + slack,
        "engine exec [{exec_start}, {exec_end}]us should nest inside \
         tracker control [{own_start}, {own_end}]us (offset {sync_offset}us)"
    );

    // The merged document has two named process lanes with the engine
    // span re-stamped onto the tracker timeline.
    let path = std::env::temp_dir().join(format!("merged-trace-test-{}.json", std::process::id()));
    t.write_merged_trace(&path, &tracker_events)
        .expect("merged trace written");
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("readable"))
            .expect("valid JSON");
    let events = doc["traceEvents"].as_array().expect("event list");
    assert!(events
        .iter()
        .any(|e| e["ph"] == "M" && e["args"]["name"] == "tracker" && e["pid"] == obs::TRACKER_PID));
    assert!(events
        .iter()
        .any(|e| e["ph"] == "M" && e["args"]["name"] == "engine" && e["pid"] == obs::ENGINE_PID));
    let merged_exec = events
        .iter()
        .find(|e| e["name"] == "vm.minic.exec")
        .expect("engine span in the merged doc");
    assert_eq!(merged_exec["pid"], obs::ENGINE_PID);
    assert_eq!(merged_exec["ts"].as_u64(), Some(exec_start));
    let merged_ctrl = events
        .iter()
        .find(|e| e["name"] == owner.name.as_str() && e["pid"] == obs::TRACKER_PID)
        .expect("tracker control span in the merged doc");
    assert_eq!(merged_ctrl["ts"].as_u64(), Some(own_start));

    t.terminate();
    let _ = std::fs::remove_file(path);
}

/// Trace contexts also propagate over the in-process channel, where the
/// engine thread shares the tracker's registry: the engine's exec span
/// must report the tracker control span as its (remote) parent.
#[test]
fn trace_contexts_propagate_in_process_too() {
    let session = obs::Session::new();
    let mut t =
        easytracker::MiTracker::load_c_with_registry("tp.c", PROGRAM, session.registry()).unwrap();
    t.start().unwrap();
    let mut reason = t.resume().unwrap();
    while reason.is_alive() {
        reason = t.resume().unwrap();
    }
    t.terminate();
    let events = session.recent_events();
    let exec = events
        .iter()
        .find(|e| e.name == "vm.minic.exec")
        .expect("engine exec span recorded");
    events
        .iter()
        .filter(|e| e.name.starts_with("tracker.control."))
        .find(|e| arg(e, "trace_id") == arg(exec, "trace_id"))
        .expect("exec inherits a control span's trace id");
    events
        .iter()
        .filter(|e| e.name.starts_with("mi.client.roundtrip."))
        .find(|e| arg(e, "span_id") == arg(exec, "parent_span"))
        .expect("exec's remote parent is the client roundtrip span");
}
