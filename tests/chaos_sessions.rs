//! Chaos sweeps over the multi-session host: seeded kill schedules
//! target individual sessions (swept out of a live host) and the host
//! process itself (SIGKILL). Every targeted session must either recover
//! to its solo-process oracle trace or degrade with the typed
//! [`TrackerError::SessionDegraded`]; sessions the schedule never
//! touches must finish oracle-identical, unaffected by their
//! neighbours' deaths.

use conformance::rng::Rng;
use easytracker::{MiTracker, PauseReason, ProgramSpec, Supervision, Tracker, TrackerError};
use mi::HostHandle;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn server_bin() -> PathBuf {
    conformance::mi_server_bin().expect("mi_server binary builds")
}

/// Two session re-establishments are in budget; a third kill degrades.
const MAX_RESPAWNS: u32 = 2;

fn chaos_supervision() -> Supervision {
    Supervision {
        deadline: Some(Duration::from_secs(10)),
        ping_deadline: Duration::from_millis(500),
        max_retries: 1,
        max_respawns: MAX_RESPAWNS,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        jitter_seed: 0xc4a0_5e55_0000_0007,
    }
}

fn load_hosted(host: &HostHandle, file: &str, source: &str) -> MiTracker {
    MiTracker::load_spec(
        ProgramSpec::c(file, source).via_host(host),
        obs::Registry::new(),
        chaos_supervision(),
        None,
    )
    .expect("hosted session opens")
}

fn observe(t: &mut MiTracker, reason: &PauseReason) -> String {
    let mut obs = format!("pause={reason}");
    if reason.is_alive() {
        let state = t.get_state().expect("state");
        obs.push_str(" state=");
        obs.push_str(&serde_json::to_string(&state).expect("state serializes"));
    } else {
        obs.push_str(&format!(" exit={:?}", t.get_exit_code()));
    }
    obs
}

const MAX_STEPS: usize = 300;

/// The fault-free behaviour: one tracker, one dedicated `mi-server`
/// child, full step/observe trace.
fn solo_oracle(file: &str, source: &str) -> Vec<String> {
    let mut t = MiTracker::load_spec(
        ProgramSpec::c(file, source).via_server(&server_bin()),
        obs::Registry::new(),
        chaos_supervision(),
        None,
    )
    .expect("solo session spawns");
    let mut trace = Vec::new();
    let reason = t.start().expect("start");
    trace.push(observe(&mut t, &reason));
    let mut alive = reason.is_alive();
    while alive && trace.len() < MAX_STEPS {
        let reason = t.step().expect("step");
        trace.push(observe(&mut t, &reason));
        alive = reason.is_alive();
    }
    t.terminate();
    trace
}

/// How one session under chaos ended.
#[derive(Debug, PartialEq, Eq)]
enum Ending {
    /// Ran to completion; trace checked against the oracle.
    Finished,
    /// Refused with the typed degradation error.
    Degraded,
}

/// One seeded round of the session-kill sweep: N sessions interleave in
/// one host child; the schedule sweeps chosen victims out of the (live)
/// host mid-run, some within the respawn budget and one past it.
fn session_kill_round(seed: u64) {
    const N: usize = 5;
    let programs: Vec<(String, String)> = (0..N)
        .map(|i| {
            let program = conformance::gen::gen_program(seed.wrapping_mul(31) + i as u64);
            (format!("chaos{i}.c"), conformance::gen::render_c(&program))
        })
        .collect();
    let oracles: Vec<Vec<String>> = programs
        .iter()
        .map(|(file, source)| solo_oracle(file, source))
        .collect();

    // Schedule: one victim killed once (must recover), one killed until
    // its budget is exhausted (must degrade). Everyone else is a
    // bystander the chaos must not touch.
    let mut rng = Rng::new(seed ^ 0x5e55_10f5_c4a0_5c4a);
    let recover_victim = rng.below(N as u64) as usize;
    let mut degrade_victim = rng.below(N as u64) as usize;
    if degrade_victim == recover_victim {
        degrade_victim = (degrade_victim + 1) % N;
    }
    let mut kills_left: Vec<u32> = vec![0; N];
    kills_left[recover_victim] = 1;
    kills_left[degrade_victim] = MAX_RESPAWNS + 1;
    // Which pass of the round-robin the first kill lands on; the
    // degrade victim's kills then land on consecutive passes.
    let first_kill_round = 1 + rng.below(3);

    let host = HostHandle::spawn_process(server_bin(), 4).expect("host spawns");
    let mut sessions: Vec<MiTracker> = programs
        .iter()
        .map(|(file, source)| load_hosted(&host, file, source))
        .collect();
    let host_pid = host.host_pid().expect("host child pid");

    let mut traces: Vec<Vec<String>> = vec![Vec::new(); N];
    let mut alive = [true; N];
    let mut endings: Vec<Option<Ending>> = (0..N).map(|_| None).collect();
    let mut kills_delivered = [0u32; N];
    for (i, t) in sessions.iter_mut().enumerate() {
        let reason = t.start().expect("start");
        traces[i].push(observe(t, &reason));
        alive[i] = reason.is_alive();
        if !alive[i] {
            endings[i] = Some(Ending::Finished);
        }
    }
    let mut round = 0u64;
    while alive.iter().any(|a| *a) {
        round += 1;
        for (i, t) in sessions.iter_mut().enumerate() {
            if !alive[i] {
                continue;
            }
            if traces[i].len() >= MAX_STEPS {
                alive[i] = false;
                endings[i] = Some(Ending::Finished);
                continue;
            }
            if kills_left[i] > 0 && round >= first_kill_round {
                let sid = t.host_session_id().expect("hosted session");
                host.close_session(sid);
                kills_left[i] -= 1;
                kills_delivered[i] += 1;
            }
            match t.step() {
                Ok(reason) => {
                    traces[i].push(observe(t, &reason));
                    if !reason.is_alive() {
                        alive[i] = false;
                        endings[i] = Some(Ending::Finished);
                        t.terminate();
                    }
                }
                Err(TrackerError::SessionDegraded(_)) => {
                    alive[i] = false;
                    endings[i] = Some(Ending::Degraded);
                }
                Err(e) => panic!(
                    "seed {seed}: session {i} failed untyped after {} kills: {e}",
                    kills_delivered[i]
                ),
            }
        }
    }

    for i in 0..N {
        let delivered = kills_delivered[i];
        match endings[i].as_ref().expect("every session ended") {
            Ending::Finished => {
                assert!(
                    delivered <= MAX_RESPAWNS,
                    "seed {seed}: session {i} survived {delivered} kills past its budget"
                );
                assert_eq!(
                    &traces[i], &oracles[i],
                    "seed {seed}: session {i} ({delivered} kills) diverged from its oracle"
                );
                assert_eq!(
                    sessions[i].respawns(),
                    delivered,
                    "seed {seed}: session {i}"
                );
            }
            Ending::Degraded => {
                assert!(
                    delivered > MAX_RESPAWNS,
                    "seed {seed}: session {i} degraded after only {delivered} kills"
                );
                // Everything it reported before refusing was truthful.
                assert_eq!(
                    &traces[i][..],
                    &oracles[i][..traces[i].len()],
                    "seed {seed}: session {i} diverged before degrading"
                );
            }
        }
    }
    // Session-level kills never cost the host child its life.
    assert_eq!(
        host.host_pid().expect("host still alive"),
        host_pid,
        "seed {seed}: the host process must survive session-level chaos"
    );
    assert_eq!(host.respawns(), 0, "seed {seed}");
    for mut t in sessions {
        t.terminate();
    }
}

/// One seeded round of the host-kill sweep: SIGKILL the shared host
/// child at a seeded pass; every session must re-establish in the
/// respawned process and finish oracle-identical.
fn host_kill_round(seed: u64) {
    const N: usize = 4;
    let programs: Vec<(String, String)> = (0..N)
        .map(|i| {
            let program = conformance::gen::gen_program(seed.wrapping_mul(37) + 17 + i as u64);
            (format!("hk{i}.c"), conformance::gen::render_c(&program))
        })
        .collect();
    let oracles: Vec<Vec<String>> = programs
        .iter()
        .map(|(file, source)| solo_oracle(file, source))
        .collect();

    let mut rng = Rng::new(seed ^ 0x09_f1f5_0c4a_05c4);
    let kill_round = 1 + rng.below(3);

    let host = HostHandle::spawn_process(server_bin(), 4).expect("host spawns");
    let mut sessions: Vec<MiTracker> = programs
        .iter()
        .map(|(file, source)| load_hosted(&host, file, source))
        .collect();
    let pid_before = host.host_pid().expect("host child pid");

    let mut traces: Vec<Vec<String>> = vec![Vec::new(); N];
    let mut alive = [true; N];
    for (i, t) in sessions.iter_mut().enumerate() {
        let reason = t.start().expect("start");
        traces[i].push(observe(t, &reason));
        alive[i] = reason.is_alive();
    }
    let mut round = 0u64;
    let mut killed = false;
    while alive.iter().any(|a| *a) {
        round += 1;
        if !killed && round >= kill_round {
            let status = std::process::Command::new("kill")
                .args(["-KILL", &pid_before.to_string()])
                .status()
                .expect("kill runs");
            assert!(status.success());
            let deadline = Instant::now() + Duration::from_secs(5);
            while host.engine_died().is_none() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
            killed = true;
        }
        for (i, t) in sessions.iter_mut().enumerate() {
            if !alive[i] || traces[i].len() >= MAX_STEPS {
                alive[i] = false;
                continue;
            }
            let reason = t
                .step()
                .unwrap_or_else(|e| panic!("seed {seed}: session {i} failed after host kill: {e}"));
            traces[i].push(observe(t, &reason));
            if !reason.is_alive() {
                alive[i] = false;
                t.terminate();
            }
        }
    }

    assert!(killed, "seed {seed}: the schedule never fired");
    for (i, (trace, oracle)) in traces.iter().zip(oracles.iter()).enumerate() {
        assert_eq!(
            trace, oracle,
            "seed {seed}: session {i} diverged after the host kill"
        );
    }
    for (i, t) in sessions.iter().enumerate() {
        assert_eq!(
            t.respawns(),
            1,
            "seed {seed}: session {i} re-established once"
        );
    }
    assert_eq!(
        host.respawns(),
        1,
        "seed {seed}: one shared process respawn"
    );
    assert_ne!(
        host.host_pid().expect("respawned host"),
        pid_before,
        "seed {seed}: a new host child must be serving"
    );
    for mut t in sessions {
        t.terminate();
    }
}

/// CI sweep, session half: seeded kill schedules against individual
/// sessions in a live host.
#[test]
fn session_kill_sweep_recovers_or_degrades_with_survivors_unaffected() {
    for seed in [0xA11CE, 0xB0B5E] {
        session_kill_round(seed);
    }
}

/// CI sweep, process half: seeded SIGKILL schedules against the shared
/// host child.
#[test]
fn host_kill_sweep_reestablishes_every_session() {
    for seed in [0xCAFE5, 0xD00D5] {
        host_kill_round(seed);
    }
}
