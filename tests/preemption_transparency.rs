//! Preemption transparency: fuel-sliced execution must be invisible.
//!
//! The session host serves engine work in bounded fuel slices so one hot
//! tenant cannot pin a worker, re-queueing a session mid-`resume` and
//! picking it back up later. The governance contract is that none of
//! this is observable: a conformance sweep driven through a sliced host
//! — at any `--slice-steps`, including pathological single-digit fuels —
//! must be *pause-for-pause byte-identical* to the same programs driven
//! unsliced, across deployments (dedicated in-process channel, in-process
//! host, real `mi-server --host` child).

use conformance::diff::{drive_with_control_points, Driver, Trace};
use easytracker::{MiTracker, ProgramSpec, Recording, Supervision, Tracker};
use mi::{HostConfig, HostHandle, SessionHost};
use std::time::Duration;

fn fast_supervision() -> Supervision {
    Supervision {
        deadline: Some(Duration::from_secs(10)),
        ping_deadline: Duration::from_millis(500),
        max_retries: 1,
        max_respawns: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        jitter_seed: 0x51ce_0000_0001,
    }
}

/// An in-process host with an explicit slice fuel (`None` = unsliced),
/// plus its registry for asserting preemptions actually happened.
fn sliced_host(slice_steps: Option<u64>) -> (SessionHost, HostHandle, obs::Registry) {
    let registry = obs::Registry::new();
    let config = HostConfig {
        workers: 2,
        slice_steps,
        ..HostConfig::default()
    };
    let host = SessionHost::with_config(config, registry.clone());
    let handle = HostHandle::connect_in_process(&host);
    (host, handle, registry)
}

fn hosted(handle: &HostHandle, spec: ProgramSpec) -> MiTracker {
    MiTracker::load_spec(
        spec.via_host(handle),
        obs::Registry::new(),
        fast_supervision(),
        None,
    )
    .expect("hosted session opens")
}

fn step_trace(driver: &Driver, t: &mut MiTracker) -> Trace {
    let trace = driver.step_trace(t).expect("trace");
    t.terminate();
    trace
}

/// Fuels to sweep on the sliced legs: 1 preempts on every VM step, 7 is
/// adversarially misaligned with loop bodies, 64 preempts every few
/// statements. The oracle uses no host at all.
const FUELS: [u64; 3] = [1, 7, 64];

/// The conformance step sweep through sliced hosts: full serialized
/// `ProgramState` at every pause, output, and exit code — byte-identical
/// to a dedicated unsliced engine, for every generated program and every
/// fuel, in both languages the host serves.
#[test]
fn sliced_hosts_are_pause_for_pause_identical_to_dedicated_engines() {
    let driver = Driver::new();
    for seed in [0xf0e1_0001u64, 0xf0e1_0002, 0xf0e1_0003, 0xf0e1_0004] {
        let program = conformance::gen::gen_program(seed);
        let c_src = conformance::gen::render_c(&program);
        let asm_src = conformance::gen::render_asm(&conformance::gen::gen_asm(seed));

        let mut oracle_c = MiTracker::load_c("gen.c", &c_src).expect("oracle c");
        let oracle_c = step_trace(&driver, &mut oracle_c);
        let mut oracle_asm = MiTracker::load_asm("gen.s", &asm_src).expect("oracle asm");
        let oracle_asm = step_trace(&driver, &mut oracle_asm);

        for fuel in FUELS {
            let (host, handle, registry) = sliced_host(Some(fuel));
            let mut c = hosted(&handle, ProgramSpec::c("gen.c", &c_src));
            let c_trace = step_trace(&driver, &mut c);
            assert_eq!(
                c_trace, oracle_c,
                "seed {seed:#x} fuel {fuel}: sliced C leg diverged from the unsliced oracle"
            );
            let mut asm = hosted(&handle, ProgramSpec::asm("gen.s", &asm_src));
            let asm_trace = step_trace(&driver, &mut asm);
            assert_eq!(
                asm_trace, oracle_asm,
                "seed {seed:#x} fuel {fuel}: sliced asm leg diverged from the unsliced oracle"
            );
            host.shutdown();
            // The sweep only proves something if slicing actually
            // happened. Step-granular driving runs one VM step per
            // command, so only fuel 1 is guaranteed to exhaust a slice
            // mid-command here (larger fuels preempt on the `resume`
            // legs of the control-point test instead).
            if fuel == 1 {
                let snap = registry.snapshot();
                assert!(
                    snap.counter("mi.host.preemptions") > 0,
                    "seed {seed:#x} fuel {fuel}: no preemption ever fired"
                );
            }
        }

        // Unsliced host leg: --slice-steps 0, the pre-governance path,
        // must also still match.
        let (host, handle, _registry) = sliced_host(None);
        let mut c = hosted(&handle, ProgramSpec::c("gen.c", &c_src));
        let c_trace = step_trace(&driver, &mut c);
        assert_eq!(
            c_trace, oracle_c,
            "seed {seed:#x}: unsliced host leg diverged from the oracle"
        );
        host.shutdown();
    }
}

/// Control-point transparency: breakpoints, watchpoints, tracked
/// functions, `finish` and `next` driven through an aggressively sliced
/// host produce the same pause-reason sequence as the dedicated engine.
/// Slicing mid-`resume` must not double-report, skip, or re-order any
/// control-point pause.
#[test]
fn control_points_survive_slicing_unchanged() {
    for seed in [0xf0e2_0001u64, 0xf0e2_0002, 0xf0e2_0003] {
        let program = conformance::gen::gen_program(seed);
        let c_src = conformance::gen::render_c(&program);

        // A breakpoint line that actually executes, from a recording.
        let rec = {
            let mut t = MiTracker::load_c("gen.c", &c_src).expect("load");
            Recording::capture(&mut t).expect("capture")
        };
        let lines: Vec<u32> = rec
            .steps
            .iter()
            .map(|s| s.state.frame.location().line())
            .collect();
        let bp_line = lines[lines.len() / 2];

        let mut oracle = MiTracker::load_c("gen.c", &c_src).expect("oracle");
        let oracle_tags = drive_with_control_points(&mut oracle, bp_line).expect("oracle drive");
        oracle.terminate();

        for fuel in FUELS {
            let (host, handle, _registry) = sliced_host(Some(fuel));
            let mut t = hosted(&handle, ProgramSpec::c("gen.c", &c_src));
            let tags = drive_with_control_points(&mut t, bp_line).expect("sliced drive");
            t.terminate();
            host.shutdown();
            assert_eq!(
                tags, oracle_tags,
                "seed {seed:#x} fuel {fuel}: control-point reasons changed under slicing"
            );
        }
    }
}

/// The process deployment: a real `mi-server --host` child runs with the
/// default slice fuel, so every hosted process session in the suite
/// already exercises the sliced path — pin that with an explicit oracle
/// comparison rather than trusting the default.
#[test]
fn default_sliced_process_host_matches_the_dedicated_engine() {
    let server = conformance::mi_server_bin().expect("mi_server builds");
    let driver = Driver::new();
    let program = conformance::gen::gen_program(0xf0e3_0001);
    let c_src = conformance::gen::render_c(&program);

    let mut oracle = MiTracker::load_c("gen.c", &c_src).expect("oracle");
    let oracle = step_trace(&driver, &mut oracle);

    let host = HostHandle::spawn_process(server, 2).expect("host spawns");
    let mut t = hosted(&host, ProgramSpec::c("gen.c", &c_src));
    let trace = step_trace(&driver, &mut t);
    assert_eq!(
        trace, oracle,
        "process host (default slice fuel) diverged from the dedicated engine"
    );
}
