//! Supervised-session integration tests against a real `mi-server`
//! child process: the engine is killed with SIGKILL mid-session, stalled
//! with SIGSTOP, or replaced by a binary that dies on arrival, and the
//! tracker must respawn transparently, expire deadlines instead of
//! hanging, or degrade explicitly once the respawn budget is spent.

use easytracker::{MiTracker, ProgramSpec, Supervision, Tracker, TrackerError};
use std::time::{Duration, Instant};

const PROGRAM: &str = "int main() {\n\
                       int x = 1;\n\
                       puts(\"alpha\");\n\
                       x = x + 1;\n\
                       puts(\"beta\");\n\
                       x = x + 1;\n\
                       puts(\"gamma\");\n\
                       return 7;\n\
                       }\n";

fn fast_supervision() -> Supervision {
    Supervision {
        deadline: Some(Duration::from_secs(10)),
        ping_deadline: Duration::from_millis(500),
        max_retries: 1,
        max_respawns: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        jitter_seed: 0x5eed_0f5e_55e5_0001,
    }
}

fn signal(pid: u32, sig: &str) {
    let status = std::process::Command::new("kill")
        .args([sig, &pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill {sig} {pid} failed");
}

/// Fault-free reference behaviour of [`PROGRAM`] over the in-process
/// channel: `(output, exit code)` after running to completion.
fn reference_run() -> (String, Option<i64>) {
    let mut t = MiTracker::load_c("sup.c", PROGRAM).expect("load");
    t.start().expect("start");
    let mut reason = t.resume().expect("resume");
    while reason.is_alive() {
        reason = t.resume().expect("resume");
    }
    let out = t.get_output().expect("output");
    let exit = t.get_exit_code();
    t.terminate();
    (out, exit)
}

/// SIGKILL mid-session: the next engine request classifies the death as
/// [`TrackerError`]-visible only if recovery fails — here it must not;
/// the supervisor respawns, replays the journal, and the session runs to
/// the same output and exit code as a fault-free run.
#[test]
fn sigkill_mid_session_is_survived_by_one_respawn() {
    let Some(server) = conformance::mi_server_bin() else {
        panic!("mi_server binary not found or buildable");
    };
    let (want_out, want_exit) = reference_run();

    let reg = obs::Registry::new();
    let mut t = MiTracker::load_spec(
        ProgramSpec::c("sup.c", PROGRAM).via_server(&server),
        reg.clone(),
        fast_supervision(),
        None,
    )
    .expect("process-deployed load");
    t.start().expect("start");
    t.step().expect("one clean step");

    let pid = t.engine_pid().expect("process deployment has a pid");
    signal(pid, "-KILL");
    // Let the SIGKILL land so the next request sees a dead engine rather
    // than racing an in-flight reply.
    std::thread::sleep(Duration::from_millis(100));

    // Transparent recovery: no call here is allowed to error.
    let mut reason = t.resume().expect("resume across the kill");
    while reason.is_alive() {
        reason = t.resume().expect("resume");
    }
    assert_eq!(t.get_output().expect("output"), want_out);
    assert_eq!(t.get_exit_code(), want_exit);
    assert_eq!(t.respawns(), 1, "exactly one respawn should repair this");
    assert_ne!(t.engine_pid(), Some(pid), "a fresh engine process");
    t.terminate();

    let snap = reg.snapshot();
    assert_eq!(snap.counter("mi.respawns"), 1);
    assert!(
        snap.histogram("mi.supervisor.recovery").is_some(),
        "recovery latency not recorded"
    );
}

/// Every engine death leaves a post-mortem: after a SIGKILL (even one
/// the supervisor survives), a flight-recorder dump must exist on disk
/// naming the command that hit the dead engine, the last observed pause
/// reason, and the respawn count.
#[test]
fn sigkill_leaves_a_flight_recorder_dump() {
    let Some(server) = conformance::mi_server_bin() else {
        panic!("mi_server binary not found or buildable");
    };
    let dumps = std::env::temp_dir().join(format!("easytracker-dump-test-{}", std::process::id()));
    let reg = obs::Registry::new();
    let mut t = MiTracker::load_spec(
        ProgramSpec::c("sup.c", PROGRAM).via_server(&server),
        reg.clone(),
        fast_supervision(),
        None,
    )
    .expect("process-deployed load");
    t.set_dump_dir(&dumps);
    t.start().expect("start");
    t.step().expect("one clean step");
    let last_pause = format!("{}", t.pause_reason());

    let pid = t.engine_pid().expect("pid");
    signal(pid, "-KILL");
    std::thread::sleep(Duration::from_millis(100));
    t.resume().expect("resume across the kill");

    let path = t
        .last_flight_dump()
        .expect("a post-mortem dump was written")
        .to_path_buf();
    let text = std::fs::read_to_string(&path).expect("dump is readable");
    let dump = obs::FlightDump::from_json(&text).expect("dump parses");
    assert_eq!(dump.side, "tracker");
    assert_eq!(
        dump.last_command, "Resume",
        "the dump names the command that hit the dead engine"
    );
    assert_eq!(dump.last_pause, last_pause, "the last pause before death");
    assert_eq!(dump.respawns, 1, "the dump names the respawn count");
    assert!(dump.log.last_of("respawn").is_some());
    assert!(dump.log.last_of("fault").is_some());
    assert_eq!(reg.snapshot().counter("mi.flight_dumps"), 1);
    t.terminate();
    let _ = std::fs::remove_dir_all(dumps);
}

/// `Command::Telemetry` is journal-safe: a drain before an engine death
/// and a drain after recovery mirror the engine's counters with *set*
/// semantics onto a rewound cursor, so a killed-and-replayed session
/// ends with exactly the same mirrored values as a fault-free one.
#[test]
fn telemetry_drains_stay_journal_safe_across_a_respawn() {
    let Some(server) = conformance::mi_server_bin() else {
        panic!("mi_server binary not found or buildable");
    };
    let run_to_exit = |t: &mut MiTracker| {
        let mut reason = t.resume().expect("resume");
        while reason.is_alive() {
            reason = t.resume().expect("resume");
        }
    };

    // Fault-free reference: what the engine-side counters look like at
    // program exit.
    let ref_reg = obs::Registry::new();
    let mut r = MiTracker::load_spec(
        ProgramSpec::c("sup.c", PROGRAM).via_server(&server),
        ref_reg.clone(),
        fast_supervision(),
        None,
    )
    .expect("load");
    r.start().expect("start");
    run_to_exit(&mut r);
    r.drain_telemetry().expect("drain");
    r.terminate();
    let want_ops = ref_reg.snapshot().gauge("engine.vm.minic.ops");
    assert!(want_ops > 0, "the reference run mirrored engine stats");

    // Faulty run: drain mid-session, lose the engine, recover, drain
    // again at exit.
    let reg = obs::Registry::new();
    let mut t = MiTracker::load_spec(
        ProgramSpec::c("sup.c", PROGRAM).via_server(&server),
        reg.clone(),
        fast_supervision(),
        None,
    )
    .expect("load");
    t.start().expect("start");
    t.step().expect("step");
    t.drain_telemetry().expect("mid-session drain");
    assert!(reg.snapshot().gauge("engine.vm.minic.ops") > 0);

    let pid = t.engine_pid().expect("pid");
    signal(pid, "-KILL");
    std::thread::sleep(Duration::from_millis(100));
    run_to_exit(&mut t);
    assert_eq!(t.respawns(), 1);
    t.drain_telemetry().expect("post-recovery drain");
    assert_eq!(
        reg.snapshot().gauge("engine.vm.minic.ops"),
        want_ops,
        "mirrored engine counters neither lost nor double-counted across the respawn"
    );
    t.terminate();
}

/// A respawned engine re-arms the profiler from the journal: `SetProfile`
/// is journaled as configuration and replayed before `Start`, so the
/// re-executed session profiles from unit zero and the drained report at
/// exit matches a fault-free run exactly.
#[test]
fn respawned_sessions_rearm_the_profiler_from_the_journal() {
    let Some(server) = conformance::mi_server_bin() else {
        panic!("mi_server binary not found or buildable");
    };
    let run_to_exit = |t: &mut MiTracker| {
        let mut reason = t.resume().expect("resume");
        while reason.is_alive() {
            reason = t.resume().expect("resume");
        }
    };
    let script = |t: &mut MiTracker, kill: bool| -> obs::ProfileReport {
        t.set_profile(obs::ProfileMode::Counting, 0)
            .expect("arm profiler");
        t.start().expect("start");
        t.step().expect("step");
        if kill {
            let pid = t.engine_pid().expect("pid");
            signal(pid, "-KILL");
            std::thread::sleep(Duration::from_millis(100));
        }
        run_to_exit(t);
        let report = t.profile().expect("profile");
        t.terminate();
        report
    };
    let load = || {
        MiTracker::load_spec(
            ProgramSpec::c("sup.c", PROGRAM).via_server(&server),
            obs::Registry::new(),
            fast_supervision(),
            None,
        )
        .expect("load")
    };

    let reference = script(&mut load(), false);
    assert!(!reference.is_empty(), "reference run produced a profile");

    let mut t = load();
    let recovered = script(&mut t, true);
    assert_eq!(t.respawns(), 1, "the kill forced exactly one respawn");
    assert_eq!(
        serde_json::to_string(&recovered).expect("serialize"),
        serde_json::to_string(&reference).expect("serialize"),
        "the respawned engine re-armed the profiler and re-counted the session"
    );
}

/// SIGSTOP stall: the stalled engine expires the per-command deadline —
/// the call returns within a bound instead of blocking forever — then the
/// heartbeat confirms the boundary is wedged and a respawn repairs it.
#[test]
fn sigstop_stall_expires_the_deadline_and_respawns() {
    let Some(server) = conformance::mi_server_bin() else {
        panic!("mi_server binary not found or buildable");
    };
    let reg = obs::Registry::new();
    let mut cfg = fast_supervision();
    cfg.deadline = Some(Duration::from_millis(300));
    cfg.ping_deadline = Duration::from_millis(150);
    let mut t = MiTracker::load_spec(
        ProgramSpec::c("sup.c", PROGRAM).via_server(&server),
        reg.clone(),
        cfg,
        None,
    )
    .expect("process-deployed load");
    t.start().expect("start");

    let pid = t.engine_pid().expect("pid");
    signal(pid, "-STOP");

    // Worst case before recovery kicks in: (1 + retries) command
    // deadlines + the heartbeat probe + respawn and journal replay.
    let begin = Instant::now();
    let state = t.get_state().expect("inspection across the stall");
    let elapsed = begin.elapsed();
    assert_eq!(state.frame.name(), "main");
    assert!(
        elapsed < Duration::from_secs(10),
        "call blocked far past its deadline: {elapsed:?}"
    );
    assert!(t.respawns() >= 1, "a stalled engine must be replaced");
    t.terminate();

    let snap = reg.snapshot();
    assert!(snap.counter("mi.retries") >= 1, "idempotent retry missing");
    assert!(
        snap.counter("mi.heartbeat_misses") >= 1,
        "the wedged boundary should miss at least one heartbeat"
    );
    assert!(snap.counter("mi.respawns") >= 1);
}

/// An engine binary that dies on arrival: every respawn fails the same
/// way, the budget runs out, and the session degrades with a typed error
/// — and stays degraded — instead of retrying forever.
#[test]
fn respawn_storm_exhausts_the_budget_and_degrades() {
    let false_bin = ["/bin/false", "/usr/bin/false"]
        .iter()
        .find(|p| std::path::Path::new(p).is_file())
        .expect("a `false` binary somewhere");
    let reg = obs::Registry::new();
    let cfg = fast_supervision();
    let budget = cfg.max_respawns;
    let mut t = MiTracker::load_spec(
        ProgramSpec::c("sup.c", PROGRAM).via_server(std::path::Path::new(false_bin)),
        reg.clone(),
        cfg,
        None,
    )
    .expect("spawn itself succeeds; death is discovered on first use");

    let begin = Instant::now();
    match t.start() {
        Err(TrackerError::SessionDegraded(reason)) => {
            assert!(
                reason.contains("respawn"),
                "degradation reason should name the exhausted budget: {reason}"
            );
        }
        other => panic!("expected SessionDegraded, got {other:?}"),
    }
    assert!(
        begin.elapsed() < Duration::from_secs(30),
        "degradation must come promptly, not after unbounded retries"
    );
    assert_eq!(t.respawns(), budget);
    assert_eq!(reg.snapshot().counter("mi.respawns"), u64::from(budget));

    // Sticky: later requests fail the same way without new respawns.
    match t.get_state() {
        Err(TrackerError::SessionDegraded(_)) => {}
        other => panic!("degradation must be sticky, got {other:?}"),
    }
    assert_eq!(t.respawns(), budget, "no further respawn attempts");
    t.terminate();
}
