//! Mutation fuzz for the bytecode verifier.
//!
//! The pinned soundness direction is **verifier-accepts ⊆ VM-safe**: any
//! program the verifier passes must execute without panicking — runtime
//! `Error`s (division by zero, bad memory) are legal outcomes, VM panics
//! (stack underflow, tag confusion, the debug stack-effect assertion)
//! are not. The dual direction is *not* pinned: the verifier may reject
//! programs the VM would happen to survive, since it reasons per-path
//! over joins.
//!
//! Each case compiles a real MiniC program, then corrupts its bytecode
//! with a seeded burst of mutations (opcode replacement, operand
//! tweaks, splices, swaps) — the moral equivalent of bit flips on a
//! serialized program image. Mutants the verifier accepts are executed
//! under a step budget inside `catch_unwind`.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

use minic::ast::BinOp;
use minic::bytecode::{MemTy, Op, Program};
use minic::typecheck::Intrinsic;
use minic::vm::{Event, Vm};

/// Base corpus: small but exercises every op family the verifier models
/// (calls with arguments, loops, pointers, floats, intrinsics).
const SOURCES: &[&str] = &[
    "int main() { int a = 3; int b = 4; return a * b - 5; }",
    "int add(int a, int b) { return a + b; }\n\
     int main() { int s = 0; int i = 0;\n\
       while (i < 5) { s = add(s, i); i = i + 1; }\n\
       return s; }",
    "int main() { int xs[4]; int i = 0;\n\
       while (i < 4) { xs[i] = i * i; i = i + 1; }\n\
       return xs[3]; }",
    "double scale(double x) { return x * 1.5; }\n\
     int main() { double d = scale(4.0); return (int)d; }",
    "int main() { long* p = (long*)malloc(24); p[0] = 7; p[2] = 9;\n\
       long v = p[0] + p[2]; free(p); return (int)v; }",
    "int f(int n) { if (n < 2) { return n; } return f(n - 1) + f(n - 2); }\n\
     int main() { return f(8); }",
];

const MEMTYS: &[MemTy] = &[
    MemTy::I8,
    MemTy::I32,
    MemTy::I64,
    MemTy::F32,
    MemTy::F64,
    MemTy::P,
];

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::And,
    BinOp::Or,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Shl,
    BinOp::Shr,
];

const INTRINSICS: &[Intrinsic] = &[
    Intrinsic::Malloc,
    Intrinsic::Calloc,
    Intrinsic::Realloc,
    Intrinsic::Free,
    Intrinsic::Printf,
    Intrinsic::Puts,
    Intrinsic::Putchar,
];

fn pick<T: Copy>(rng: &mut TestRng, xs: &[T]) -> T {
    xs[rng.below(xs.len() as u64) as usize]
}

/// A random op with small operands, biased so plenty of mutants are
/// structurally plausible (in-range jumps and call indices) — pure
/// garbage is rejected too early to stress the abstract interpreter.
fn random_op(rng: &mut TestRng, code_len: usize, nfuncs: usize) -> Op {
    match rng.below(24) {
        0 => Op::Line(rng.below(12) as u32),
        1 => Op::PushI(rng.below(64) as i64 - 8),
        2 => Op::PushF(rng.below(16) as f64),
        3 => Op::PushP(rng.below(0x2000)),
        4 => Op::LocalAddr(rng.below(48)),
        5 => Op::Load(pick(rng, MEMTYS)),
        6 => Op::Store(pick(rng, MEMTYS)),
        7 => Op::MemCopy(rng.below(16)),
        8 => Op::IArith(pick(rng, BINOPS)),
        9 => Op::FArith(pick(rng, BINOPS)),
        10 => Op::ICmp(pick(rng, BINOPS)),
        11 => Op::FCmp(pick(rng, BINOPS)),
        12 => Op::Neg(rng.below(2) == 0),
        13 => Op::Not,
        14 => Op::I2F,
        15 => Op::F2I,
        16 => Op::Jump(rng.below(code_len as u64) as usize),
        17 => Op::JumpIfZero(rng.below(code_len as u64) as usize),
        18 => Op::JumpIfNotZero(rng.below(code_len as u64) as usize),
        19 => Op::Dup,
        20 => Op::Pop,
        21 => Op::Call(rng.below(nfuncs as u64 + 1) as usize),
        22 => Op::Ret(rng.below(2) == 0),
        _ => Op::Intrinsic(pick(rng, INTRINSICS), rng.below(4) as u8),
    }
}

/// Applies 1–4 seeded mutations to the code vector.
fn mutate(program: &mut Program, rng: &mut TestRng) {
    let len = program.code.len();
    let nfuncs = program.functions.len();
    for _ in 0..(1 + rng.below(4)) {
        let at = rng.below(len as u64) as usize;
        match rng.below(4) {
            // Opcode replacement.
            0 => program.code[at] = random_op(rng, len, nfuncs),
            // Operand tweak: retarget a jump (or replace otherwise).
            1 => match program.code[at].jump_target_mut() {
                Some(t) => *t = rng.below(len as u64) as usize,
                None => program.code[at] = random_op(rng, len, nfuncs),
            },
            // Splice: copy a short run of ops somewhere else.
            2 => {
                let src = rng.below(len as u64) as usize;
                let n = (1 + rng.below(4) as usize).min(len - at).min(len - src);
                for i in 0..n {
                    program.code[at + i] = program.code[src + i];
                }
            }
            // Swap two ops.
            _ => {
                let other = rng.below(len as u64) as usize;
                program.code.swap(at, other);
            }
        }
    }
}

/// Runs the program under an op budget; `false` means the VM panicked.
/// Runtime errors and budget exhaustion both count as safe: the pinned
/// property is panic-freedom, not termination or correctness. The op
/// budget (not an event count) is what bounds event-free infinite loops
/// a mutant can easily contain.
fn vm_survives(program: &Program) -> bool {
    let program = program.clone();
    catch_unwind(AssertUnwindSafe(move || {
        let mut vm = Vm::new(&program);
        vm.set_op_budget(Some(200_000));
        loop {
            match vm.step() {
                Ok(Event::Exited(_)) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }))
    .is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// verifier-accepts ⊆ VM-safe, under seeded bytecode corruption.
    #[test]
    fn verifier_accept_implies_vm_safe(seed in any::<u64>()) {
        let mut rng = TestRng::from_seed(seed);
        let src = SOURCES[rng.below(SOURCES.len() as u64) as usize];
        let mut program = minic::compile("fuzz.c", src).expect("corpus compiles");
        prop_assert!(
            analysis::verify::verify(&program).is_empty(),
            "unmutated corpus program must verify"
        );
        mutate(&mut program, &mut rng);
        let findings = analysis::verify::verify(&program);
        if findings.is_empty() {
            // Panics from rejected mutants never run; accepted mutants
            // must not panic. Silence the default hook so expected-fail
            // probes (there are none on the accept path, but a failing
            // property would otherwise spew backtraces) stay readable.
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let safe = vm_survives(&program);
            std::panic::set_hook(hook);
            prop_assert!(
                safe,
                "verifier accepted a mutant the VM panicked on (seed {seed})"
            );
        }
    }
}

/// The dual sanity check (not a pinned property, a smoke floor): across
/// a deterministic mutation sweep, every mutant that makes the VM panic
/// is rejected by the verifier — i.e. no observed panic escapes. This is
/// the same property as above approached from the panic side, so a
/// regression that weakens a verifier check shows up here as a concrete
/// panicking-but-accepted mutant.
#[test]
fn panicking_mutants_are_rejected() {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut panicked = 0usize;
    let mut escaped = Vec::new();
    for seed in 0..400u64 {
        let mut rng = TestRng::from_seed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let src = SOURCES[rng.below(SOURCES.len() as u64) as usize];
        let mut program = minic::compile("fuzz.c", src).expect("corpus compiles");
        mutate(&mut program, &mut rng);
        if !vm_survives(&program) {
            panicked += 1;
            if analysis::verify::verify(&program).is_empty() {
                escaped.push(seed);
            }
        }
    }
    std::panic::set_hook(hook);
    assert!(
        escaped.is_empty(),
        "{} panicking mutant(s) accepted by the verifier: seeds {escaped:?}",
        escaped.len()
    );
    // The sweep must actually exercise the panic surface to mean
    // anything; seeded mutations make this deterministic.
    assert!(
        panicked > 10,
        "mutation sweep produced only {panicked} panicking mutants"
    );
}
