//! Fig. 5 of the paper: the thread-based Python tracker. The inferior
//! runs on its own thread; a control call blocks the tool thread until
//! the inferior pauses again; the tracker's control logic executes inside
//! the trace function on the inferior thread.

use easytracker::{PauseReason, PyTracker, Tracker};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn control_calls_block_until_the_inferior_pauses() {
    // A program whose step takes real work: the control call must not
    // return before the pause, however long the inferior computes.
    let src = "\
total = 0
for i in range(2000):
    total = total + i
done = total
";
    let mut t = PyTracker::load("p.py", src).unwrap();
    t.start().unwrap();
    t.break_before_line(4).unwrap();
    let before = std::time::Instant::now();
    let r = t.resume().unwrap();
    let _elapsed = before.elapsed();
    assert!(matches!(r, PauseReason::Breakpoint { .. }));
    // When resume returned, the loop had fully run: total is final.
    let total = t.get_variable("total").unwrap().unwrap();
    assert_eq!(
        state::render_value(total.value().deref_fully()),
        (0..2000).sum::<i64>().to_string()
    );
    t.terminate();
}

#[test]
fn tool_thread_and_inferior_thread_are_distinct() {
    // Observe the two threads through their names/ids: the tracer runs on
    // the inferior thread, the test runs on the tool thread.
    let flag = Arc::new(AtomicBool::new(false));
    let tool_thread = std::thread::current().id();
    let flag2 = Arc::clone(&flag);

    // Indirect observation: while the tool thread is *blocked* in resume,
    // progress still happens (the inferior runs elsewhere). Spawn a watcher
    // that records that the tool thread reached resume before the program
    // finished.
    let src = "x = 0\nwhile x < 50000:\n    x = x + 1\n";
    let mut t = PyTracker::load("w.py", src).unwrap();
    t.start().unwrap();
    let watcher = std::thread::spawn(move || {
        // Runs concurrently with the blocked resume on the tool thread.
        assert_ne!(std::thread::current().id(), tool_thread);
        flag2.store(true, Ordering::SeqCst);
    });
    let r = t.resume().unwrap();
    assert!(matches!(r, PauseReason::Exited(_)));
    watcher.join().unwrap();
    assert!(flag.load(Ordering::SeqCst));
    t.terminate();
}

#[test]
fn watchpoints_force_per_line_checks() {
    // The paper: with watchpoints, "single-stepping line by line is done
    // to determine whether EasyTracker should pause". Observable effect:
    // a watched variable never skips a change, no matter how tight the
    // loop.
    let src = "x = 0\nwhile x < 20:\n    x = x + 1\n";
    let mut t = PyTracker::load("w.py", src).unwrap();
    t.start().unwrap();
    t.watch("x").unwrap();
    let mut seen = Vec::new();
    loop {
        match t.resume().unwrap() {
            PauseReason::Watchpoint { new, .. } => seen.push(new.parse::<i64>().unwrap()),
            PauseReason::Exited(_) => break,
            other => panic!("unexpected {other}"),
        }
    }
    // The first binding (x = 0) counts, then every increment.
    let expect: Vec<i64> = (0..=20).collect();
    assert_eq!(seen, expect, "every single change observed");
    t.terminate();
}

#[test]
fn terminate_while_paused_unblocks_and_joins() {
    let src = "i = 0\nwhile True:\n    i = i + 1\n";
    let mut t = PyTracker::load("loop.py", src).unwrap();
    t.start().unwrap();
    for _ in 0..5 {
        t.step().unwrap();
    }
    // Must return promptly (no deadlock with the paused inferior).
    let begin = std::time::Instant::now();
    t.terminate();
    assert!(begin.elapsed() < std::time::Duration::from_secs(5));
}

#[test]
fn snapshots_are_stable_while_paused() {
    // The snapshot taken at the pause does not change while the inferior
    // sits blocked (it is a copy, like the pickled state GDB would send).
    let src = "a = [1, 2, 3]\nb = a\nc = 0\n";
    let mut t = PyTracker::load("p.py", src).unwrap();
    t.start().unwrap();
    t.step().unwrap();
    t.step().unwrap();
    let s1 = t.get_state().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    let s2 = t.get_state().unwrap();
    assert_eq!(s1, s2);
    t.terminate();
}

#[test]
fn output_streams_across_the_threads() {
    let src = "for i in range(3):\n    print(i)\n";
    let mut t = PyTracker::load("p.py", src).unwrap();
    t.start().unwrap();
    let mut pieces = Vec::new();
    while t.get_exit_code().is_none() {
        t.step().unwrap();
        let out = t.get_output().unwrap();
        if !out.is_empty() {
            pieces.push(out);
        }
    }
    assert_eq!(pieces.concat(), "0\n1\n2\n");
    assert!(pieces.len() >= 3, "output arrives incrementally");
    t.terminate();
}
