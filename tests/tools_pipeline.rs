//! End-to-end pipelines of the §III tools: tracker → inspection →
//! renderer, across languages, plus the Python-Tutor interop loop.

use easytracker::{init_tracker, PauseReason, Recording, ReplayTracker, Tracker};
use viz::array::ArrayView;
use viz::calltree::CallTree;
use viz::memview::MemView;
use viz::source::SourceView;
use viz::stack::{render_svg, render_text, StackDiagramOptions};

#[test]
fn stack_heap_tool_runs_on_c_and_python() {
    let cases = [
        (
            "t.py",
            "xs = [1, 2]\nys = xs\nd = {'k': xs}\nz = 0\n",
            "0x55", // MiniPy heap addresses
        ),
        (
            "t.c",
            "int main() {\nint* p = malloc(2 * sizeof(int));\np[0] = 5;\nint x = 1;\nreturn x;\n}",
            "0x10", // MiniC heap base
        ),
    ];
    for (file, src, addr_prefix) in cases {
        let mut t = init_tracker(file, src).unwrap();
        t.start().unwrap();
        let mut svgs = 0;
        let mut saw_heap = false;
        while t.get_exit_code().is_none() {
            let frame = t.get_current_frame().unwrap();
            let globals = t.get_global_variables().unwrap();
            let svg = render_svg(&frame, &globals, &StackDiagramOptions::default());
            assert!(svg.starts_with("<svg"));
            svgs += 1;
            let text = render_text(&frame, &globals, &StackDiagramOptions::default());
            if text.contains("heap:") {
                saw_heap = true;
                assert!(text.contains(addr_prefix), "{file}: {text}");
            }
            t.step().unwrap();
        }
        assert!(svgs > 3, "{file}: {svgs} diagrams");
        assert!(saw_heap, "{file}: heap content appeared");
        t.terminate();
    }
}

#[test]
fn invalid_pointer_cross_reaches_the_diagram() {
    let src = "int main() {\nint* p = malloc(4);\nfree(p);\nint z = 0;\nreturn z;\n}";
    let mut t = init_tracker("inv.c", src).unwrap();
    t.start().unwrap();
    t.break_before_line(4).unwrap();
    t.resume().unwrap();
    let frame = t.get_current_frame().unwrap();
    let text = render_text(&frame, &[], &StackDiagramOptions::default());
    assert!(text.contains("p: ✗"), "{text}");
    t.terminate();
}

#[test]
fn recursion_tree_tool_counts_match_calls() {
    let src = "\
int fib(int n) {
if (n < 2) { return n; }
return fib(n - 1) + fib(n - 2);
}
int main() {
return fib(5);
}
";
    let mut t = init_tracker("fib.c", src).unwrap();
    t.track_function("fib", None).unwrap();
    t.start().unwrap();
    let mut tree = CallTree::new();
    loop {
        match t.resume().unwrap() {
            PauseReason::FunctionCall { .. } => {
                let frame = t.get_current_frame().unwrap();
                let n = frame.variable("n").unwrap();
                tree.enter(format!("fib({})", state::render_value(n.value())));
            }
            PauseReason::FunctionReturn { return_value, .. } => {
                tree.leave(return_value.unwrap());
            }
            PauseReason::Exited(_) => break,
            other => panic!("unexpected {other}"),
        }
    }
    // fib(5) performs 15 calls.
    assert_eq!(tree.len(), 15);
    // All returned by the end.
    assert!(tree.nodes().iter().all(|n| !n.active));
    let dot = tree.to_dot("fib");
    assert_eq!(dot.matches("shape=\"box\"").count(), 15);
    // Root label shows the tracked arguments.
    assert!(dot.contains("fib(5)"));
    t.terminate();
}

#[test]
fn riscv_viewer_pipeline() {
    let src = "\
.data
v: .word 11, 22
.text
main:
    la t0, v
    lw a0, 0(t0)
    lw t1, 4(t0)
    add a0, a0, t1
    li a7, 93
    ecall
";
    let mut t = init_tracker("v.s", src).unwrap();
    t.start().unwrap();
    t.step().unwrap();
    t.step().unwrap();
    let low = t.low_level().unwrap();
    let regs = low.registers().unwrap();
    let mem = low.read_memory(0x0, 32).unwrap();
    let view = MemView::from_registers(&regs).with_memory(0, &mem);
    let text = view.render_text();
    assert!(text.contains("a0 = 11"), "{text}");
    let (file, source) = t.get_source().unwrap();
    let sv = SourceView::default()
        .at_line(t.current_line().unwrap())
        .with_title(&file)
        .render_text(&source);
    assert!(sv.contains("=>"));
    t.terminate();
}

#[test]
fn array_view_follows_a_sort() {
    let src = "\
a = [3, 1, 2]
n = len(a)
i = 0
while i < n - 1:
    j = 0
    while j < n - 1 - i:
        if a[j] > a[j + 1]:
            a[j], a[j + 1] = a[j + 1], a[j]
        j = j + 1
    i = i + 1
done = a
";
    let mut t = init_tracker("bubble.py", src).unwrap();
    t.start().unwrap();
    let mut frames = Vec::new();
    while t.get_exit_code().is_none() {
        let frame = t.get_current_frame().unwrap();
        if let Some(a) = frame.variable("a") {
            frames.push(ArrayView::from_value(a.value()).render_text());
        }
        t.step().unwrap();
    }
    t.terminate();
    assert!(frames.first().unwrap().contains('3'));
    assert!(frames.last().unwrap().contains("|1|"));
    // The array visibly changed over the run.
    assert!(frames.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn record_export_import_drive_loop() {
    // Full circle: live run -> recording -> PT JSON -> recording -> replay
    // tracker -> diagram.
    let src = "def inc(x):\n    return x + 1\na = inc(1)\nb = inc(a)\n";
    let mut live = init_tracker("loop.py", src).unwrap();
    let rec = Recording::capture(live.as_mut()).unwrap();
    live.terminate();
    let pt = pttrace::trace_from_recording(&rec);
    let rec2 = pttrace::recording_from_trace(&pt, "loop.py").unwrap();
    let mut t = ReplayTracker::new(rec2);
    t.start().unwrap();
    t.break_before_func("inc", None).unwrap();
    let r = t.resume().unwrap();
    assert!(matches!(r, PauseReason::Breakpoint { .. }));
    let frame = t.get_current_frame().unwrap();
    assert_eq!(frame.name(), "inc");
    let svg = render_svg(&frame, &[], &StackDiagramOptions::default());
    assert!(svg.contains("inc"));
    t.terminate();
}

#[test]
fn game_runs_via_generic_tool_stack() {
    // The game is itself an EasyTracker tool; its reports feed the map
    // renderer.
    let level = game::Level::level_one();
    let g = game::Game::new(level.clone());
    let report = g.play(&level.buggy_source).unwrap();
    let frame = report.frames.first().unwrap();
    let rendered = g.render_frame(frame);
    assert!(rendered.contains('@'));
    assert!(!report.won);
}
