//! The in-engine profiling plane, end to end: arm the profiler over MI,
//! run a recursive workload to completion, drain the profile, and render
//! it three ways — a flamegraph-compatible `.folded` file, an SVG
//! flamegraph, and a per-line heatmap listing on stdout.
//!
//! Also runs the same program under sampling mode to show that the
//! deterministic sampling clock agrees with exact counting on where the
//! time goes.
//!
//! Run with: `cargo run --example profile_demo`

use easytracker::{MiTracker, Tracker};
use obs::{ProfileMode, ProfileReport};

const C_PROG: &str = "\
int fib(int n) {
if (n < 2) { return n; }
return fib(n - 1) + fib(n - 2);
}
int *scratch(int n) {
int *p = malloc(n * 4);
for (int i = 0; i < n; i++) { p[i] = i; }
return p;
}
int main() {
int *buf = scratch(64);
int r = fib(12);
printf(\"fib(12) = %d\\n\", r);
free(buf);
return 0;
}
";

fn run(mode: ProfileMode, period: u64) -> Result<ProfileReport, easytracker::TrackerError> {
    let mut t = MiTracker::load_c("fib.c", C_PROG)?;
    t.set_profile(mode, period)?;
    t.start()?;
    while t.resume()?.is_alive() {}
    let report = t.profile()?;
    t.terminate();
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let counting = run(ProfileMode::Counting, 0)?;
    println!(
        "counting profile: {} ops across {} functions\n",
        counting.units,
        counting.functions.len()
    );

    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "function", "calls", "self", "total"
    );
    for f in &counting.functions {
        println!(
            "{:<12} {:>8} {:>10} {:>10}",
            f.name, f.calls, f.self_units, f.total_units
        );
    }

    println!(
        "\n{}",
        viz::heatmap::HeatmapView::default()
            .with_title("fib.c")
            .with_unit("ops")
            .render_text(C_PROG, &counting.line_counts())
    );

    if !counting.alloc_sites.is_empty() {
        println!("allocation sites:");
        for a in &counting.alloc_sites {
            println!(
                "  line {:>3}: {} allocation(s), {} bytes",
                a.line, a.count, a.bytes
            );
        }
        println!();
    }

    let stacks = counting.folded_stacks();
    std::fs::write("profile.folded", viz::flame::render_folded(&stacks))?;
    std::fs::write("profile_flame.svg", viz::flame::render_svg(&stacks))?;
    println!("wrote profile.folded (flamegraph-compatible) and profile_flame.svg");

    // The sampling clock is seeded and driven by the op counter, so this
    // run is reproducible bit for bit — and its ranking matches counting.
    let sampling = run(ProfileMode::Sampling, 64)?;
    println!(
        "\nsampling profile: {} samples over {} ops (period 64)",
        sampling.samples, sampling.units
    );
    let top = |r: &ProfileReport| {
        r.top_self(3)
            .iter()
            .map(|(n, _)| (*n).to_owned())
            .collect::<Vec<_>>()
    };
    let (a, b) = (top(&counting), top(&sampling));
    println!("top-3 by self time — counting: {a:?}, sampling: {b:?}");
    println!("rankings {}", if a == b { "agree" } else { "disagree" });
    Ok(())
}
