//! The RISC-V registers and memory viewer (paper §III-B, Fig. 7).
//!
//! Steps an assembly program line by line and, at each pause, reads the
//! register file and raw memory through the low-level interface (the
//! paper's `get_registers_gdb` / `get_value_at_gdb`) to render the Fig. 7
//! side-by-side view: source with the current line marked, registers, and
//! memory as a one-dimensional array of words.
//!
//! Run with: `cargo run --example riscv_viewer`

use easytracker::init_tracker;
use viz::memview::MemView;
use viz::source::SourceView;

const PROG: &str = "\
.data
vec: .word 4, 8, 15, 16, 23, 42
.text
main:
    la t0, vec          # t0 = &vec
    li t1, 0            # sum
    li t2, 0            # i
loop:
    li t3, 6
    bge t2, t3, done
    slli t4, t2, 2
    add t4, t4, t0
    lw t5, 0(t4)
    add t1, t1, t5
    addi t2, t2, 1
    j loop
done:
    mv a0, t1
    li a7, 93
    ecall
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/easytracker-out");
    std::fs::create_dir_all(out_dir)?;
    let mut tracker = init_tracker("vecsum.s", PROG)?;
    tracker.start()?;
    let (_, source) = tracker.get_source()?;
    let mut shot = 0usize;
    let mut last = String::new();
    while tracker.get_exit_code().is_none() {
        let line = tracker.current_line().unwrap_or(0);
        let low = tracker.low_level().expect("assembly tracker is low-level");
        let regs = low.registers()?;
        // The data segment holds `vec`; show its six words.
        let data = low.read_memory(0x40, 64)?;
        let view = MemView::from_registers(&regs)
            .with_memory(0x40, &data[..24.min(data.len())])
            .with_title(format!("vecsum.s — line {line}"));
        let src_view = SourceView::default().at_line(line).with_title("vecsum.s");
        shot += 1;
        std::fs::write(
            out_dir.join(format!("fig7.{shot:03}.cpu.svg")),
            view.render_svg(),
        )?;
        std::fs::write(
            out_dir.join(format!("fig7.{shot:03}.src.svg")),
            src_view.render_svg(&source),
        )?;
        last = format!("{}\n{}", src_view.render_text(&source), view.render_text());
        tracker.step()?;
    }
    println!("{last}");
    println!("exit code: {:?}", tracker.get_exit_code());
    println!("wrote {shot} register/memory snapshots to target/easytracker-out/");
    tracker.terminate();
    Ok(())
}
