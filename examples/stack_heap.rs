//! The stack-and-heap diagram tool (paper §III-A, Fig. 6 and Listing 1).
//!
//! Steps through a MiniPy program and a MiniC program, generating one
//! diagram per executed line. Diagrams are written as SVG files under
//! `target/easytracker-out/` and the final one is printed as text.
//!
//! Only the `init_tracker` call is language-specific — data representation
//! and program control are language-agnostic (the paper's Listing 1).
//!
//! Run with: `cargo run --example stack_heap`

use easytracker::init_tracker;
use viz::stack::{render_svg, render_text, StackDiagramOptions};

const PY_PROG: &str = "\
def middle(lst):
    pair = (lst[0], lst[-1])
    return pair
xs = [3, 1, 4, 1, 5]
ys = xs
m = middle(xs)
";

const C_PROG: &str = "\
struct node { int v; struct node* next; };
int main() {
int* arr = malloc(3 * sizeof(int));
arr[0] = 10; arr[1] = 20; arr[2] = 30;
struct node n;
n.v = 1;
n.next = NULL;
int* dangling = malloc(4);
free(dangling);
int x = 7;
int* p = &x;
return 0;
}
";

fn run_tool(
    file: &str,
    source: &str,
    opts: &StackDiagramOptions,
) -> Result<usize, Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/easytracker-out");
    std::fs::create_dir_all(out_dir)?;
    let mut tracker = init_tracker(file, source)?;
    tracker.start()?;
    let mut img_count = 0usize;
    let mut last_text = String::new();
    // The paper's Listing 1, verbatim in shape.
    while tracker.get_exit_code().is_none() {
        let frame = tracker.get_current_frame()?;
        let globals = tracker.get_global_variables()?;
        let svg = render_svg(&frame, &globals, opts);
        img_count += 1;
        let path = out_dir.join(format!("{file}.{img_count:03}.stack_heap.svg"));
        std::fs::write(&path, svg)?;
        last_text = render_text(&frame, &globals, opts);
        tracker.step()?;
    }
    tracker.terminate();
    println!("final state of {file}:");
    println!("{last_text}");
    Ok(img_count)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 6a: stack only, inlined values (MiniPy).
    let n = run_tool("fig6a.py", PY_PROG, &StackDiagramOptions::stack_only())?;
    println!("fig6a: wrote {n} diagrams (stack-only, inlined)\n");
    // Fig. 6b: stack + heap with reference arrows (MiniPy).
    let n = run_tool("fig6b.py", PY_PROG, &StackDiagramOptions::default())?;
    println!("fig6b: wrote {n} diagrams (stack + heap)\n");
    // Fig. 6c: the same tool, unchanged, on a MiniC program with pointers
    // into the stack and an invalid (freed) pointer drawn as a cross.
    let n = run_tool("fig6c.c", C_PROG, &StackDiagramOptions::default())?;
    println!("fig6c: wrote {n} diagrams (C stack + heap, invalid pointers)");
    println!("\nSVGs are under target/easytracker-out/");
    Ok(())
}
