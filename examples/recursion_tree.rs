//! The recursive-call tree tool (paper §III-C, Fig. 8 and Listing 6).
//!
//! Tracks every entry/exit of a recursive function via `track_function`
//! and grows a call tree: red nodes are live calls, gray nodes have
//! returned (their return value labels a dashed back edge). Emits both
//! DOT (for Graphviz users) and self-contained SVG.
//!
//! Run with: `cargo run --example recursion_tree`

use easytracker::{init_tracker, PauseReason};
use viz::calltree::CallTree;

const C_PROG: &str = "\
int merge_sortish(int lo, int hi) {
if (hi - lo < 2) { return 1; }
int mid = (lo + hi) / 2;
int a = merge_sortish(lo, mid);
int b = merge_sortish(mid, hi);
return a + b;
}
int main() {
return merge_sortish(0, 6);
}
";

/// The paper's `control` function (Listing 6): drive the tracker, update
/// the tree on CALL/RETURN pause reasons, render after each event.
fn control(
    file: &str,
    source: &str,
    func_name: &str,
    args_names: &[&str],
) -> Result<CallTree, Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/easytracker-out");
    std::fs::create_dir_all(out_dir)?;
    let mut tracker = init_tracker(file, source)?;
    tracker.track_function(func_name, None)?;
    tracker.start()?;
    let mut tree = CallTree::new();
    let mut idx = 0usize;
    while tracker.get_exit_code().is_none() {
        match tracker.resume()? {
            PauseReason::FunctionCall { .. } => {
                // Gather the argument values chosen for display.
                let frame = tracker.get_current_frame()?;
                let args: Vec<String> = args_names
                    .iter()
                    .filter_map(|n| frame.variable(n))
                    .map(|v| state::render_value(v.value().deref_fully()))
                    .collect();
                tree.enter(format!("{func_name}({})", args.join(", ")));
            }
            PauseReason::FunctionReturn { return_value, .. } => {
                tree.leave(return_value.unwrap_or_else(|| "?".into()));
            }
            _ => continue,
        }
        idx += 1;
        std::fs::write(
            out_dir.join(format!("fig8.rec-{idx:03}.dot")),
            tree.to_dot("rec"),
        )?;
        std::fs::write(
            out_dir.join(format!("fig8.rec-{idx:03}.svg")),
            tree.to_svg(),
        )?;
    }
    tracker.terminate();
    Ok(tree)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = control("rec.c", C_PROG, "merge_sortish", &["lo", "hi"])?;
    println!("recorded {} calls; final tree:", tree.len());
    print!("{}", tree.render_text());
    println!("\nper-event DOT/SVG frames are under target/easytracker-out/");
    Ok(())
}
