//! Reverse debugging on a recording (paper §V: the RR-tracker direction).
//!
//! Records a buggy binary-search run once, then debugs it *backwards*:
//! starting from the bad final state, `resume_back` over a watchpoint on
//! the `lo`/`hi` bounds walks the investigator back through every state
//! change until the iteration where the invariant broke.
//!
//! Run with: `cargo run --example reverse_debugging`

use easytracker::{PauseReason, PyTracker, Recording, ReplayTracker, Tracker};

/// Binary search with the classic `hi = mid` / `hi = mid - 1` bug that
/// makes it miss the last element.
const PROG: &str = "\
def bsearch(a, x):
    lo = 0
    hi = len(a) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < x:
            lo = mid + 1
        else:
            hi = mid - 1
    return lo
data = [2, 4, 6, 8, 10, 12]
idx = bsearch(data, 10)
print(idx)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record the run live.
    let mut live = PyTracker::load("bsearch.py", PROG)?;
    let recording = Recording::capture(&mut live)?;
    live.terminate();
    println!(
        "recorded {} steps; program printed: {:?}",
        recording.len(),
        recording
            .steps
            .iter()
            .map(|s| s.output_delta.as_str())
            .collect::<String>()
            .trim()
    );

    // 2. Jump to the end and debug backwards.
    let mut t = ReplayTracker::new(recording);
    t.start()?;
    while t.get_exit_code().is_none() {
        t.step()?;
    }
    println!("\nat program end; reverse-stepping through the search bounds:");
    t.watch("bsearch::lo")?;
    t.watch("bsearch::hi")?;
    let mut moves = 0;
    loop {
        match t.resume_back()? {
            PauseReason::Watchpoint {
                variable, old, new, ..
            } => {
                moves += 1;
                let line = t.current_line().unwrap_or(0);
                // Note the reversed reading: going backwards, `new` is the
                // later-in-time value we are *leaving*.
                println!(
                    "  back to line {line}: {variable} became {new} (was {})",
                    old.unwrap_or_else(|| "unset".into())
                );
                let frame = t.get_current_frame()?;
                if let (Some(lo), Some(hi)) = (frame.variable("lo"), frame.variable("hi")) {
                    let lo = state::render_value(lo.value().deref_fully());
                    let hi = state::render_value(hi.value().deref_fully());
                    if lo > hi {
                        println!("    !! lo > hi here ({lo} > {hi}) — the window collapsed past the target");
                    }
                }
            }
            PauseReason::Started => break,
            other => println!("  {other}"),
        }
        if moves > 20 {
            break;
        }
    }
    println!(
        "\n{moves} bound changes replayed in reverse — the `hi = mid - 1` branch drops the answer."
    );
    Ok(())
}
