//! The loop-invariant array visualization (paper §I, Fig. 1).
//!
//! Watches an insertion sort and renders the array after every line with
//! the `i`/`j` indices marked and the already-sorted prefix highlighted —
//! the exact classroom visualization of the paper's Fig. 1.
//!
//! Run with: `cargo run --example loop_invariant`

use easytracker::{init_tracker, Content, Value};
use viz::array::ArrayView;

const SORT: &str = "\
def insertion_sort(a):
    i = 1
    while i < len(a):
        j = i
        while j > 0 and a[j - 1] > a[j]:
            a[j - 1], a[j] = a[j], a[j - 1]
            j = j - 1
        i = i + 1
    return a
data = [5, 2, 4, 6, 1, 3]
insertion_sort(data)
";

fn int_of(v: &Value) -> Option<usize> {
    match v.deref_fully().content() {
        Content::Primitive(state::Prim::Int(n)) if *n >= 0 => Some(*n as usize),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/easytracker-out");
    std::fs::create_dir_all(out_dir)?;
    let mut tracker = init_tracker("sort.py", SORT)?;
    tracker.start()?;
    let mut img = 0usize;
    let mut last = String::new();
    while tracker.get_exit_code().is_none() {
        let frame = tracker.get_current_frame()?;
        // Show only while inside insertion_sort, like striking Enter in
        // the classroom demo.
        if frame.name() == "insertion_sort" {
            if let Some(a) = frame.variable("a") {
                let mut view = ArrayView::from_value(a.value().deref_fully())
                    .with_title(format!("insertion sort — line {}", frame.location().line()));
                if let Some(i) = frame.variable("i").and_then(|v| int_of(v.value())) {
                    view = view.with_marker("i", i).with_highlight(0..i);
                }
                if let Some(j) = frame.variable("j").and_then(|v| int_of(v.value())) {
                    view = view.with_marker("j", j);
                }
                img += 1;
                std::fs::write(
                    out_dir.join(format!("fig1.{img:03}.array.svg")),
                    view.render_svg(),
                )?;
                last = view.render_text();
            }
        }
        tracker.step()?;
    }
    tracker.terminate();
    println!("wrote {img} array frames to target/easytracker-out/");
    println!("final frame:\n{last}");
    Ok(())
}
