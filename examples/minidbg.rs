//! `minidbg` — an interactive command-line debugger over the EasyTracker
//! API, for any supported inferior (MiniC, MiniPy, RISC-V, recordings).
//!
//! This is the kind of tool the paper says teachers should *not* have to
//! build from scratch: with the Tracker API it is a command loop and some
//! printing. Reads commands from stdin, so it scripts cleanly:
//!
//! ```text
//! echo 'b 6
//! c
//! p x
//! bt
//! c
//! q' | cargo run --example minidbg            # demo program
//! cargo run --example minidbg prog.c          # your own file
//! ```
//!
//! Commands: `s`tep, `n`ext, `f`inish, `c`ontinue, `b <line>`,
//! `bf <func> [maxdepth]`, `t <func>` (track), `w <var>` (watch),
//! `p <var>` (print), `bt` (backtrace), `l`ist, `regs`, `o`utput,
//! `stats` (session metrics), `q`uit.

use easytracker::{init_tracker, PauseReason, Tracker};
use std::io::{self, BufRead, Write};

const DEMO: &str = "\
def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)
x = fact(4)
print('4! =', x)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let (file, source) = match args.get(1) {
        Some(path) => (path.clone(), std::fs::read_to_string(path)?),
        None => ("demo.py".to_owned(), DEMO.to_owned()),
    };
    let mut t = init_tracker(&file, &source)?;
    let reason = t.start()?;
    println!("{file}: started ({reason})");
    print_position(t.as_mut(), &source);

    let stdin = io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("(minidbg) ");
            io::stdout().flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let reason = match parts.as_slice() {
            [] => continue,
            ["q"] | ["quit"] => break,
            ["s"] | ["step"] => Some(t.step()),
            ["n"] | ["next"] => Some(t.next()),
            ["f"] | ["finish"] => Some(t.finish()),
            ["c"] | ["continue"] => Some(t.resume()),
            ["b", line_no] => {
                report_created(t.break_before_line(line_no.parse().unwrap_or(0)));
                None
            }
            ["bf", func] => {
                report_created(t.break_before_func(func, None));
                None
            }
            ["bf", func, depth] => {
                report_created(t.break_before_func(func, depth.parse().ok()));
                None
            }
            ["t", func] => {
                report_created(t.track_function(func, None));
                None
            }
            ["w", var] => {
                report_created(t.watch(var));
                None
            }
            ["p", var] => {
                match t.get_variable(var) {
                    Ok(Some(v)) => println!(
                        "{} = {}  ({}, {})",
                        v.name(),
                        state::render_value(v.value().deref_fully()),
                        v.value().language_type(),
                        v.scope()
                    ),
                    Ok(None) => println!("no variable `{var}`"),
                    Err(e) => println!("error: {e}"),
                }
                None
            }
            ["bt"] => {
                match t.get_current_frame() {
                    Ok(frame) => {
                        for (i, f) in frame.chain().enumerate() {
                            println!("#{i} {} at {}", f.name(), f.location());
                            for var in f.variables() {
                                println!(
                                    "    {} = {}",
                                    var.name(),
                                    state::render_value(var.value().deref_fully())
                                );
                            }
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
                None
            }
            ["l"] | ["list"] => {
                print_position(t.as_mut(), &source);
                None
            }
            ["regs"] => {
                match t.low_level() {
                    Some(low) => match low.registers() {
                        Ok(regs) => {
                            for r in regs {
                                print!("{}={} ", r.name(), state::render_value(r.value()));
                            }
                            println!();
                        }
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("this tracker has no register access"),
                }
                None
            }
            ["o"] | ["output"] => {
                print!("{}", t.get_output().unwrap_or_default());
                None
            }
            ["stats"] => {
                let snap = t.stats();
                if snap.is_empty() {
                    println!("no metrics recorded yet");
                } else {
                    print!("{}", snap.render_table());
                }
                None
            }
            other => {
                println!("unknown command {other:?} — s n f c b bf t w p bt l regs o stats q");
                None
            }
        };
        if let Some(result) = reason {
            match result {
                Ok(reason) => {
                    println!("{reason}");
                    if let PauseReason::Exited(_) = reason {
                        print!("{}", t.get_output().unwrap_or_default());
                        println!("inferior finished (exit code {:?})", t.get_exit_code());
                    } else {
                        print_position(t.as_mut(), &source);
                    }
                }
                Err(e) => report_failure(&e),
            }
        }
    }
    t.terminate();
    Ok(())
}

/// Execution-command failures carry the most context (a dead engine's
/// exit code and captured stderr ride along in the message); a degraded
/// session additionally means no further engine command can succeed, so
/// say that once instead of letting the user rediscover it per command.
fn report_failure(e: &easytracker::TrackerError) {
    println!("error: {e}");
    if matches!(e, easytracker::TrackerError::SessionDegraded(_)) {
        println!("the engine session is gone for good; `q` to exit");
    }
}

fn report_created(r: easytracker::Result<u64>) {
    match r {
        Ok(id) => println!("control point {id} set"),
        Err(e) => println!("error: {e}"),
    }
}

fn print_position(t: &mut dyn Tracker, source: &str) {
    if let Some(line) = t.current_line() {
        let view = viz::source::SourceView::default().at_line(line);
        let text = view.render_text(source);
        // Show a 5-line window around the current line.
        let lo = line.saturating_sub(3) as usize;
        for l in text.lines().skip(lo).take(5) {
            println!("{l}");
        }
    }
}

/// Crude interactivity check without platform crates: scripts set
/// MINIDBG_BATCH=1 or just pipe stdin (prompts are harmless either way).
fn atty_stdin() -> bool {
    std::env::var_os("MINIDBG_BATCH").is_none()
}
