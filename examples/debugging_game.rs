//! The debugging game (paper §III-D, Fig. 9).
//!
//! The shipped level program has a bug: `check_key` never records the
//! key pickup, so the door stays closed. The game controller runs the
//! level under EasyTracker, animates the character from watchpoint hits,
//! and produces incremental hints from live inspection. This example
//! plays the buggy version (losing, with hints) and then the fixed
//! version (winning) — simulating the player's edit.
//!
//! Run with: `cargo run --example debugging_game`

use game::{Game, Level};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let level = Level::level_one();
    let game = Game::new(level.clone());
    println!("=== {} ===", level.name);
    println!("{}", level.map);

    println!("--- attempt 1: the program as shipped ---");
    let report = game.play(&level.buggy_source)?;
    for (i, frame) in report.frames.iter().enumerate() {
        println!(
            "move {}: ({}, {}) key={} door={}",
            i + 1,
            frame.x,
            frame.y,
            frame.has_key,
            frame.door_open
        );
    }
    println!("{report}");

    println!("--- the player inspects check_key and fixes it ---");
    let fixed = level
        .buggy_source
        .replace("/* BUG: the key is never picked up */", "has_key = 1;");
    let report = game.play(&fixed)?;
    if let Some(last) = report.frames.last() {
        println!("{}", game.render_frame(last));
    }
    println!("{report}");
    assert!(report.won);
    Ok(())
}
