//! Simultaneous control of multiple programs (paper §V): a program
//! equivalence checker built on EasyTracker.
//!
//! Two implementations of the same algorithm — one MiniC, one MiniPy — run
//! under two trackers at once. A watchpoint on the algorithm's state
//! variable yields each program's sequence of state changes; the checker
//! compares the sequences value by value and reports the first
//! divergence. This needs *online* control of both inferiors — precisely
//! what trace-based tools cannot do when the programs are interactive.
//!
//! Run with: `cargo run --example lockstep_equivalence`

use easytracker::{init_tracker, PauseReason, Tracker};

const C_GCD: &str = "\
int main() {
int a = 252;
int b = 105;
while (b != 0) {
int t = b;
b = a % b;
a = t;
}
return a;
}
";

/// The same Euclid — with a deliberate bug to demonstrate divergence
/// detection when `BUGGY` is substituted in.
fn py_gcd(buggy: bool) -> String {
    let restore = if buggy { "a = b" } else { "a = t" };
    format!("a = 252\nb = 105\nwhile b != 0:\n    t = b\n    b = a % b\n    {restore}\ndone = a\n")
}

/// Collects the change sequence of `variable` during a full run.
fn change_sequence(
    tracker: &mut dyn Tracker,
    variable: &str,
) -> Result<Vec<String>, easytracker::TrackerError> {
    tracker.start()?;
    tracker.watch(variable)?;
    let mut seq = Vec::new();
    loop {
        match tracker.resume()? {
            PauseReason::Watchpoint { new, .. } => seq.push(new),
            PauseReason::Exited(_) => return Ok(seq),
            _ => {}
        }
        if seq.len() > 10_000 {
            // Equivalence checking must survive non-terminating candidates.
            tracker.terminate();
            return Ok(seq);
        }
    }
}

fn compare(label: &str, c_seq: &[String], py_seq: &[String]) {
    // Both trackers report the initial binding first (the C engine primes
    // on scope entry, the Python tracker on first binding), so the change
    // sequences compare element-wise.
    let py = py_seq;
    match c_seq.iter().zip(py).position(|(a, b)| a != b) {
        Some(i) => println!(
            "{label}: DIVERGENCE at change #{i}: C has {} but Python has {}",
            c_seq[i], py[i]
        ),
        None if c_seq.len() != py.len() => println!(
            "{label}: DIVERGENCE in length: C made {} changes, Python {}",
            c_seq.len(),
            py.len()
        ),
        None => println!("{label}: equivalent ({} state changes match)", c_seq.len()),
    }
}

fn main() -> Result<(), easytracker::TrackerError> {
    let mut c = init_tracker("gcd.c", C_GCD)?;
    let c_seq = change_sequence(c.as_mut(), "b")?;
    c.terminate();

    println!("checking the correct Python port…");
    let mut py = init_tracker("gcd.py", &py_gcd(false))?;
    let py_seq = change_sequence(py.as_mut(), "b")?;
    py.terminate();
    compare("gcd (correct)", &c_seq, &py_seq);

    println!("\nchecking the buggy Python port…");
    let mut py = init_tracker("gcd.py", &py_gcd(true))?;
    let py_seq = change_sequence(py.as_mut(), "b")?;
    py.terminate();
    compare("gcd (buggy)", &c_seq, &py_seq);
    Ok(())
}
