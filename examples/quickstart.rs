//! Quickstart: the EasyTracker API in one tour.
//!
//! Runs the same control-and-inspect loop over three inferiors — a MiniC
//! program, a MiniPy program, and a RISC-V assembly program — using the
//! single language-agnostic `Tracker` API (the paper's core claim).
//!
//! Run with: `cargo run --example quickstart`

use easytracker::{init_tracker, PauseReason};

const C_PROG: &str = "\
int fib(int n) {
if (n < 2) { return n; }
return fib(n - 1) + fib(n - 2);
}
int main() {
int r = fib(6);
printf(\"fib(6) = %d\\n\", r);
return r;
}
";

const PY_PROG: &str = "\
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
r = fib(6)
print('fib(6) =', r)
";

const ASM_PROG: &str = "\
main:
    li a0, 6
    call fib
    li a7, 93
    ecall
fib:
    li t0, 2
    blt a0, t0, base
    addi sp, sp, -12
    sw ra, 8(sp)
    sw a0, 4(sp)
    addi a0, a0, -1
    call fib
    sw a0, 0(sp)
    lw a0, 4(sp)
    addi a0, a0, -2
    call fib
    lw t1, 0(sp)
    add a0, a0, t1
    lw ra, 8(sp)
    addi sp, sp, 12
    ret
base:
    ret
";

/// The language-agnostic controller (the paper's Listing 6 shape): track
/// the recursive function, count calls, report returns.
fn demo(file: &str, source: &str, function: &str) -> Result<(), easytracker::TrackerError> {
    println!("──── {file} ────");
    let mut tracker = init_tracker(file, source)?;
    tracker.start()?;
    tracker.track_function(function, None)?;
    let mut calls = 0;
    loop {
        match tracker.resume()? {
            PauseReason::FunctionCall { function, depth } => {
                calls += 1;
                println!("  call  {function} at depth {depth}");
            }
            PauseReason::FunctionReturn {
                function,
                return_value,
                ..
            } => {
                println!(
                    "  return {function} -> {}",
                    return_value.unwrap_or_else(|| "?".into())
                );
            }
            PauseReason::Exited(status) => {
                println!("  exited: {status:?}");
                break;
            }
            other => println!("  paused: {other}"),
        }
        if calls > 40 {
            // Keep the demo output short.
            tracker.resume()?;
            break;
        }
    }
    let out = tracker.get_output()?;
    if !out.is_empty() {
        print!("  program output: {out}");
    }
    tracker.terminate();
    Ok(())
}

fn main() -> Result<(), easytracker::TrackerError> {
    demo("fib.c", C_PROG, "fib")?;
    demo("fib.py", PY_PROG, "fib")?;
    demo("fib.s", ASM_PROG, "fib")?;
    println!("\nOne controller, three languages — that is EasyTracker's API.");
    Ok(())
}
