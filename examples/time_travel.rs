//! Time travel on a persistent recording (the omniscient-debugging
//! direction of the paper's §V record/replay workflow).
//!
//! Records a MiniC run *inside the engine* via the MI `Record` command,
//! asks the engine history questions no live debugger can answer ("when
//! did `s` last change before pause 40?"), then saves the store to disk,
//! reopens it cold, and scrubs it: O(log n) seeks to arbitrary pauses,
//! reverse-step through the exact forward sequence, and a Python-Tutor
//! HTML page with a timeline slider rendered straight from the store.
//!
//! Run with: `cargo run --example time_travel`

use easytracker::{MiTracker, Recording, ReplayTracker, Tracker};

const PROG: &str = r#"int square(int k) {
    int r = k * k;
    return r;
}

int main() {
    int s = 0;
    int i = 1;
    while (i <= 4) {
        s = s + square(i);
        printf("%d\n", s);
        i = i + 1;
    }
    return s;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Arm the in-engine recorder, then run to completion. Every pause
    //    lands in the engine's trace store as a keyframe or delta.
    let mut live = MiTracker::load_c("square.c", PROG)?;
    live.record(8)?;
    let mut reason = live.start()?;
    let mut pauses = 1u64;
    while reason.is_alive() {
        reason = live.step()?;
        pauses += 1;
    }
    let (recorded, keyframes, bytes) = live.trace_stats()?;
    println!(
        "recorded {recorded} pauses ({pauses} observed live) in {keyframes} keyframes, \
         {bytes} bytes on the wire-format"
    );

    // 2. History queries answered by the write index — no replay at all.
    println!("\nevery write to main::s:");
    for hit in live.query_history("main::s", None, None)? {
        println!("  pause {:>3}: s = {}", hit.pause, hit.value);
    }
    if let Some(hit) = live.last_change("s", Some(recorded / 2))? {
        println!(
            "last change to s before pause {}: pause {} (s = {})",
            recorded / 2,
            hit.pause,
            hit.value
        );
    }

    // 3. Seek the *engine* back in time: inspection commands now answer
    //    from the recording, byte-identical to what the live run showed.
    live.seek(recorded / 2)?;
    let mid = live.get_state()?;
    println!(
        "\nengine seeked to pause {}: line {}, {:?}",
        recorded / 2,
        mid.frame.location().line(),
        mid.reason
    );

    // 4. Persist a recording, reopen it cold, and scrub. The client-side
    //    capture observes the same deterministic execution the engine
    //    recorded, folded into the same store format.
    live.terminate();
    let mut fresh = MiTracker::load_c("square.c", PROG)?;
    let recording = Recording::capture(&mut fresh)?;
    fresh.terminate();
    let replay = ReplayTracker::new(recording);
    let dir = std::env::temp_dir().join("easytracker-time-travel");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("square.eztrace");
    replay.save(&path)?;
    let mut t = ReplayTracker::open(&path)?;
    t.start()?;
    println!(
        "\nreopened {} ({} pauses) from disk",
        path.display(),
        t.recorded_pauses()
    );

    // O(log n) seeks: jump around the timeline in arbitrary order.
    for target in [0, t.recorded_pauses() - 1, t.recorded_pauses() / 3] {
        t.seek(target)?;
        let st = t.get_state()?;
        println!(
            "  seek({target:>3}) -> line {:>2}, depth {}",
            st.frame.location().line(),
            st.frame.depth()
        );
    }

    // Reverse-step: the exact forward sequence, walked backwards.
    t.seek(t.recorded_pauses() - 1)?;
    print!("  reverse from the end:");
    for _ in 0..6 {
        t.step_back()?;
        print!(" line {}", t.current_line().unwrap_or(0));
    }
    println!();

    // 5. Render the Python-Tutor HTML artifact with the scrub slider.
    let trace = pttrace::trace_from_recording(&t.to_recording());
    let html = pttrace::html::render_html(&trace, "square.c — time travel");
    let html_path = dir.join("time_travel.html");
    std::fs::write(&html_path, html)?;
    println!(
        "\nwrote {} — open it and drag the slider",
        html_path.display()
    );
    Ok(())
}
