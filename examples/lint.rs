//! `lint`: the static memory-safety checker and bytecode verifier as a
//! command-line tool.
//!
//! Compiles one or more MiniC source files, runs the bytecode verifier
//! over each compiled program (at -O0 and, with `--opt N`, over the
//! optimizer's output too — translation validation from the shell), and
//! prints every finding of the `analysis` crate in a compiler-style
//! format, sorted by file and line.
//!
//! Exit codes distinguish the two failure classes:
//!
//! * `2` — a program failed bytecode **verification** (compiler or
//!   optimizer bug territory: the artifact itself is malformed);
//! * `1` — verification passed but a **lint** finding of severity
//!   `Error` was reported (or a file failed to read/compile);
//! * `0` — everything verified and no error-severity findings.
//!
//! Run with: `cargo run --example lint -- [--opt N] tests/fixtures/*.mc`
//! (no file arguments lints a built-in demo program).

use state::Severity;
use std::process::ExitCode;

const DEMO: &str = "\
int main() {
int* p = malloc(4);
*p = 7;
free(p);
int x = *p;
return x;
}
";

#[derive(Default)]
struct Tally {
    findings: usize,
    errors: usize,
    verify_failures: usize,
}

fn lint_one(name: &str, source: &str, opt: u8, tally: &mut Tally) {
    let program = match minic::compile(name, source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{name}: compile error: {e}");
            tally.errors += 1;
            return;
        }
    };

    // Verify the compiled artifact; with --opt also run the optimizer,
    // whose own verify-after-every-pass either yields a clean program or
    // a finding list naming the offending pass.
    let verify_findings = analysis::verify::verify(&program);
    if !verify_findings.is_empty() {
        for f in &verify_findings {
            eprintln!("{name}: verify: {f}");
        }
        tally.verify_failures += 1;
        return;
    }
    if opt > 0 {
        if let Err(e) = analysis::opt::optimize(&program, opt) {
            eprintln!("{name}: verify (-O{opt}): {e}");
            tally.verify_failures += 1;
            return;
        }
    }

    for d in analysis::analyze(&program) {
        println!("{name}:{}: {d}", d.span);
        tally.findings += 1;
        if d.severity == Severity::Error {
            tally.errors += 1;
        }
    }
}

fn main() -> ExitCode {
    let mut opt: u8 = 0;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--opt" {
            opt = args.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
                eprintln!("lint: --opt takes a small non-negative integer");
                std::process::exit(2);
            });
        } else {
            files.push(arg);
        }
    }

    let mut tally = Tally::default();
    if files.is_empty() {
        println!("(no files given; linting the built-in demo)");
        lint_one("demo.mc", DEMO, opt, &mut tally);
    } else {
        for file in &files {
            match std::fs::read_to_string(file) {
                Ok(source) => lint_one(file, &source, opt, &mut tally),
                Err(e) => {
                    eprintln!("{file}: {e}");
                    tally.errors += 1;
                }
            }
        }
    }

    println!(
        "{} finding{} ({} error{}, {} verification failure{})",
        tally.findings,
        if tally.findings == 1 { "" } else { "s" },
        tally.errors,
        if tally.errors == 1 { "" } else { "s" },
        tally.verify_failures,
        if tally.verify_failures == 1 { "" } else { "s" },
    );
    if tally.verify_failures > 0 {
        ExitCode::from(2)
    } else if tally.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
