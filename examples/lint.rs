//! `lint`: the static memory-safety checker as a command-line tool.
//!
//! Compiles one or more MiniC source files and prints every finding of
//! the `analysis` crate in a compiler-style format, sorted by file and
//! line. The process exits non-zero iff any finding is an error, so the
//! tool slots into CI as a gate.
//!
//! Run with: `cargo run --example lint -- tests/fixtures/*.mc`
//! (no arguments lints a built-in demo program).

use state::Severity;
use std::process::ExitCode;

const DEMO: &str = "\
int main() {
int* p = malloc(4);
*p = 7;
free(p);
int x = *p;
return x;
}
";

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    let mut total = 0usize;
    let mut errors = 0usize;

    let lint_one = |name: &str, source: &str, total: &mut usize, errors: &mut usize| {
        let program = match minic::compile(name, source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: compile error: {e}");
                *errors += 1;
                return;
            }
        };
        for d in analysis::analyze(&program) {
            println!("{name}:{}: {d}", d.span);
            *total += 1;
            if d.severity == Severity::Error {
                *errors += 1;
            }
        }
    };

    if files.is_empty() {
        println!("(no files given; linting the built-in demo)");
        lint_one("demo.mc", DEMO, &mut total, &mut errors);
    } else {
        for file in &files {
            match std::fs::read_to_string(file) {
                Ok(source) => lint_one(file, &source, &mut total, &mut errors),
                Err(e) => {
                    eprintln!("{file}: {e}");
                    errors += 1;
                }
            }
        }
    }

    println!(
        "{total} finding{} ({errors} error{})",
        if total == 1 { "" } else { "s" },
        if errors == 1 { "" } else { "s" },
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
