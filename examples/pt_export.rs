//! Python-Tutor trace interop (paper §III-E, Fig. 10).
//!
//! Exports an execution both as a full Python-Tutor trace and as a
//! partial one restricted to the interesting function and variables —
//! the paper reports ~10× trace reduction for its example — then
//! re-imports the trace and drives the full EasyTracker API on it.
//!
//! Run with: `cargo run --example pt_export`

use easytracker::{PauseReason, PyTracker, Recording, ReplayTracker, Tracker};
use pttrace::{
    recording_from_trace, trace_from_recording, trace_size, trace_with_options, ExportOptions,
};

const PROG: &str = "\
def scale(v, k):
    out = []
    for x in v:
        out.append(x * k)
    return out
def norm1(v):
    total = 0
    for x in v:
        total = total + abs(x)
    return total
data = [3, -1, 4, -1, 5, -9, 2, -6]
doubled = scale(data, 2)
n = norm1(doubled)
print(n)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/easytracker-out");
    std::fs::create_dir_all(out_dir)?;

    // Record the run once through the tracker.
    let mut live = PyTracker::load("fig10.py", PROG)?;
    let recording = Recording::capture(&mut live)?;
    live.terminate();
    println!("recorded {} steps", recording.len());

    // Full trace (what a naive exporter would ship to the PT front end).
    let full = trace_from_recording(&recording);
    let full_size = trace_size(&full);
    std::fs::write(
        out_dir.join("fig10.full.json"),
        serde_json::to_string_pretty(&full)?,
    )?;

    // Partial trace: only the module-level view of the interesting vars
    // (the paper: "focus on interesting parts ... reduce the trace by a
    // factor of 10 in this example").
    let partial = trace_with_options(
        &recording,
        &ExportOptions {
            only_functions: Some(vec!["<module>".into()]),
            only_variables: Some(vec!["data".into(), "doubled".into(), "n".into()]),
            ..Default::default()
        },
    );
    let partial_size = trace_size(&partial);
    std::fs::write(
        out_dir.join("fig10.partial.json"),
        serde_json::to_string_pretty(&partial)?,
    )?;

    println!("full trace:    {full_size:>8} bytes");
    println!("partial trace: {partial_size:>8} bytes");
    println!(
        "reduction:     {:.1}x",
        full_size as f64 / partial_size as f64
    );

    // The other direction: a PT trace becomes a tracker again.
    let back = recording_from_trace(&full, "fig10.py").map_err(std::io::Error::other)?;
    let mut replay = ReplayTracker::new(back);
    replay.track_function("scale", None)?;
    replay.start()?;
    let mut entries = 0;
    loop {
        match replay.resume()? {
            PauseReason::FunctionCall { function, .. } => {
                assert_eq!(function, "scale");
                entries += 1;
            }
            PauseReason::Exited(_) => break,
            _ => {}
        }
    }
    println!("replayed the PT trace through the API: {entries} tracked call(s) to scale");
    Ok(())
}
