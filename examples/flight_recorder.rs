//! The cross-process telemetry plane, end to end, against a real
//! `mi-server` child process:
//!
//! 1. run a session over OS pipes with trace contexts stamped on every
//!    command frame;
//! 2. estimate the engine↔tracker clock offset from Ping roundtrips and
//!    drain the engine's registry (counters, gauges, spans) back over
//!    `Command::Telemetry`;
//! 3. write one merged Chrome trace with two process lanes — open
//!    `merged.trace.json` in Perfetto and the engine's `vm.minic.exec`
//!    spans sit *inside* the tracker control spans that caused them;
//! 4. SIGKILL the engine mid-session, let the supervisor respawn it, and
//!    print the post-mortem flight-recorder dump the death left behind.
//!
//! Run with: `cargo run --example flight_recorder`

use easytracker::{MiTracker, PauseReason, ProgramSpec, Supervision, Tracker};
use std::sync::Arc;
use std::time::Duration;

const C_PROG: &str = "\
int fib(int n) {
if (n < 2) { return n; }
return fib(n - 1) + fib(n - 2);
}
int main() {
int r = fib(10);
printf(\"fib(10) = %d\\n\", r);
return r;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Some(server) = conformance::mi_server_bin() else {
        eprintln!("mi_server binary not found or buildable; build the workspace first");
        std::process::exit(1);
    };

    // Tracker-side spans land in an export ring so they can be merged
    // with the engine's lane later.
    let registry = obs::Registry::new();
    let tracker_sink = Arc::new(obs::ExportSink::new(8192));
    registry.add_sink(tracker_sink.clone());

    let mut t = MiTracker::load_spec(
        ProgramSpec::c("fib.c", C_PROG).via_server(&server),
        registry.clone(),
        Supervision::default(),
        None,
    )?;
    t.set_dump_dir(std::env::temp_dir());

    let offset = t.sync_clock(8)?.unwrap_or(0);
    println!(
        "engine pid {} | clock offset (engine − tracker): {offset}us",
        t.engine_pid().unwrap_or(0)
    );

    t.start()?;
    t.track_function("fib", None)?;
    let mut pauses = 0u32;
    loop {
        match t.resume()? {
            PauseReason::Exited(_) => break,
            PauseReason::FunctionCall { .. } if pauses == 20 => {
                // Mid-session engine murder: the supervisor respawns the
                // engine, replays the journal, and the session continues
                // as if nothing happened — but a post-mortem dump of the
                // death is written.
                let pid = t.engine_pid().expect("process deployment has a pid");
                println!("SIGKILLing engine pid {pid} mid-session...");
                let _ = std::process::Command::new("kill")
                    .args(["-KILL", &pid.to_string()])
                    .status();
                std::thread::sleep(Duration::from_millis(100));
                pauses += 1;
            }
            _ => pauses += 1,
        }
    }
    let output = t.get_output()?;
    print!("{output}");
    println!(
        "session finished: {pauses} pauses, exit {:?}, {} respawn(s)",
        t.get_exit_code(),
        t.respawns()
    );

    // Drain the (respawned) engine's telemetry and merge both lanes.
    t.drain_telemetry()?;
    let snap = registry.snapshot();
    println!(
        "engine-side (drained over MI): {} VM ops, {} Resume commands served",
        snap.gauge("engine.vm.minic.ops"),
        snap.gauge("engine.mi.server.cmd.Resume"),
    );

    let (tracker_events, _, _) = tracker_sink.since(0);
    let path = std::path::Path::new("merged.trace.json");
    t.write_merged_trace(path, &tracker_events)?;
    println!(
        "wrote {} tracker + {} engine events to {} — two process lanes, one timeline",
        tracker_events.len(),
        t.engine_trace_events().len(),
        path.display()
    );

    // The kill above left a post-mortem behind; show where and what.
    let dump_path = t
        .last_flight_dump()
        .expect("the engine death wrote a flight dump")
        .to_path_buf();
    let dump =
        obs::FlightDump::from_json(&std::fs::read_to_string(&dump_path)?).expect("dump parses");
    println!("\nflight-recorder dump: {}", dump_path.display());
    println!(
        "  reason: {} | last command: {} | last pause: {} | respawns: {}",
        dump.reason, dump.last_command, dump.last_pause, dump.respawns
    );
    for entry in dump.log.entries.iter().rev().take(5).rev() {
        println!(
            "  [{:>8}us] {:<8} {}",
            entry.at_us, entry.kind, entry.detail
        );
    }
    t.terminate();
    Ok(())
}
