//! Profiling a debugging session (paper Fig. 8, §V): run the recursion
//! workload under both the machine-interface tracker (MiniC behind
//! serialized commands on a separate thread) and the in-process Python
//! tracker, with every layer reporting into one shared `obs` registry —
//! and the in-engine profiling plane armed, so where the *inferior*
//! spends its time comes from [`easytracker::Tracker::profile`] instead
//! of ad-hoc timing around the control loop.
//!
//! Produces:
//!
//! * `profile.trace.json` — a Chrome trace-event profile of every control
//!   call and MI roundtrip; open it in `chrome://tracing`, Perfetto
//!   (<https://ui.perfetto.dev>), or Speedscope;
//! * a stats table on stdout — per-control-call latency histograms,
//!   inspection counters, MI byte/frame accounting, and VM execution
//!   counters — the numbers behind the paper's §V overhead discussion;
//! * a hot-function summary per tracker, drained from the in-engine
//!   counting profiler.
//!
//! Run with: `cargo run --example tracing_profile`

use easytracker::{init_tracker_with_registry, PauseReason};

const C_PROG: &str = "\
int fib(int n) {
if (n < 2) { return n; }
return fib(n - 1) + fib(n - 2);
}
int main() {
int r = fib(8);
printf(\"fib(8) = %d\\n\", r);
return r;
}
";

const PY_PROG: &str = "\
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
r = fib(8)
print('fib(8) =', r)
";

/// The Fig. 8 session: track the recursive function, resume across every
/// call/return boundary, snapshot the state at each pause. The counting
/// profiler rides along in the engine, so the drained report attributes
/// the inferior's own work exactly.
fn profile_one(
    session: &obs::Session,
    file: &str,
    source: &str,
) -> Result<(u32, u32, obs::ProfileReport), easytracker::TrackerError> {
    let mut tracker = init_tracker_with_registry(file, source, session.registry())?;
    tracker.set_profile(obs::ProfileMode::Counting, 0)?;
    tracker.start()?;
    tracker.track_function("fib", None)?;
    let (mut calls, mut returns) = (0, 0);
    loop {
        match tracker.resume()? {
            PauseReason::FunctionCall { .. } => {
                calls += 1;
                // Inspect at every pause, like a real visualization tool:
                // this is the traffic the byte counters account for.
                let state = tracker.get_state()?;
                debug_assert_eq!(state.frame.name(), "fib");
            }
            PauseReason::FunctionReturn { .. } => returns += 1,
            PauseReason::Exited(_) => break,
            _ => {}
        }
    }
    tracker.get_output()?;
    let report = tracker.profile()?;
    tracker.terminate();
    Ok((calls, returns, report))
}

fn hot_summary(report: &obs::ProfileReport) -> String {
    report
        .top_self(3)
        .iter()
        .map(|(name, units)| format!("{name} {units}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One session, two trackers: their spans and counters aggregate into
    // a single profile, distinguished by metric names and thread ids.
    let session = obs::Session::new();

    let (c_calls, c_returns, c_report) = profile_one(&session, "fib.c", C_PROG)?;
    println!("MiTracker  (fib.c):  {c_calls} calls, {c_returns} returns observed");
    println!("  hot functions (self ops): {}", hot_summary(&c_report));

    let (py_calls, py_returns, py_report) = profile_one(&session, "fib.py", PY_PROG)?;
    println!("PyTracker  (fib.py): {py_calls} calls, {py_returns} returns observed");
    println!("  hot functions (self lines): {}", hot_summary(&py_report));

    let snap = session.snapshot();
    println!("\n{}", snap.render_table());

    println!(
        "control calls: {} spans | MI roundtrips: {} | MI bytes: {} sent / {} received",
        snap.histograms
            .iter()
            .filter(|(k, _)| k.starts_with("tracker.control."))
            .map(|(_, h)| h.count)
            .sum::<u64>(),
        snap.gauge("mi.client.frames_sent"),
        snap.gauge("mi.client.bytes_sent"),
        snap.gauge("mi.client.bytes_received"),
    );

    let path = std::path::Path::new("profile.trace.json");
    session.write_chrome_trace(path)?;
    println!(
        "\nwrote {} trace events to {} — open in chrome://tracing or https://ui.perfetto.dev",
        session.trace_len(),
        path.display()
    );
    Ok(())
}
