//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored serde's [`Value`] tree and implements JSON text
//! encoding/decoding plus the `json!` macro over it. The API surface
//! mirrors the real crate for everything this workspace calls:
//! `to_string[_pretty]`, `to_vec`, `to_value`, `from_str`, `from_slice`,
//! `from_value`, `Value`/`Number`/`Map`, and `json!`.

// Vendored stand-in: keep clippy focused on first-party code.
#![allow(clippy::all)]

pub use serde::{Map, Number, Value};

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Errors produced by encoding or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Never fails for the vendored value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_json(&mut out, None);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Never fails for the vendored value model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_json(&mut out, Some(2));
    Ok(out)
}

/// Serializes to compact JSON bytes.
///
/// # Errors
///
/// Never fails for the vendored value model.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the vendored value model.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Shape or type mismatches.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Syntax errors and shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes into any deserializable type.
///
/// # Errors
///
/// Invalid UTF-8, syntax errors, and shape mismatches.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid trailing surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error::new("bad surrogate"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("bad unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte position.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(Error::new("control character in string"));
                    }
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(Error::new("truncated unicode escape"));
            };
            self.pos += 1;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("numbers are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

// ---------------------------------------------------------------------------
// json! macro (tt-muncher, modeled on the real crate's)
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from JSON-looking syntax with expression
/// interpolation, like the real `serde_json::json!`.
///
/// The tt-muncher below is a close adaptation of the real crate's
/// `json_internal!`, retargeted at the vendored value model.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => { $crate::json_internal!($($json)+) };
    () => { $crate::Value::Null };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////////////////////////////////////////////////////////////
    // TT muncher for arrays: @array [accumulated,] remaining tts
    //////////////////////////////////////////////////////////////////////////

    // Done with trailing comma / done without trailing comma.
    (@array [$($elems:expr,)*]) => { ::std::vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { ::std::vec![$($elems),*] };

    // Next element is `null` / `true` / `false`.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };

    // Next element is an array or an object.
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };

    // Next element is an expression followed by comma / the last element.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };

    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////////////////////////////////////////////////////////
    // TT muncher for objects: @object $map (current key tts) (remaining) (copy)
    //////////////////////////////////////////////////////////////////////////

    // Done.
    (@object $object:ident () () ()) => {};

    // Insert the current entry followed by trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };

    // Current entry followed by unexpected token (improves errors).
    (@object $object:ident [$($key:tt)+] ($value:expr) $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected);
    };

    // Insert the last entry without trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };

    // Next value is `null` / `true` / `false`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };

    // Next value is an array or an object.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };

    // Next value is an expression followed by comma / the last value.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };

    // Missing value / colon errors.
    (@object $object:ident ($($key:tt)+) (:) $copy:tt) => {
        $crate::json_internal!();
    };
    (@object $object:ident () (: $($rest:tt)*) ($colon:tt $($copy:tt)*)) => {
        $crate::json_unexpected!($colon);
    };
    (@object $object:ident ($($key:tt)*) (, $($rest:tt)*) ($comma:tt $($copy:tt)*)) => {
        $crate::json_unexpected!($comma);
    };

    // Key is fully parenthesized (interpolated key expression).
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };

    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////////////////////////////////////////////////////////
    // Primary rules
    //////////////////////////////////////////////////////////////////////////

    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };

    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };

    // Any Serialize type: numbers, strings, struct literals, variables etc.
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_unexpected {
    () => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][1]["b"], Value::Null);
        assert_eq!(v["c"], "x");
    }

    #[test]
    fn json_macro_shapes() {
        let name = "f";
        let v = json!({
            "fn": name,
            "args": [1, 2.5, true],
            "nested": { "empty": {}, "list": [] },
        });
        assert_eq!(v["fn"], "f");
        assert_eq!(v["args"][0], 1i64);
        assert_eq!(v["nested"]["list"], json!([]));
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }

    #[test]
    fn float_formatting_keeps_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn error_on_garbage() {
        assert!(from_str::<Value>("{invalid}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
