//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness:
//! a warm-up pass, then `sample_size` timed samples, reporting the
//! fastest sample per iteration (minimum is the conventional
//! low-noise point estimate for micro-benchmarks).

// Vendored stand-in: keep clippy focused on first-party code.
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.to_string(), sample_size, f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function_name {
            Some(name) => write!(f, "{}/{}", name, self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// Timing context passed to the benchmark closure.
pub struct Bencher {
    /// Best (minimum) per-iteration time over the samples so far.
    best: Option<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let per_iter = start.elapsed() / self.iters_per_sample as u32;
        self.best = Some(match self.best {
            Some(prev) => prev.min(per_iter),
            None => per_iter,
        });
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up sample sizes the sample iteration count so one sample
    // stays around a few milliseconds.
    let mut bencher = Bencher {
        best: None,
        iters_per_sample: 1,
    };
    f(&mut bencher);
    let warm = bencher.best.unwrap_or(Duration::from_micros(1));
    let target = Duration::from_millis(5);
    let iters = (target.as_nanos() / warm.as_nanos().max(1)).clamp(1, 10_000) as u64;

    let mut best = warm;
    for _ in 0..sample_size {
        let mut sample = Bencher {
            best: None,
            iters_per_sample: iters,
        };
        f(&mut sample);
        if let Some(t) = sample.best {
            best = best.min(t);
        }
    }
    eprintln!("  {label}: {best:?}/iter (min of {sample_size} samples x {iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with --test; just exit.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, n| b.iter(|| n * n));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        tiny_bench(&mut c);
    }
}
