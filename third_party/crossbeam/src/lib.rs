//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, bounded,
//! Sender, Receiver}` with blocking `send`/`recv`, so this shim maps that
//! surface onto `std::sync::mpsc`. Semantics relevant to the callers are
//! preserved: `bounded(n)` applies backpressure after `n` queued messages
//! (via `sync_channel`), senders are cloneable, and send/recv fail once the
//! other side is dropped.

// Vendored stand-in: keep clippy focused on first-party code.
#![allow(clippy::all)]

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel. Cloneable like crossbeam's.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued, or fails if the receiver
        /// has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                SenderInner::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or fails once the channel is
        /// empty and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderInner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel that blocks senders after `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderInner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Error returned when sending on a channel whose receiver is gone;
    /// carries the unsent message back like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41usize).unwrap();
            tx.clone().send(42).unwrap();
            assert_eq!(rx.recv().unwrap(), 41);
            assert_eq!(rx.recv().unwrap(), 42);
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded(1);
            tx.send(1i32).unwrap();
            let handle = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            handle.join().unwrap();
        }

        #[test]
        fn disconnect_is_an_error() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(7).is_err());
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
