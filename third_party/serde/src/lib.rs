//! Offline stand-in for `serde`.
//!
//! The real serde is a streaming visitor framework; this vendored
//! replacement keeps the same *surface* used by the workspace — the
//! `Serialize`/`Deserialize` traits, derive macros, and the leaf
//! implementations — but routes everything through an owned JSON-shaped
//! value tree ([`Value`]). `serde_json` (the sibling stub) re-exports the
//! tree and adds text encoding/decoding, so `#[derive(Serialize)]` +
//! `serde_json::to_string` behave exactly like the real pair for the
//! data shapes this repository uses (named-field structs; unit, tuple and
//! struct enum variants, externally tagged).

// Vendored stand-in: keep clippy focused on first-party code.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

// ---------------------------------------------------------------------------
// The value tree
// ---------------------------------------------------------------------------

/// A JSON-shaped tree: the serialization target of the vendored serde.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers (integer or float).
    Number(Number),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, insertion-ordered.
    Object(Map<String, Value>),
}

/// A JSON number: signed, unsigned, or floating point.
#[derive(Clone, Copy, Debug)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    /// Wraps a signed integer.
    pub fn from_i64(v: i64) -> Self {
        Number { n: N::Int(v) }
    }

    /// Wraps an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number { n: N::UInt(v) }
    }

    /// Wraps a float.
    pub fn from_f64(v: f64) -> Self {
        Number { n: N::Float(v) }
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::Int(v) => Some(v),
            N::UInt(v) => i64::try_from(v).ok(),
            N::Float(_) => None,
        }
    }

    /// The value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::Int(v) => u64::try_from(v).ok(),
            N::UInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// The value as `f64` (always available).
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::Int(v) => Some(v as f64),
            N::UInt(v) => Some(v as f64),
            N::Float(v) => Some(v),
        }
    }

    /// True when the number is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// True when the number is an unsigned integer.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// True when the number is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side integer, the other possibly float/u64-overflow:
                // fall through to the float comparison.
            }
        }
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            _ => {}
        }
        self.as_f64() == other.as_f64()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::Int(v) => write!(f, "{v}"),
            N::UInt(v) => write!(f, "{v}"),
            N::Float(v) => write_f64(f, v),
        }
    }
}

fn write_f64(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        write!(f, "null")
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        write!(f, "{v:.1}")
    } else {
        write!(f, "{v}")
    }
}

/// An insertion-ordered string-keyed map (the `Object` payload).
///
/// Declared generic so both `Map` and `Map<String, Value>` spellings work,
/// like the real `serde_json::Map`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts, replacing (and returning) any existing value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl std::ops::Index<&str> for Map<String, Value> {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The array payload, mutable.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The object payload, mutable.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Keyed/indexed lookup: `v.get("key")` on objects, `v.get(3)` on
    /// arrays.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Writes the value as JSON into `out`; `indent` of `Some(width)`
    /// pretty-prints.
    pub fn write_json(&self, out: &mut String, indent: Option<usize>) {
        self.write_level(out, indent, 0);
    }

    fn write_level(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write_level(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_level(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s, None);
        f.write_str(&s)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Index types accepted by [`Value::get`] and `Value`'s `Index` impls.
pub trait ValueIndex {
    /// Resolves the index against a value.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (*self).index_into(v)
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable message with field context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from any message.
    pub fn custom(message: impl fmt::Display) -> Self {
        DeError {
            message: message.to_string(),
        }
    }

    /// Prefixes the error with the field it occurred in.
    #[must_use]
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Leaf implementations
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // `null` maps back to NaN: serialization writes non-finite floats
        // as JSON null (there is no NaN literal), so accept the reverse.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?;
        a.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(DeError::custom("wrong tuple arity"));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, like serde_json with a sorted map.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .cloned()
            .ok_or_else(|| DeError::custom("expected object"))
    }
}

impl Serialize for Number {
    fn to_value(&self) -> Value {
        Value::Number(self.clone())
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(())
        } else {
            Err(DeError::custom("expected null"))
        }
    }
}

// Convenience conversions used by the `json!` macro and manual builders.

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::from_i64(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::from_u64(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::from_f64(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}
