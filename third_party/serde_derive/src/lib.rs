//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available in this vendored, network-free build. This macro crate
//! parses the item's token stream by hand (enough for plain named-field
//! structs and enums with unit/tuple/struct variants — the only shapes
//! this workspace derives on) and emits implementations of the vendored
//! `serde::Serialize`/`serde::Deserialize` traits as source text.
//!
//! The only `#[serde(...)]` attribute understood is `#[serde(default)]`
//! on a named field: a field so marked deserializes to
//! `Default::default()` when the key is absent, which is how the wire
//! format stays decodable against older peers. Other unsupported shapes
//! (generics, tuple structs, other `#[serde(...)]` attributes) produce a
//! compile error naming the limitation rather than silently misbehaving.

// Vendored stand-in: keep clippy focused on first-party code.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item the derive is attached to.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this arity.
    Tuple(usize),
    /// Struct variant with these fields.
    Struct(Vec<Field>),
}

/// A named field plus the one attribute this derive understands.
struct Field {
    name: String,
    /// `#[serde(default)]`: an absent key deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    let name = expect_ident(&tokens, &mut pos)?;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generics on `{name}`"
        ));
    }

    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde_derive (vendored) expects a braced body on `{name}` \
                 (tuple structs are not supported)"
            ))
        }
    };

    match keyword.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

/// Skips `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    skip_attrs_and_vis_noting_default(tokens, pos);
}

/// Like [`skip_attrs_and_vis`], but reports whether one of the skipped
/// attributes was `#[serde(default)]`.
fn skip_attrs_and_vis_noting_default(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut saw_default = false;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    saw_default |= is_serde_default(g.stream());
                }
                *pos += 2; // `#` and the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return saw_default,
        }
    }
}

/// True when the bracketed attribute body is exactly `serde(default)`.
fn is_serde_default(body: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(g)]
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            matches!(inner.as_slice(),
                [TokenTree::Ident(arg)] if arg.to_string() == "default")
        }
        _ => false,
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Parses `name: Type, ...` named fields, returning the names. Types are
/// skipped with `<`/`>` depth tracking so commas inside generics do not
/// split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let default = skip_attrs_and_vis_noting_default(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde_derive (vendored) does not support explicit discriminants \
                 (variant `{name}`)"
            ));
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Counts top-level comma-separated types in a tuple variant's parens.
fn tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for tt in body {
        saw_any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => arity += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        arity + 1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in fields {
                let f = &f.name;
                inserts.push_str(&format!(
                    "__m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(__m)\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert({vn:?}.to_string(), ::serde::Serialize::to_value(__f0));\n\
                             ::serde::Value::Object(__m)\n\
                         }}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert({vn:?}.to_string(), \
                                     ::serde::Value::Array(vec![{}]));\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let binds = binds.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            let f = &f.name;
                            inserts.push_str(&format!(
                                "__inner.insert({f:?}.to_string(), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut __inner = ::serde::Map::new();\n\
                                 {inserts}\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert({vn:?}.to_string(), \
                                     ::serde::Value::Object(__inner));\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// One `name: value,` initializer inside a generated `from_value`. A
/// `#[serde(default)]` field falls back to `Default::default()` when the
/// key is absent (an explicit `null` still goes through `from_value`, so
/// `Option` fields behave the same either way).
fn field_init(ctx: &str, f: &Field, map: &str) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match {map}.get({name:?}) {{\n\
                 ::std::option::Option::Some(__fv) => \
                     ::serde::Deserialize::from_value(__fv)\
                     .map_err(|e| e.in_field(concat!({ctx:?}, \".\", {name:?})))?,\n\
                 ::std::option::Option::None => ::std::default::Default::default(),\n\
             }},\n"
        )
    } else {
        format!(
            "{name}: ::serde::Deserialize::from_value(\
                 {map}.get({name:?}).unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| e.in_field(concat!({ctx:?}, \".\", {name:?})))?,\n"
        )
    }
}

fn name_path(name: &str) -> String {
    name.to_string()
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&field_init(&name_path(name), f, "__m"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __m = __v.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(concat!(\
                                 \"expected object for struct \", stringify!({name}))))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        keyed_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__payload)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let mut elems = String::new();
                        for i in 0..*n {
                            elems.push_str(&format!(
                                "::serde::Deserialize::from_value(&__a[{i}])?,"
                            ));
                        }
                        keyed_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __a = __payload.as_array().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected array payload\"))?;\n\
                                 if __a.len() != {n} {{\n\
                                     return ::std::result::Result::Err(\
                                         ::serde::DeError::custom(\"wrong tuple arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({elems}))\n\
                             }}\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&field_init(&format!("{name}::{vn}"), f, "__inner"));
                        }
                        keyed_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __inner = __payload.as_object().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected object payload\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::DeError::custom(format!(\
                                         \"unknown unit variant `{{__other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __payload) = __m.iter().next().expect(\"len 1\");\n\
                                 match __k.as_str() {{\n\
                                     {keyed_arms}\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::DeError::custom(format!(\
                                             \"unknown variant `{{__other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::custom(\
                                 concat!(\"expected string or single-key object for enum \", \
                                         stringify!({name})))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
