//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the strategy combinator API this workspace
//! uses: `Just`, `any::<T>()`, numeric range strategies, regex-subset
//! string strategies (single character class with `{m,n}` repetition),
//! tuples of strategies, weighted unions (`prop_oneof!`), `prop_map`,
//! `prop_recursive`, `boxed()`, `collection::vec`, and the `proptest!`
//! test-harness macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from the real crate, deliberately accepted:
//! - no shrinking: a failing case panics with the generated inputs
//!   visible in the assertion message;
//! - deterministic generation: the RNG is seeded from the test's module
//!   path and name, so runs are reproducible;
//! - `prop_assume!` rejects the current case without drawing a
//!   replacement, so heavy filtering reduces the effective case count.

// Vendored stand-in: keep clippy focused on first-party code.
#![allow(clippy::all)]
#![allow(dead_code)]

pub mod test_runner {
    /// Deterministic splitmix64 generator. Good enough statistical
    /// quality for test-input generation, trivially reproducible.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seeds from a test name so every test gets an independent,
        /// stable stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is negligible for the small bounds tests use.
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Mirror of proptest's run configuration; only `cases` matters here.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for producing values of `Self::Value` from an RNG.
    ///
    /// Unlike the real crate there is no value tree / shrinking; a
    /// strategy is just a generation function plus combinators.
    pub trait Strategy: 'static {
        type Value: 'static;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases the strategy behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| inner.generate(rng))
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized,
            O: 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
        }

        /// Builds a recursive strategy: `self` generates leaves and
        /// `recurse` wraps an inner strategy into a deeper one. The
        /// result expands to at most `depth` nested levels; the size
        /// hints only influence how often deeper branches are taken.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            R: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                let shallow = leaf.clone();
                current = BoxedStrategy::from_fn(move |rng| {
                    // Bias toward recursion; depth is still hard-capped
                    // because each level bottoms out in `leaf`.
                    if rng.below(4) == 0 {
                        shallow.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                });
            }
            current
        }
    }

    /// Cloneable, type-erased strategy handle.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T: 'static> BoxedStrategy<T> {
        pub fn from_fn<F: Fn(&mut TestRng) -> T + 'static>(f: F) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }

        fn boxed(self) -> BoxedStrategy<T> {
            self
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between same-valued strategies; built by
    /// `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: 'static> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }

    // ---- numeric ranges ---------------------------------------------------

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // ---- regex-subset string strategies -----------------------------------

    /// `&'static str` literals act as regex strategies. Supported shape:
    /// one character class with an optional `{m,n}` repetition, e.g.
    /// `"[a-z]{1,8}"` or `"[ -~\n]{0,200}"`. Classes may contain ranges,
    /// plain characters, and `\n`/`\t`/`\\` escapes.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (ranges, min, max) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = hi as u32 - lo as u32 + 1;
                let c = char::from_u32(lo as u32 + rng.below(span as u64) as u32)
                    .expect("class range stays within valid chars");
                out.push(c);
            }
            out
        }
    }

    /// Parses `[class]{m,n}` into (char ranges, min len, max len).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<(char, char)>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class, tail) = (&rest[..close], &rest[close + 1..]);

        let mut chars: Vec<char> = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            if c == '\\' {
                match it.next()? {
                    'n' => chars.push('\n'),
                    't' => chars.push('\t'),
                    'r' => chars.push('\r'),
                    other => chars.push(other),
                }
            } else {
                chars.push(c);
            }
        }

        let mut ranges = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                ranges.push((chars[i], chars[i + 2]));
                i += 3;
            } else {
                ranges.push((chars[i], chars[i]));
                i += 1;
            }
        }
        if ranges.is_empty() {
            return None;
        }

        if tail.is_empty() {
            return Some((ranges, 1, 1));
        }
        let reps = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match reps.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        if hi < lo {
            return None;
        }
        Some((ranges, lo, hi))
    }

    // ---- tuples of strategies ---------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident / $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }
}

pub mod arbitrary {
    use crate::strategy::BoxedStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy, for `any::<T>()`.
    pub trait Arbitrary: Sized + 'static {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced; avoids NaN surprises in comparisons.
            (rng.unit_f64() - 0.5) * 2e18
        }
    }

    pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
        BoxedStrategy::from_fn(A::arbitrary_value)
    }
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::ops::Range;

    /// Strategy for vectors whose length is drawn uniformly from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>> {
        assert!(size.start < size.end, "empty vec size range");
        BoxedStrategy::from_fn(move |rng| {
            let span = (size.end - size.start) as u64;
            let len = size.start + rng.below(span) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---- macros ----------------------------------------------------------------

/// Unweighted arm order must come first: `3 => strat` fails the
/// unweighted `$item:expr` match at the `=>` token and falls through to
/// the weighted rule, mirroring the real crate's macro.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $item),+]
    };
    ($($weight:expr => $item:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight, $crate::strategy::Strategy::boxed($item))),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Each test runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                // The closure returns false when `prop_assume!` rejects
                // the case; assertions panic as in any #[test].
                let __accepted = (move || -> bool { $body true })();
                let _ = __accepted;
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Rejects the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return false;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..200 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let u = (1u64..256).generate(&mut rng);
            assert!((1..256).contains(&u));
        }
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = crate::test_runner::TestRng::from_seed(11);
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ -~\n]{0,20}".generate(&mut rng);
            assert!(t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        let hits = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true picks, got {hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_draws_and_assumes(v in 0i32..100, tag in "[ab]{1,1}") {
            prop_assume!(v != 13);
            prop_assert!(v < 100);
            prop_assert_ne!(v, 13);
            prop_assert_eq!(tag.len(), 1);
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(n in nested()) {
            prop_assert!(depth(&n) <= 4);
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(i32),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn nested() -> impl Strategy<Value = Tree> {
        let leaf = (-10i32..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        })
    }
}
