//! Per-reader view over a shared [`Store`]: a small LRU of decoded
//! keyframe segments plus the observability surface. Many readers can
//! scrub one `Arc<Store>` concurrently; each keeps its own cache and
//! reports into its own [`obs::Registry`]:
//!
//! * `trace.seek_ns` — latency histogram of every `state_at` call;
//! * `trace.keyframe_hits` / `trace.keyframe_decodes` — cache hits vs
//!   segments decoded from compressed records;
//! * `trace.resident_bytes` — store + cache footprint of this reader.

use crate::Store;
use state::ProgramState;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Decoded segments a reader keeps around. Sequential scans (forward or
/// reverse) touch at most two segments at a time; a handful more absorbs
/// ping-ponging around a breakpoint.
const CACHE_SEGMENTS: usize = 8;

#[derive(Default)]
struct SegCache {
    /// (segment start pause, decoded states), most recently used last.
    segs: Vec<(u64, Arc<Vec<Arc<ProgramState>>>)>,
}

/// A cached, instrumented reader over a shared trace [`Store`].
pub struct TraceReader {
    store: Arc<Store>,
    obs: obs::Registry,
    cache: Mutex<SegCache>,
}

impl TraceReader {
    /// Wraps a shared store; metrics go to `registry`.
    pub fn new(store: Arc<Store>, registry: obs::Registry) -> Self {
        let r = TraceReader {
            store,
            obs: registry,
            cache: Mutex::new(SegCache::default()),
        };
        r.update_resident_gauge();
        r
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// This reader's registry.
    pub fn registry(&self) -> &obs::Registry {
        &self.obs
    }

    /// Bytes resident for this reader: the shared store plus this
    /// reader's decoded-segment cache (estimated).
    pub fn resident_bytes(&self) -> u64 {
        let cache = self.cache.lock().unwrap();
        let cached: u64 = cache
            .segs
            .iter()
            .map(|(_, seg)| seg.len() as u64 * 1024)
            .sum();
        self.store.resident_bytes() + cached
    }

    fn update_resident_gauge(&self) {
        self.obs
            .set_gauge("trace.resident_bytes", self.resident_bytes());
    }

    /// State at pause `n`, decoded through the keyframe index and the
    /// segment cache. O(log n) index lookup plus at most
    /// `keyframe_every` delta replays on a cache miss, O(1) on a hit.
    pub fn state_at(&self, n: u64) -> Result<Arc<ProgramState>, String> {
        let begin = Instant::now();
        if n >= self.store.len() {
            return Err(format!("pause {n} out of range (len {})", self.store.len()));
        }
        let key = self.store.segment_start(n);
        let seg = {
            let mut cache = self.cache.lock().unwrap();
            if let Some(i) = cache.segs.iter().position(|(k, _)| *k == key) {
                let entry = cache.segs.remove(i);
                let seg = entry.1.clone();
                cache.segs.push(entry);
                self.obs.inc("trace.keyframe_hits");
                Some(seg)
            } else {
                None
            }
        };
        let seg = match seg {
            Some(seg) => seg,
            None => {
                let states = self.store.decode_segment(n)?;
                let seg: Arc<Vec<Arc<ProgramState>>> =
                    Arc::new(states.into_iter().map(Arc::new).collect());
                let mut cache = self.cache.lock().unwrap();
                cache.segs.push((key, seg.clone()));
                if cache.segs.len() > CACHE_SEGMENTS {
                    cache.segs.remove(0);
                }
                drop(cache);
                self.obs.inc("trace.keyframe_decodes");
                self.update_resident_gauge();
                seg
            }
        };
        let st = seg
            .get((n - key) as usize)
            .cloned()
            .ok_or_else(|| format!("pause {n} missing from segment {key}"))?;
        self.obs.record_duration("trace.seek_ns", begin.elapsed());
        Ok(st)
    }
}

impl std::fmt::Debug for TraceReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("pauses", &self.store.len())
            .finish()
    }
}
