//! Byte-level codecs for the trace store: LEB128 varints and a small
//! LZ77 compressor that can borrow a *dictionary* — an out-of-band byte
//! prefix the decompressor is assumed to already hold.
//!
//! The dictionary is what makes delta encoding byte-exact and cheap:
//! consecutive `ProgramState` snapshots serialize to nearly identical
//! JSON, so compressing snapshot *n* against snapshot *n-1* as the
//! dictionary reduces it to a handful of copy tokens. Keyframes are the
//! same codec with an empty dictionary. No external compression crate
//! exists in this build environment, so the matcher is hand-rolled: a
//! hash-head / previous-chain table over 4-byte prefixes, greedy longest
//! match, bounded chain walks.

/// Minimum match length worth a copy token (shorter runs stay literal).
const MIN_MATCH: usize = 4;
/// Bound on hash-chain probes per position; caps worst-case compress time.
const MAX_CHAIN: usize = 48;
/// Hash table size (power of two).
const HASH_BITS: u32 = 14;

/// Appends `v` as an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint at `*pos`, advancing it.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| "varint: unexpected end of input".to_string())?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint: overflow".into());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn hash4(buf: &[u8], i: usize) -> usize {
    let b = u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]);
    (b.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data` against `dict` (which may be empty). The output can
/// only be decompressed by a caller holding the identical dictionary.
///
/// Token stream layout, after a varint of the uncompressed length:
/// repeated `(lit_len, literal bytes, match_code[, dist])` groups where
/// `match_code == 0` means "no match" (only valid when the group ends the
/// stream) and otherwise encodes a copy of `match_code + MIN_MATCH - 1`
/// bytes from `dist` bytes back in the virtual buffer `dict ++ output`.
pub fn compress(dict: &[u8], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + data.len() / 4);
    put_varint(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }

    // Virtual buffer the matcher works over: dictionary then payload.
    let mut v = Vec::with_capacity(dict.len() + data.len());
    v.extend_from_slice(dict);
    v.extend_from_slice(data);

    let mut head = vec![u32::MAX; 1usize << HASH_BITS];
    let mut prev = vec![u32::MAX; v.len()];
    let insert = |head: &mut [u32], prev: &mut [u32], i: usize| {
        if i + MIN_MATCH <= v.len() {
            let h = hash4(&v, i);
            prev[i] = head[h];
            head[h] = i as u32;
        }
    };
    // Seed the table with every dictionary position.
    for i in 0..dict.len() {
        insert(&mut head, &mut prev, i);
    }

    let mut pos = dict.len();
    let mut lit_start = pos;
    while pos < v.len() {
        let mut best_len = 0usize;
        let mut best_at = 0usize;
        if pos + MIN_MATCH <= v.len() {
            let h = hash4(&v, pos);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != u32::MAX && chain < MAX_CHAIN {
                let c = cand as usize;
                let mut l = 0usize;
                let max = v.len() - pos;
                while l < max && v[c + l] == v[pos + l] {
                    l += 1;
                }
                if l >= MIN_MATCH && l > best_len {
                    best_len = l;
                    best_at = c;
                    if l == max {
                        break;
                    }
                }
                cand = prev[c];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let lits = &v[lit_start..pos];
            put_varint(&mut out, lits.len() as u64);
            out.extend_from_slice(lits);
            put_varint(&mut out, (best_len - MIN_MATCH + 1) as u64);
            put_varint(&mut out, (pos - best_at) as u64);
            for i in pos..pos + best_len {
                insert(&mut head, &mut prev, i);
            }
            pos += best_len;
            lit_start = pos;
        } else {
            insert(&mut head, &mut prev, pos);
            pos += 1;
        }
    }
    if lit_start < v.len() {
        let lits = &v[lit_start..];
        put_varint(&mut out, lits.len() as u64);
        out.extend_from_slice(lits);
        put_varint(&mut out, 0); // terminal "no match" group
    }
    out
}

/// Inverse of [`compress`]; `dict` must be byte-identical to the one used
/// at compression time.
pub fn decompress(dict: &[u8], comp: &[u8]) -> Result<Vec<u8>, String> {
    let mut pos = 0usize;
    let raw_len = get_varint(comp, &mut pos)? as usize;
    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    while out.len() < raw_len {
        let lit_len = get_varint(comp, &mut pos)? as usize;
        let end = pos
            .checked_add(lit_len)
            .filter(|&e| e <= comp.len())
            .ok_or_else(|| "lz: literal run past end of input".to_string())?;
        out.extend_from_slice(&comp[pos..end]);
        pos = end;
        let code = get_varint(comp, &mut pos)? as usize;
        if code == 0 {
            break;
        }
        let mlen = code + MIN_MATCH - 1;
        let dist = get_varint(comp, &mut pos)? as usize;
        let vpos = dict.len() + out.len();
        if dist == 0 || dist > vpos {
            return Err(format!("lz: copy distance {dist} out of range"));
        }
        // Overlapping copies (dist < mlen) must read bytes produced by
        // this same match, so copy one byte at a time by index.
        for src in (vpos - dist)..(vpos - dist + mlen) {
            let b = if src < dict.len() {
                dict[src]
            } else {
                out[src - dict.len()]
            };
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(format!(
            "lz: decoded {} bytes, header promised {raw_len}",
            out.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dict: &[u8], data: &[u8]) -> usize {
        let c = compress(dict, data);
        let d = decompress(dict, &c).expect("decompress");
        assert_eq!(d, data, "round trip mismatch");
        c.len()
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"", b"");
        roundtrip(b"dictionary", b"");
        roundtrip(b"", b"a");
        roundtrip(b"", b"abc");
        roundtrip(b"abc", b"abc");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = b"abcabcabcabcabcabcabcabcabcabc".repeat(20);
        let n = roundtrip(b"", &data);
        assert!(n < data.len() / 4, "compressed {n} of {}", data.len());
    }

    #[test]
    fn near_identical_delta_is_tiny() {
        let a = format!(
            "{{\"x\":{},\"stack\":[1,2,3],\"pad\":\"{}\"}}",
            41,
            "q".repeat(400)
        );
        let b = format!(
            "{{\"x\":{},\"stack\":[1,2,3],\"pad\":\"{}\"}}",
            42,
            "q".repeat(400)
        );
        let n = roundtrip(a.as_bytes(), b.as_bytes());
        assert!(n < 64, "delta against near-identical dict took {n} bytes");
    }

    #[test]
    fn overlapping_copy() {
        // dist < len exercises the byte-at-a-time overlap path (RLE-like).
        let data = vec![7u8; 500];
        roundtrip(b"", &data);
    }

    #[test]
    fn random_like_data_survives() {
        // Deterministic pseudo-random bytes: xorshift.
        let mut s = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 17;
                s ^= s << 5;
                (s & 0xff) as u8
            })
            .collect();
        roundtrip(b"", &data);
        roundtrip(&data[..1000], &data);
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        let c = compress(b"", b"hello world hello world hello world");
        for cut in 1..c.len() {
            let _ = decompress(b"", &c[..cut]);
        }
        let mut bad = c.clone();
        if bad.len() > 4 {
            bad[3] ^= 0xff;
            let _ = decompress(b"", &bad);
        }
        // Distances pointing before the start must be rejected.
        let mut evil = Vec::new();
        put_varint(&mut evil, 10); // claims 10 bytes
        put_varint(&mut evil, 1); // 1 literal
        evil.push(b'x');
        put_varint(&mut evil, 3); // match of 6
        put_varint(&mut evil, 99); // distance 99: out of range
        assert!(decompress(b"", &evil).is_err());
    }
}
