//! The omniscient trace store: one compressed, indexed recording of an
//! execution, appendable while the inferior runs and queryable forever
//! after.
//!
//! Layout is columnar. Per pause the store keeps: a compressed snapshot
//! record (a *keyframe* every `keyframe_every` pauses, a *delta* against
//! the previous snapshot otherwise), the executed source line, the stack
//! depth, and the offset of that pause's output delta in one shared
//! output blob. A sorted keyframe-implied index (`snap_off`) gives
//! `state_at(n)` its O(log n) shape: jump to the enclosing keyframe in
//! O(1) arithmetic, then replay at most `keyframe_every - 1` bounded
//! deltas. A variable-write index built at append time answers history
//! queries ("when did `x` last change?") by binary search, never by
//! replay.

use crate::codec;
use serde::{Deserialize, Serialize};
use state::{render_value, ProgramState, Scope};
use std::collections::HashMap;

/// Magic at the head of the on-disk format.
pub const MAGIC: &[u8; 8] = b"EZTRACE\x01";
/// On-disk format version; bump on incompatible layout changes.
pub const FORMAT_VERSION: u32 = 1;
/// Default keyframe cadence: one full snapshot per this many pauses.
pub const DEFAULT_KEYFRAME_EVERY: u32 = 32;

/// One hit from a history query: the pause at which a variable took a
/// (new) value, and that value rendered the way watchpoints render.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryHit {
    /// Pause index (0-based) at which the write landed.
    pub pause: u64,
    /// Rendered value after the write.
    pub value: String,
}

#[derive(Debug, Clone, Default)]
struct WriteLog {
    /// Per interned variable name: (pause, rendered value), pause-sorted
    /// by construction (appends happen in pause order).
    by_name: Vec<Vec<(u64, String)>>,
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl WriteLog {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        self.by_name.push(Vec::new());
        id
    }

    fn push(&mut self, name: &str, pause: u64, value: String) {
        let id = self.intern(name) as usize;
        self.by_name[id].push((pause, value));
    }

    /// Ids whose name matches `variable`: exact match for qualified
    /// queries (`main::x`), suffix match for bare names (`x` hits every
    /// `frame::x` plus the global `x`).
    fn matching_ids(&self, variable: &str) -> Vec<usize> {
        let qualified = variable.contains("::");
        let suffix = format!("::{variable}");
        self.names
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                if qualified {
                    n.as_str() == variable
                } else {
                    n.as_str() == variable || n.ends_with(&suffix)
                }
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn resident_bytes(&self) -> u64 {
        let mut n = 0u64;
        for v in &self.by_name {
            n += (v.capacity() * std::mem::size_of::<(u64, String)>()) as u64;
            n += v.iter().map(|(_, s)| s.capacity() as u64).sum::<u64>();
        }
        n += self
            .names
            .iter()
            .map(|s| s.capacity() as u64 + 48)
            .sum::<u64>()
            * 2; // names vec + ids map, roughly
        n
    }
}

/// The appendable, queryable trace store. Build one with [`Store::new`]
/// and [`Store::push`] while an execution runs (or from a finished
/// recording), then share it behind an `Arc` with any number of
/// readers.
#[derive(Debug, Clone)]
pub struct Store {
    file: String,
    source: String,
    keyframe_every: u32,
    exit_code: Option<i64>,
    /// Concatenated compressed snapshot records.
    snap: Vec<u8>,
    /// Start offset of pause *i*'s record in `snap`; record *i* ends at
    /// `snap_off[i + 1]` (or `snap.len()` for the last).
    snap_off: Vec<u64>,
    /// Executed source line per pause.
    lines: Vec<u32>,
    /// Stack depth per pause.
    depths: Vec<u32>,
    /// All output, concatenated in pause order.
    output: String,
    /// Start offset of pause *i*'s output delta in `output`.
    out_off: Vec<u32>,
    writes: WriteLog,
    /// Raw JSON bytes of the most recently pushed state — the dictionary
    /// for the next delta. Dropped by [`Store::freeze`].
    prev_bytes: Vec<u8>,
    /// The most recently pushed state, kept for write-diffing.
    prev_state: Option<ProgramState>,
}

impl Store {
    /// Creates an empty store for a program. `keyframe_every == 0` is
    /// clamped to 1 (every snapshot a keyframe).
    pub fn new(file: impl Into<String>, source: impl Into<String>, keyframe_every: u32) -> Self {
        Store {
            file: file.into(),
            source: source.into(),
            keyframe_every: keyframe_every.max(1),
            exit_code: None,
            snap: Vec::new(),
            snap_off: Vec::new(),
            lines: Vec::new(),
            depths: Vec::new(),
            output: String::new(),
            out_off: Vec::new(),
            writes: WriteLog::default(),
            prev_bytes: Vec::new(),
            prev_state: None,
        }
    }

    /// Number of recorded pauses.
    pub fn len(&self) -> u64 {
        self.snap_off.len() as u64
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.snap_off.is_empty()
    }

    /// The traced program's file name.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The traced program's source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Keyframe cadence.
    pub fn keyframe_every(&self) -> u32 {
        self.keyframe_every
    }

    /// Exit code, once the recorded run finished.
    pub fn exit_code(&self) -> Option<i64> {
        self.exit_code
    }

    /// Records the exit code of the traced run.
    pub fn set_exit_code(&mut self, code: Option<i64>) {
        self.exit_code = code;
    }

    /// Number of keyframes currently in the store.
    pub fn keyframes(&self) -> u64 {
        let n = self.len();
        let k = u64::from(self.keyframe_every);
        n.div_ceil(k)
    }

    /// Appends one pause: the paused state plus the output it produced
    /// since the previous pause. States must be pushed in execution
    /// order.
    pub fn push(&mut self, st: &ProgramState, output_delta: &str) {
        let bytes = serde_json::to_vec(st).expect("ProgramState serializes");
        let n = self.snap_off.len() as u64;
        let is_key = n.is_multiple_of(u64::from(self.keyframe_every));
        let rec = if is_key {
            codec::compress(&[], &bytes)
        } else {
            codec::compress(&self.prev_bytes, &bytes)
        };
        self.snap_off.push(self.snap.len() as u64);
        self.snap.extend_from_slice(&rec);
        self.lines.push(st.frame.location().line());
        self.depths.push(st.stack_depth() as u32);
        self.out_off.push(self.output.len() as u32);
        self.output.push_str(output_delta);
        self.index_writes(st, n);
        self.prev_bytes = bytes;
        self.prev_state = Some(st.clone());
    }

    /// Appends output to the *last* recorded pause (trailing output that
    /// arrives between the final step and program exit).
    pub fn append_output_to_last(&mut self, tail: &str) {
        if !self.out_off.is_empty() {
            self.output.push_str(tail);
        }
    }

    /// Diffs `st` against the previously pushed state and logs every
    /// variable whose rendered value is new. Locals are qualified by
    /// their frame name (`main::x`); globals use their bare name. On the
    /// first pause every visible variable counts as written.
    fn index_writes(&mut self, st: &ProgramState, pause: u64) {
        let mut prev_vals: HashMap<String, String> = HashMap::new();
        if let Some(prev) = self.prev_state.take() {
            for_each_visible(&prev, |name, val| {
                prev_vals.insert(name, val);
            });
        }
        let mut events: Vec<(String, String)> = Vec::new();
        for_each_visible(st, |name, val| {
            if prev_vals.get(&name) != Some(&val) {
                events.push((name, val));
            }
        });
        for (name, val) in events {
            self.writes.push(&name, pause, val);
        }
    }

    /// All writes to `variable` with pause index in `[from, to]`,
    /// pause-ordered. Bare names match every frame-qualified local of
    /// that name plus the global; qualified names (`main::x`) match
    /// exactly.
    pub fn writes_in(&self, variable: &str, from: u64, to: u64) -> Vec<HistoryHit> {
        let mut hits: Vec<HistoryHit> = Vec::new();
        for id in self.writes.matching_ids(variable) {
            let log = &self.writes.by_name[id];
            let start = log.partition_point(|(p, _)| *p < from);
            for (p, v) in &log[start..] {
                if *p > to {
                    break;
                }
                hits.push(HistoryHit {
                    pause: *p,
                    value: v.clone(),
                });
            }
        }
        hits.sort_by_key(|h| h.pause);
        hits
    }

    /// The most recent write to `variable` at or before pause `before`
    /// (defaults to the end of the recording).
    pub fn last_change(&self, variable: &str, before: Option<u64>) -> Option<HistoryHit> {
        let before = before.unwrap_or_else(|| self.len().saturating_sub(1));
        let mut best: Option<HistoryHit> = None;
        for id in self.writes.matching_ids(variable) {
            let log = &self.writes.by_name[id];
            let end = log.partition_point(|(p, _)| *p <= before);
            if end > 0 {
                let (p, v) = &log[end - 1];
                if best.as_ref().map(|b| *p >= b.pause).unwrap_or(true) {
                    best = Some(HistoryHit {
                        pause: *p,
                        value: v.clone(),
                    });
                }
            }
        }
        best
    }

    /// Executed source lines, deduplicated and sorted.
    pub fn breakable_lines(&self) -> Vec<u32> {
        let mut ls = self.lines.clone();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Source line executed at pause `n`.
    pub fn line_at(&self, n: u64) -> Option<u32> {
        self.lines.get(n as usize).copied()
    }

    /// Stack depth at pause `n`.
    pub fn depth_at(&self, n: u64) -> Option<u32> {
        self.depths.get(n as usize).copied()
    }

    /// Output produced by pauses `[a, b)` — a borrowed slice of the
    /// shared blob, no concatenation.
    pub fn output_range(&self, a: u64, b: u64) -> &str {
        let n = self.out_off.len();
        let start = match self.out_off.get(a as usize) {
            Some(&o) => o as usize,
            None => self.output.len(),
        };
        let end = if (b as usize) < n {
            self.out_off[b as usize] as usize
        } else {
            self.output.len()
        };
        &self.output[start.min(end)..end]
    }

    fn record_bytes(&self, i: u64) -> &[u8] {
        let i = i as usize;
        let start = self.snap_off[i] as usize;
        let end = self
            .snap_off
            .get(i + 1)
            .map(|&o| o as usize)
            .unwrap_or(self.snap.len());
        &self.snap[start..end]
    }

    /// First pause of the keyframe segment containing pause `n`.
    pub fn segment_start(&self, n: u64) -> u64 {
        n - n % u64::from(self.keyframe_every)
    }

    /// Raw JSON bytes of the state at pause `n`: decode the enclosing
    /// keyframe, then replay at most `keyframe_every - 1` deltas.
    pub fn state_bytes_at(&self, n: u64) -> Result<Vec<u8>, String> {
        if n >= self.len() {
            return Err(format!("pause {n} out of range (len {})", self.len()));
        }
        let key = self.segment_start(n);
        let mut cur = codec::decompress(&[], self.record_bytes(key))?;
        for i in key + 1..=n {
            cur = codec::decompress(&cur, self.record_bytes(i))?;
        }
        Ok(cur)
    }

    /// Decoded state at pause `n`.
    pub fn state_at(&self, n: u64) -> Result<ProgramState, String> {
        let bytes = self.state_bytes_at(n)?;
        serde_json::from_slice(&bytes).map_err(|e| format!("state {n}: {e}"))
    }

    /// Decodes the whole keyframe segment containing `n` in one pass —
    /// the unit of work readers cache.
    pub fn decode_segment(&self, n: u64) -> Result<Vec<ProgramState>, String> {
        let key = self.segment_start(n);
        let end = (key + u64::from(self.keyframe_every)).min(self.len());
        let mut states = Vec::with_capacity((end - key) as usize);
        let mut cur: Vec<u8> = Vec::new();
        for i in key..end {
            cur = if i == key {
                codec::decompress(&[], self.record_bytes(i))?
            } else {
                codec::decompress(&cur, self.record_bytes(i))?
            };
            states.push(serde_json::from_slice(&cur).map_err(|e| format!("state {i}: {e}"))?);
        }
        Ok(states)
    }

    /// Bytes this store holds in memory (buffer capacities, not counting
    /// allocator overhead). The headline number for
    /// `replay.resident_bytes`.
    pub fn resident_bytes(&self) -> u64 {
        (self.snap.capacity()
            + self.snap_off.capacity() * 8
            + self.lines.capacity() * 4
            + self.depths.capacity() * 4
            + self.output.capacity()
            + self.out_off.capacity() * 4
            + self.prev_bytes.capacity()) as u64
            + self.writes.resident_bytes()
            + self.prev_state.as_ref().map(|_| 1024).unwrap_or(0)
    }

    /// Drops append-side scratch (the delta dictionary and diff state).
    /// Call when the recording is complete; pushing after this would
    /// start a fresh (incorrect) delta chain, so `push` must not be
    /// called again.
    pub fn freeze(&mut self) {
        self.prev_bytes = Vec::new();
        self.prev_state = None;
        self.snap.shrink_to_fit();
        self.output.shrink_to_fit();
    }

    // ---- persistence ---------------------------------------------------

    /// Serializes the store to its on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let meta = serde_json::json!({
            "file": self.file,
            "source": self.source,
            "keyframe_every": self.keyframe_every,
            "exit_code": self.exit_code,
            "pauses": self.len(),
        });
        put_section(&mut body, meta.to_string().as_bytes());
        let mut col = Vec::new();
        let mut prev = 0u64;
        for &o in &self.snap_off {
            codec::put_varint(&mut col, o - prev);
            prev = o;
        }
        put_section(&mut body, &col);
        put_section(&mut body, &self.snap);
        col.clear();
        for &l in &self.lines {
            codec::put_varint(&mut col, u64::from(l));
        }
        put_section(&mut body, &col);
        col.clear();
        for &d in &self.depths {
            codec::put_varint(&mut col, u64::from(d));
        }
        put_section(&mut body, &col);
        col.clear();
        let mut prev = 0u32;
        for &o in &self.out_off {
            codec::put_varint(&mut col, u64::from(o - prev));
            prev = o;
        }
        put_section(&mut body, &col);
        put_section(&mut body, self.output.as_bytes());
        // Write index: compressed as one blob, it is mostly repeated names.
        let mut windex = Vec::new();
        codec::put_varint(&mut windex, self.writes.names.len() as u64);
        for (id, name) in self.writes.names.iter().enumerate() {
            put_section(&mut windex, name.as_bytes());
            let log = &self.writes.by_name[id];
            codec::put_varint(&mut windex, log.len() as u64);
            let mut prev = 0u64;
            for (p, v) in log {
                codec::put_varint(&mut windex, p - prev);
                prev = *p;
                put_section(&mut windex, v.as_bytes());
            }
        }
        put_section(&mut body, &codec::compress(&[], &windex));

        let mut out = Vec::with_capacity(body.len() + 24);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a(&body).to_le_bytes());
        out
    }

    /// Deserializes a store written by [`Store::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Store, String> {
        if buf.len() < MAGIC.len() + 12 {
            return Err("trace file truncated".into());
        }
        if &buf[..MAGIC.len()] != MAGIC {
            return Err("not a trace file (bad magic)".into());
        }
        let mut pos = MAGIC.len();
        let version = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        pos += 4;
        if version != FORMAT_VERSION {
            return Err(format!(
                "trace format v{version} unsupported (expected v{FORMAT_VERSION})"
            ));
        }
        let body = &buf[pos..buf.len() - 8];
        let want = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
        let got = fnv1a(body);
        if want != got {
            return Err(format!("trace checksum mismatch ({got:#x} != {want:#x})"));
        }
        let mut pos = 0usize;
        let meta = get_section(body, &mut pos)?;
        let meta: serde_json::Value =
            serde_json::from_slice(meta).map_err(|e| format!("trace meta: {e}"))?;
        let pauses = meta["pauses"].as_u64().ok_or("trace meta: pauses")? as usize;
        let mut store = Store::new(
            meta["file"].as_str().unwrap_or_default(),
            meta["source"].as_str().unwrap_or_default(),
            meta["keyframe_every"].as_u64().unwrap_or(1) as u32,
        );
        store.exit_code = meta["exit_code"].as_i64();

        let col = get_section(body, &mut pos)?;
        store.snap_off = decode_deltas(col, pauses)?;
        store.snap = get_section(body, &mut pos)?.to_vec();
        let col = get_section(body, &mut pos)?;
        store.lines = decode_u32s(col, pauses)?;
        let col = get_section(body, &mut pos)?;
        store.depths = decode_u32s(col, pauses)?;
        let col = get_section(body, &mut pos)?;
        store.out_off = decode_deltas(col, pauses)?
            .into_iter()
            .map(|v| v as u32)
            .collect();
        store.output = String::from_utf8(get_section(body, &mut pos)?.to_vec())
            .map_err(|e| format!("trace output: {e}"))?;

        let windex = codec::decompress(&[], get_section(body, &mut pos)?)?;
        let mut wpos = 0usize;
        let names = codec::get_varint(&windex, &mut wpos)? as usize;
        for _ in 0..names {
            let name = String::from_utf8(get_section(&windex, &mut wpos)?.to_vec())
                .map_err(|e| format!("trace windex: {e}"))?;
            let count = codec::get_varint(&windex, &mut wpos)? as usize;
            let id = store.writes.intern(&name) as usize;
            let mut prev = 0u64;
            for _ in 0..count {
                prev += codec::get_varint(&windex, &mut wpos)?;
                let val = String::from_utf8(get_section(&windex, &mut wpos)?.to_vec())
                    .map_err(|e| format!("trace windex: {e}"))?;
                store.writes.by_name[id].push((prev, val));
            }
        }
        Ok(store)
    }

    /// Writes the store to `path`.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<u64> {
        let bytes = self.to_bytes();
        std::fs::write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Reads a store from `path`.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Store, String> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
        Store::from_bytes(&bytes)
    }
}

/// Visits every visible variable of a state with its history-index name:
/// locals/parameters/registers qualified by frame (`main::x`, innermost
/// frame first so shadowed outer locals are skipped), globals bare.
fn for_each_visible(st: &ProgramState, mut f: impl FnMut(String, String)) {
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for frame in st.frame.chain() {
        for var in frame.variables() {
            let name = format!("{}::{}", frame.name(), var.name());
            if seen.insert(name.clone()) {
                f(name, render_value(var.value().deref_fully()));
            }
        }
    }
    for var in st.globals.iter().filter(|v| v.scope() == Scope::Global) {
        let name = var.name().to_string();
        if seen.insert(name.clone()) {
            f(name, render_value(var.value().deref_fully()));
        }
    }
}

fn put_section(out: &mut Vec<u8>, bytes: &[u8]) {
    codec::put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn get_section<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], String> {
    let len = codec::get_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| "trace section past end of file".to_string())?;
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

fn decode_deltas(col: &[u8], count: usize) -> Result<Vec<u64>, String> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(count);
    let mut acc = 0u64;
    for _ in 0..count {
        acc += codec::get_varint(col, &mut pos)?;
        out.push(acc);
    }
    Ok(out)
}

fn decode_u32s(col: &[u8], count: usize) -> Result<Vec<u32>, String> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(codec::get_varint(col, &mut pos)? as u32);
    }
    Ok(out)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
