//! Omniscient trace store: indexed, persistent execution recordings
//! with O(log n) time travel.
//!
//! The EasyTracker paper's record/replay workflow (§V) snapshots the
//! full [`state::ProgramState`] at every executed line. This crate is
//! the scalable back end for that workflow: instead of a vector of full
//! snapshots it keeps periodic *keyframes* plus delta-encoded records
//! in a compressed columnar layout ([`Store`]), an index from pause
//! number to record offset, a shared output blob, and a variable-write
//! index for history queries.
//!
//! * `seek(n)` is O(log n): binary-search arithmetic to the enclosing
//!   keyframe, then at most `keyframe_every - 1` bounded delta replays.
//! * Reverse-step / reverse-continue are seeks.
//! * "When did `x` last change?" / "all writes to `x` in `[a, b]`" are
//!   binary searches over the write index — no replay at all.
//!
//! A [`Store`] is appendable while the inferior runs, serializes to a
//! versioned on-disk format ([`Store::to_bytes`] / [`Store::open`]),
//! and is shared behind an `Arc` by any number of concurrently
//! scrubbing [`TraceReader`]s, each with its own decoded-segment cache
//! and its own `obs` metrics (`trace.seek_ns`, `trace.keyframe_hits`,
//! `trace.bytes_on_disk`).
//!
//! # Examples
//!
//! ```
//! use state::{Frame, PauseReason, ProgramState, Prim, Scope, SourceLocation, Value, Variable};
//!
//! let mut store = trace::Store::new("t.c", "int main() {}", 4);
//! for i in 0..10u32 {
//!     let mut frame = Frame::new("main", 0, SourceLocation::new("t.c", i + 1));
//!     frame.insert_variable(Variable::new(
//!         "x",
//!         Scope::Local,
//!         Value::primitive(Prim::Int(i64::from(i)), "int"),
//!     ));
//!     let st = ProgramState::new(frame, vec![], PauseReason::Step);
//!     store.push(&st, "");
//! }
//! store.set_exit_code(Some(0));
//! store.freeze();
//!
//! // O(log n) random access…
//! assert_eq!(store.state_at(7).unwrap().frame.location().line(), 8);
//! // …history queries without replay…
//! let hit = store.last_change("x", None).unwrap();
//! assert_eq!((hit.pause, hit.value.as_str()), (9, "9"));
//! // …and a byte-exact persistent form.
//! let back = trace::Store::from_bytes(&store.to_bytes()).unwrap();
//! assert_eq!(back.state_at(7).unwrap(), store.state_at(7).unwrap());
//! ```

pub mod codec;
mod reader;
mod store;

pub use reader::TraceReader;
pub use store::{HistoryHit, Store, DEFAULT_KEYFRAME_EVERY, FORMAT_VERSION, MAGIC};

#[cfg(test)]
mod tests {
    use super::*;
    use state::{Frame, PauseReason, Prim, ProgramState, Scope, SourceLocation, Value, Variable};
    use std::sync::Arc;

    fn mk_state(line: u32, x: i64, depth: u32, reason: PauseReason) -> ProgramState {
        let mut frame = Frame::new("main", 0, SourceLocation::new("t.c", line));
        frame.insert_variable(Variable::new(
            "x",
            Scope::Local,
            Value::primitive(Prim::Int(x), "int"),
        ));
        let mut inner = frame;
        for d in 1..=depth {
            let mut f = Frame::new(format!("f{d}"), d, SourceLocation::new("t.c", line));
            f.insert_variable(Variable::new(
                "y",
                Scope::Local,
                Value::primitive(Prim::Int(i64::from(d)), "int"),
            ));
            f.set_parent(inner);
            inner = f;
        }
        let globals = vec![Variable::new(
            "g",
            Scope::Global,
            Value::primitive(Prim::Int(x / 3), "int"),
        )];
        ProgramState::new(inner, globals, reason)
    }

    fn build(n: u32, keyframe_every: u32) -> Store {
        let mut store = Store::new("t.c", "int main() { return 0; }", keyframe_every);
        for i in 0..n {
            let reason = if i == 0 {
                PauseReason::Started
            } else {
                PauseReason::Step
            };
            let st = mk_state(i % 17 + 1, i64::from(i), i % 3, reason);
            store.push(&st, &format!("out{i};"));
        }
        store.set_exit_code(Some(14));
        store
    }

    #[test]
    fn every_pause_reconstructs_exactly() {
        let store = build(100, 8);
        for i in 0..100u64 {
            let st = store.state_at(i).unwrap();
            let want = mk_state(
                (i % 17 + 1) as u32,
                i as i64,
                (i % 3) as u32,
                if i == 0 {
                    PauseReason::Started
                } else {
                    PauseReason::Step
                },
            );
            assert_eq!(st, want, "pause {i}");
        }
        assert!(store.state_at(100).is_err());
    }

    #[test]
    fn disk_roundtrip_is_byte_exact() {
        let mut store = build(75, 16);
        store.freeze();
        let bytes = store.to_bytes();
        let back = Store::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), store.len());
        assert_eq!(back.exit_code(), Some(14));
        assert_eq!(back.file(), store.file());
        assert_eq!(back.source(), store.source());
        assert_eq!(back.breakable_lines(), store.breakable_lines());
        for i in 0..store.len() {
            assert_eq!(
                back.state_bytes_at(i).unwrap(),
                store.state_bytes_at(i).unwrap(),
                "pause {i}"
            );
        }
        assert_eq!(
            back.output_range(0, back.len()),
            store.output_range(0, store.len())
        );
        assert_eq!(back.writes_in("x", 0, 74), store.writes_in("x", 0, 74));
        // Serialization is deterministic.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_trace_files_are_rejected() {
        let store = build(10, 4);
        let bytes = store.to_bytes();
        assert!(
            Store::from_bytes(&bytes[..bytes.len() - 1]).is_err(),
            "truncated"
        );
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x41;
        assert!(Store::from_bytes(&flipped).is_err(), "bit flip");
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(Store::from_bytes(&bad_magic).is_err(), "magic");
        let mut bad_version = bytes;
        bad_version[8] = 0xfe;
        assert!(Store::from_bytes(&bad_version).is_err(), "version");
    }

    #[test]
    fn output_ranges_slice_the_blob() {
        let store = build(5, 2);
        assert_eq!(store.output_range(0, 5), "out0;out1;out2;out3;out4;");
        assert_eq!(store.output_range(1, 3), "out1;out2;");
        assert_eq!(store.output_range(3, 3), "");
        assert_eq!(store.output_range(4, 99), "out4;");
    }

    #[test]
    fn history_queries_find_writes() {
        let store = build(60, 8);
        // x changes every pause; bare name matches main::x.
        let hits = store.writes_in("x", 10, 12);
        assert_eq!(
            hits.iter()
                .map(|h| (h.pause, h.value.as_str()))
                .collect::<Vec<_>>(),
            vec![(10, "10"), (11, "11"), (12, "12")]
        );
        // Qualified name.
        assert_eq!(store.writes_in("main::x", 10, 10).len(), 1);
        assert!(store.writes_in("main::nope", 0, 59).is_empty());
        // g = x / 3 changes only every third pause.
        let g = store.writes_in("g", 0, 8);
        assert_eq!(g.iter().map(|h| h.pause).collect::<Vec<_>>(), vec![0, 3, 6]);
        let last = store.last_change("g", Some(8)).unwrap();
        assert_eq!((last.pause, last.value.as_str()), (6, "2"));
        assert_eq!(store.last_change("g", None).unwrap().pause, 57);
        assert!(store.last_change("absent", None).is_none());
    }

    #[test]
    fn line_and_depth_columns() {
        let store = build(20, 4);
        assert_eq!(store.line_at(0), Some(1));
        assert_eq!(store.line_at(16), Some(17));
        assert_eq!(store.depth_at(4), Some(2)); // depth param 1 → 2 frames
        assert_eq!(store.depth_at(20), None);
        let lines = store.breakable_lines();
        assert!(lines.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(lines.first(), Some(&1));
    }

    #[test]
    fn empty_store_is_serviceable() {
        let mut store = Store::new("e.c", "", 32);
        store.set_exit_code(None);
        assert!(store.is_empty());
        assert!(store.state_at(0).is_err());
        assert_eq!(store.output_range(0, 0), "");
        let back = Store::from_bytes(&store.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.keyframes(), 0);
    }

    #[test]
    fn reader_caches_segments_and_reports_metrics() {
        let registry = obs::Registry::new();
        let store = Arc::new(build(64, 8));
        let reader = TraceReader::new(store.clone(), registry.clone());
        // A sequential scan decodes each segment once.
        for i in 0..64u64 {
            let st = reader.state_at(i).unwrap();
            assert_eq!(st.frame.location().line(), (i % 17 + 1) as u32);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("trace.keyframe_decodes"), 8);
        assert_eq!(snap.counter("trace.keyframe_hits"), 56);
        assert!(snap.gauge("trace.resident_bytes") > 0);
        // Re-reads of a warm segment are hits.
        reader.state_at(63).unwrap();
        assert_eq!(registry.snapshot().counter("trace.keyframe_hits"), 57);
    }

    #[test]
    fn readers_share_one_store_concurrently() {
        let store = Arc::new(build(48, 8));
        let mut handles = Vec::new();
        for r in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let reader = TraceReader::new(store, obs::Registry::new());
                let mut sum = 0i64;
                for i in 0..48u64 {
                    let n = (i * 7 + r) % 48;
                    let st = reader.state_at(n).unwrap();
                    assert_eq!(st.frame.location().line(), (n % 17 + 1) as u32);
                    sum += n as i64;
                }
                sum
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn compression_beats_full_snapshots() {
        let store = build(200, 32);
        let raw: usize = (0..200u64)
            .map(|i| store.state_bytes_at(i).unwrap().len())
            .sum();
        let disk = store.to_bytes().len();
        assert!(
            disk < raw / 2,
            "store should compress well below raw snapshots: {disk} vs {raw}"
        );
    }
}
