//! Execution recordings and the replay tracker (paper §III-E).
//!
//! A [`Recording`] is a serializable step-by-step capture of an inferior's
//! execution: one [`ProgramState`] snapshot per executed line. Because it
//! serializes, a recording can be saved, shipped to a browser, or replayed
//! later. [`ReplayTracker`] implements the *full* [`Tracker`] API over a
//! recording — "the full power of control through the API on a
//! pre-generated trace" — so every visualization tool in this repository
//! also works offline on recorded runs. Breakpoints, function tracking,
//! stepping and watchpoints are all re-derived from the recorded
//! snapshots.
//!
//! Since the trace-store rework, `ReplayTracker` no longer materializes
//! every snapshot in memory: the recording is folded into a compressed,
//! indexed [`trace::Store`] (keyframes + deltas), states are decoded on
//! demand through a per-reader segment cache, and random access —
//! [`ReplayTracker::seek`] — is O(log n) instead of a linear re-drive.
//! One `Arc<trace::Store>` can back any number of concurrently scrubbing
//! replay trackers, and history queries ([`ReplayTracker::last_change`],
//! [`ReplayTracker::writes_in`]) answer from the store's write index
//! without replaying at all.

use crate::{ControlPointId, Result, Tracker, TrackerError};
use serde::{Deserialize, Serialize};
use state::{ExitStatus, Frame, PauseReason, ProgramState, SourceLocation, Variable};
use std::collections::HashMap;
use std::sync::Arc;

/// One recorded pause: the full snapshot plus the output produced since
/// the previous step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedStep {
    /// The snapshot at this pause.
    pub state: ProgramState,
    /// Output emitted between the previous pause and this one.
    pub output_delta: String,
}

/// A recorded execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    /// Source file name.
    pub file: String,
    /// Full source text.
    pub source: String,
    /// Snapshots, one per executed line (step granularity).
    pub steps: Vec<RecordedStep>,
    /// Exit code of the run.
    pub exit_code: i64,
}

impl Recording {
    /// Records a *fresh* (not yet started) tracker by single-stepping it to
    /// completion.
    ///
    /// # Errors
    ///
    /// Propagates tracker errors; the tracker must not have been started.
    pub fn capture(tracker: &mut dyn Tracker) -> Result<Recording> {
        let (file, source) = tracker.get_source()?;
        let mut steps = Vec::new();
        let mut reason = tracker.start()?;
        while reason.is_alive() {
            let state = tracker.get_state()?;
            let output_delta = tracker.get_output()?;
            steps.push(RecordedStep {
                state,
                output_delta,
            });
            reason = tracker.step()?;
        }
        // Any output produced by the very last step.
        if let (Some(last), Ok(tail)) = (steps.last_mut(), tracker.get_output()) {
            last.output_delta.push_str(&tail);
        }
        Ok(Recording {
            file,
            source,
            steps,
            exit_code: tracker.get_exit_code().unwrap_or(0),
        })
    }

    /// Serializes to JSON (loadable by [`crate::init_tracker`] with a
    /// `.json` name).
    ///
    /// # Errors
    ///
    /// Never fails in practice; surfaces serializer errors as
    /// [`TrackerError::Engine`].
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| TrackerError::Engine(e.to_string()))
    }

    /// Folds the recording into a compressed, indexed [`trace::Store`]
    /// with the given keyframe cadence.
    pub fn to_store(&self, keyframe_every: u32) -> trace::Store {
        let mut store = trace::Store::new(self.file.clone(), self.source.clone(), keyframe_every);
        for step in &self.steps {
            store.push(&step.state, &step.output_delta);
        }
        store.set_exit_code(Some(self.exit_code));
        store.freeze();
        store
    }

    /// Total number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the recording has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[derive(Debug, Clone)]
enum CpKind {
    LineBp(u32),
    FuncBp {
        function: String,
        maxdepth: Option<u32>,
    },
    Track {
        function: String,
        maxdepth: Option<u32>,
    },
    Watch {
        variable: String,
    },
}

#[derive(Debug, Clone)]
struct ControlPoint {
    id: u64,
    kind: CpKind,
}

/// Per-watched-variable timeline, derived once from the store when the
/// watchpoint is armed: the variable's rendered visible value at each
/// pause, plus a running "most recent visible value at or before each
/// pause". Together they answer the live trackers' sticky-watch question
/// ("did the value change against the last step where the variable was
/// visible?") in O(1) per trigger check instead of a backward scan.
#[derive(Debug)]
struct WatchTimeline {
    visible: Vec<Option<String>>,
    last: Vec<Option<String>>,
}

/// A tracker that replays a recorded execution out of a [`trace::Store`].
#[derive(Debug)]
pub struct ReplayTracker {
    reader: trace::TraceReader,
    /// Index of the current step; `None` before `start`.
    idx: Option<usize>,
    points: Vec<ControlPoint>,
    next_id: u64,
    last_reason: PauseReason,
    /// Output released to the tool so far (recorded deltas up to `idx`).
    output_pos: usize,
    output_cursor: usize,
    /// Highest trigger phase already reported at the current step
    /// (`u8::MAX` when the step was reached by plain stepping).
    rank_done: u8,
    obs: obs::Registry,
    /// Armed profile configuration; the report is derived on demand from
    /// the recorded snapshots, so there is no live profiler to carry.
    prof: Option<(obs::ProfileMode, u64)>,
    watch_tl: HashMap<String, WatchTimeline>,
}

impl ReplayTracker {
    /// Creates a replay tracker over a recording (folded into an
    /// in-memory trace store at [`trace::DEFAULT_KEYFRAME_EVERY`]).
    pub fn new(recording: Recording) -> Self {
        Self::with_registry(recording, obs::Registry::new())
    }

    /// Like [`ReplayTracker::new`], with control-call latencies and
    /// inspection counters reported into `registry`.
    pub fn with_registry(recording: Recording, registry: obs::Registry) -> Self {
        let store = recording.to_store(trace::DEFAULT_KEYFRAME_EVERY);
        Self::from_store_with_registry(Arc::new(store), registry)
    }

    /// Replays a shared trace store. Many trackers can scrub one
    /// `Arc<trace::Store>` concurrently; each keeps its own position,
    /// control points, decoded-segment cache and metrics.
    pub fn from_store(store: Arc<trace::Store>) -> Self {
        Self::from_store_with_registry(store, obs::Registry::new())
    }

    /// Like [`ReplayTracker::from_store`] with an explicit registry.
    pub fn from_store_with_registry(store: Arc<trace::Store>, registry: obs::Registry) -> Self {
        let reader = trace::TraceReader::new(store, registry.clone());
        let t = ReplayTracker {
            reader,
            idx: None,
            points: Vec::new(),
            next_id: 1,
            last_reason: PauseReason::NotStarted,
            output_pos: 0,
            output_cursor: 0,
            rank_done: u8::MAX,
            obs: registry,
            prof: None,
            watch_tl: HashMap::new(),
        };
        t.obs
            .set_gauge("replay.resident_bytes", t.reader.resident_bytes());
        t
    }

    /// Opens a trace file written by [`ReplayTracker::save`] (or
    /// [`trace::Store::save`]).
    ///
    /// # Errors
    ///
    /// Fails when the file is missing, corrupt, or of an unsupported
    /// format version.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let store = trace::Store::open(path).map_err(TrackerError::Engine)?;
        Ok(Self::from_store(Arc::new(store)))
    }

    /// Persists the backing store to `path` and returns the byte count
    /// (also published as the `trace.bytes_on_disk` gauge).
    ///
    /// # Errors
    ///
    /// Surfaces I/O errors as [`TrackerError::Engine`].
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<u64> {
        let n = self
            .reader
            .store()
            .save(path)
            .map_err(|e| TrackerError::Engine(e.to_string()))?;
        self.obs.set_gauge("trace.bytes_on_disk", n);
        Ok(n)
    }

    /// The shared store backing this tracker.
    pub fn store(&self) -> &Arc<trace::Store> {
        self.reader.store()
    }

    /// Number of recorded pauses.
    pub fn recorded_pauses(&self) -> u64 {
        self.reader.store().len()
    }

    /// Rematerializes the full [`Recording`] from the store (every state
    /// decoded through the keyframe index). Mostly useful for tools that
    /// consume recordings, like the `pttrace` timeline.
    pub fn to_recording(&self) -> Recording {
        let n = self.len();
        let store = self.reader.store().clone();
        let steps = (0..n)
            .map(|i| RecordedStep {
                state: (*self.state_at(i)).clone(),
                output_delta: store.output_range(i as u64, i as u64 + 1).to_string(),
            })
            .collect();
        Recording {
            file: store.file().to_string(),
            source: store.source().to_string(),
            steps,
            exit_code: self.exit_code(),
        }
    }

    /// The registry this tracker reports into.
    pub fn registry(&self) -> &obs::Registry {
        &self.obs
    }

    fn timed_control(
        &mut self,
        kind: &str,
        f: impl FnOnce(&mut Self) -> Result<PauseReason>,
    ) -> Result<PauseReason> {
        let mut span = self.obs.span(format!("tracker.control.{kind}"));
        span.category("tracker");
        let r = f(self);
        if let Ok(reason) = &r {
            span.tag("pause_reason", reason.tag());
        }
        r
    }

    fn count_inspect(&self, kind: &str) {
        self.obs.inc(&format!("tracker.inspect.{kind}"));
    }

    fn len(&self) -> usize {
        self.reader.store().len() as usize
    }

    fn exit_code(&self) -> i64 {
        self.reader.store().exit_code().unwrap_or(0)
    }

    fn state_at(&self, i: usize) -> Arc<ProgramState> {
        self.reader
            .state_at(i as u64)
            .expect("recorded pause decodes (store is checksummed)")
    }

    fn depth_at(&self, i: usize) -> usize {
        self.reader
            .store()
            .depth_at(i as u64)
            .expect("recorded pause") as usize
    }

    fn line_at(&self, i: usize) -> u32 {
        self.reader
            .store()
            .line_at(i as u64)
            .expect("recorded pause")
    }

    fn exited_reason(&self) -> PauseReason {
        let code = self.exit_code();
        PauseReason::Exited(if code == -1 {
            ExitStatus::Crashed
        } else {
            ExitStatus::Exited(code)
        })
    }

    /// Number of frames named `function` anywhere on the stack at `state`.
    fn occurrences(state: &ProgramState, function: &str) -> usize {
        state.frame.chain().filter(|f| f.name() == function).count()
    }

    fn lookup_in(&self, state: &ProgramState, name: &str) -> Option<Variable> {
        let (frame_filter, var) = match name.split_once("::") {
            Some((f, v)) => (Some(f), v),
            None => (None, name),
        };
        for frame in state.frame.chain() {
            if let Some(f) = frame_filter {
                if frame.name() != f {
                    continue;
                }
            }
            if let Some(v) = frame.variable(var) {
                return Some(v.clone());
            }
            if frame_filter.is_none() {
                break;
            }
        }
        if frame_filter.is_none() {
            return state.globals.iter().find(|g| g.name() == var).cloned();
        }
        None
    }

    /// Derives the sticky-watch timeline for `variable` in one sequential
    /// pass over the store (each segment decoded once).
    fn build_watch_timeline(&self, variable: &str) -> WatchTimeline {
        let n = self.len();
        let mut visible = Vec::with_capacity(n);
        let mut last = Vec::with_capacity(n);
        let mut sticky: Option<String> = None;
        for i in 0..n {
            let st = self.state_at(i);
            let v = self
                .lookup_in(&st, variable)
                .map(|v| state::render_value(v.value().deref_fully()));
            if v.is_some() {
                sticky = v.clone();
            }
            visible.push(v);
            last.push(sticky.clone());
        }
        WatchTimeline { visible, last }
    }

    /// Pause reason triggered at step `i` (coming from step `i - 1`), if
    /// any control point with phase rank `>= min_rank` matches. Ranks
    /// order the triggers that can coexist on one recorded step (a
    /// one-line function's entry and exit share a step) and mirror the
    /// live engines' event order — frame-entry events fire before the
    /// line's own checks, returns at the end of the step: function
    /// breakpoint(0), tracked call(1), watch(2), line breakpoint(3),
    /// tracked return(4). Re-examining the current step with a higher
    /// `min_rank` lets `resume` deliver every event of such a step, like
    /// the live trackers do.
    fn trigger_at_ranked(&self, i: usize, min_rank: u8) -> Option<(u8, PauseReason)> {
        let cur = self.state_at(i);
        let prev = i.checked_sub(1).map(|p| self.state_at(p));
        let cur_depth = cur.stack_depth();
        let mut best: Option<(u8, PauseReason)> = None;
        let mut consider = |rank: u8, reason: PauseReason| {
            if rank >= min_rank && best.as_ref().is_none_or(|(r, _)| rank < *r) {
                best = Some((rank, reason));
            }
        };
        for cp in &self.points {
            match &cp.kind {
                CpKind::Watch { variable } => {
                    if prev.is_none() {
                        continue;
                    }
                    // Sticky semantics like the live trackers: compare with
                    // the most recent step where the variable was visible
                    // (it may have been shadowed by callee frames). The
                    // armed timeline holds the rendered, fully-dereferenced
                    // values, so this is the original backward scan in O(1).
                    let Some(tl) = self.watch_tl.get(variable) else {
                        continue;
                    };
                    let old = tl.last[i - 1].clone();
                    let new = tl.visible[i].clone();
                    if let Some(new_val) = &new {
                        // A variable springing into existence counts as a
                        // modification (`old` stays `None`), matching the
                        // live Python tracker; MiniC locals are visible
                        // (zero-initialized) from frame entry, so for C
                        // this branch only ever fires on value changes.
                        if old != new {
                            consider(
                                2,
                                PauseReason::Watchpoint {
                                    id: cp.id,
                                    variable: variable.clone(),
                                    old: old.clone(),
                                    new: new_val.clone(),
                                },
                            );
                        }
                    }
                }
                CpKind::LineBp(l) => {
                    if self.line_at(i) == *l {
                        consider(
                            3,
                            PauseReason::Breakpoint {
                                id: cp.id,
                                location: cur.frame.location().clone(),
                            },
                        );
                    }
                }
                CpKind::FuncBp { function, maxdepth } => {
                    let depth0 = (cur_depth - 1) as u32;
                    let entered = Self::occurrences(&cur, function)
                        > prev
                            .as_ref()
                            .map(|p| Self::occurrences(p, function))
                            .unwrap_or(0);
                    if entered
                        && cur.frame.name() == function
                        && maxdepth.is_none_or(|m| depth0 <= m)
                    {
                        consider(
                            0,
                            PauseReason::Breakpoint {
                                id: cp.id,
                                location: cur.frame.location().clone(),
                            },
                        );
                    }
                }
                CpKind::Track { function, maxdepth } => {
                    // Count frames named `function` across the whole stack,
                    // not just the innermost one: when a tracked function's
                    // last executed line is itself a call, the pop back to
                    // its caller happens while a *callee* is the innermost
                    // recorded frame, so a top-of-stack check would miss
                    // the return entirely.
                    let cur_occ = Self::occurrences(&cur, function);
                    let prev_occ = prev
                        .as_ref()
                        .map(|p| Self::occurrences(p, function))
                        .unwrap_or(0);
                    if cur_occ > prev_occ && cur.frame.name() == function {
                        let depth0 = (cur_depth - 1) as u32;
                        if maxdepth.is_none_or(|m| depth0 <= m) {
                            consider(
                                1,
                                PauseReason::FunctionCall {
                                    function: function.clone(),
                                    depth: depth0,
                                },
                            );
                        }
                    }
                    let returning = if i + 1 < self.len() {
                        cur_occ > Self::occurrences(&self.state_at(i + 1), function)
                    } else {
                        // Program exit pops every frame at once; the
                        // outermost frame's teardown is not a tracked
                        // return, so only deeper occurrences count.
                        cur.frame
                            .chain()
                            .enumerate()
                            .any(|(k, f)| f.name() == function && cur_depth - k > 1)
                    };
                    if returning {
                        // Report the innermost occurrence: that is the
                        // frame popped last, hence the return observed at
                        // this step boundary.
                        let depth0 = cur
                            .frame
                            .chain()
                            .enumerate()
                            .find(|(_, f)| f.name() == function)
                            .map(|(k, _)| (cur_depth - 1 - k) as u32)
                            .unwrap_or(0);
                        if maxdepth.is_none_or(|m| depth0 <= m) {
                            consider(
                                4,
                                PauseReason::FunctionReturn {
                                    function: function.clone(),
                                    depth: depth0,
                                    return_value: None,
                                },
                            );
                        }
                    }
                }
            }
        }
        best
    }

    /// Advances to step `target` (releasing its output) or to the end.
    fn goto(&mut self, target: usize) -> PauseReason {
        self.rank_done = u8::MAX;
        if target >= self.len() {
            self.idx = Some(self.len());
            self.output_pos = self.len();
            self.last_reason = self.exited_reason();
        } else {
            self.idx = Some(target);
            self.output_pos = target + 1;
            self.last_reason = PauseReason::Step;
        }
        self.last_reason.clone()
    }

    fn advance_until(
        &mut self,
        mut stop: impl FnMut(&Self, usize) -> Option<PauseReason>,
    ) -> Result<PauseReason> {
        let Some(cur) = self.idx else {
            return Err(TrackerError::NotStarted);
        };
        // Later-phase triggers on the *current* step first (a one-line
        // function's entry and exit share one recorded step).
        if cur < self.len() && self.rank_done < u8::MAX {
            if let Some((rank, trigger)) = self.trigger_at_ranked(cur, self.rank_done + 1) {
                self.rank_done = rank;
                self.last_reason = trigger.clone();
                return Ok(trigger);
            }
        }
        let mut i = cur + 1;
        while i < self.len() {
            if let Some((rank, trigger)) = self.trigger_at_ranked(i, 0) {
                self.goto(i);
                self.rank_done = rank;
                self.last_reason = trigger.clone();
                return Ok(trigger);
            }
            if let Some(reason) = stop(self, i) {
                self.goto(i);
                self.last_reason = reason.clone();
                return Ok(reason);
            }
            i += 1;
        }
        let n = self.len();
        Ok(self.goto(n))
    }

    // ---- time travel (paper §V: the RR-tracker future work) --------------
    //
    // The trace store makes the recording a time-travel debugger: these
    // methods walk the recorded steps backwards (honouring the same
    // control points) or jump straight to any pause through the keyframe
    // index.

    /// Jumps directly to pause `pause` — O(log n): the store finds the
    /// enclosing keyframe and replays at most a segment's worth of
    /// deltas. A `pause` at or past the end lands on the exited state.
    ///
    /// # Errors
    ///
    /// Fails before `start`.
    pub fn seek(&mut self, pause: u64) -> Result<PauseReason> {
        self.timed_control("Seek", |t| {
            if t.idx.is_none() {
                return Err(TrackerError::NotStarted);
            }
            let target = usize::try_from(pause).unwrap_or(usize::MAX).min(t.len());
            let r = t.goto(target);
            t.obs
                .set_gauge("replay.resident_bytes", t.reader.resident_bytes());
            Ok(r)
        })
    }

    /// Steps one recorded line backwards. At the first step this reports
    /// [`PauseReason::Started`] and stays put.
    ///
    /// # Errors
    ///
    /// Fails before `start`.
    pub fn step_back(&mut self) -> Result<PauseReason> {
        self.timed_control("StepBack", |t| {
            let Some(cur) = t.idx else {
                return Err(TrackerError::NotStarted);
            };
            if cur == 0 {
                t.last_reason = PauseReason::Started;
                return Ok(PauseReason::Started);
            }
            let target = (cur - 1).min(t.len().saturating_sub(1));
            let r = t.goto(target);
            Ok(r)
        })
    }

    /// Runs backwards until the previous control point (breakpoint,
    /// watchpoint, tracked-function boundary), or to the beginning
    /// ([`PauseReason::Started`]).
    ///
    /// # Errors
    ///
    /// Fails before `start`.
    pub fn resume_back(&mut self) -> Result<PauseReason> {
        self.timed_control("ResumeBack", |t| {
            let Some(cur) = t.idx else {
                return Err(TrackerError::NotStarted);
            };
            // From the exited position every recorded step is behind us.
            let mut i = cur.min(t.len());
            while i > 0 {
                i -= 1;
                if let Some((rank, trigger)) = t.trigger_at_ranked(i, 0) {
                    t.goto(i);
                    t.rank_done = rank;
                    t.last_reason = trigger.clone();
                    return Ok(trigger);
                }
            }
            t.goto(0);
            t.last_reason = PauseReason::Started;
            Ok(PauseReason::Started)
        })
    }

    // ---- history queries (no replay: the store's write index) ------------

    /// The most recent write to `variable` at or before pause `before`
    /// (default: end of the recording). Bare names match the variable in
    /// any frame plus globals; `frame::name` qualifies.
    pub fn last_change(&self, variable: &str, before: Option<u64>) -> Option<trace::HistoryHit> {
        self.count_inspect("QueryHistory");
        self.reader.store().last_change(variable, before)
    }

    /// All writes to `variable` with pause index in `[from, to]`.
    pub fn writes_in(&self, variable: &str, from: u64, to: u64) -> Vec<trace::HistoryHit> {
        self.count_inspect("QueryHistory");
        self.reader.store().writes_in(variable, from, to)
    }

    /// The snapshot at the current position, without counting an
    /// inspection (shared by the public inspection methods).
    fn current_state(&mut self) -> Result<ProgramState> {
        let Some(cur) = self.idx else {
            return Err(TrackerError::NotStarted);
        };
        if cur >= self.len() {
            // After the end: synthesize a terminal state on the last frame.
            if self.len() > 0 {
                let mut st = (*self.state_at(self.len() - 1)).clone();
                st.reason = self.exited_reason();
                return Ok(st);
            }
            return Ok(ProgramState::new(
                Frame::new(
                    "<module>",
                    0,
                    SourceLocation::new(self.reader.store().file().to_string(), 0),
                ),
                Vec::new(),
                self.exited_reason(),
            ));
        }
        let mut st = (*self.state_at(cur)).clone();
        st.reason = self.last_reason.clone();
        Ok(st)
    }
}

impl Tracker for ReplayTracker {
    fn start(&mut self) -> Result<PauseReason> {
        self.timed_control("Start", |t| {
            if t.idx.is_some() {
                return Err(TrackerError::Engine("replay already started".into()));
            }
            if t.len() == 0 {
                t.idx = Some(0);
                t.last_reason = t.exited_reason();
                return Ok(t.last_reason.clone());
            }
            t.idx = Some(0);
            t.output_pos = 1;
            t.last_reason = PauseReason::Started;
            Ok(PauseReason::Started)
        })
    }

    fn resume(&mut self) -> Result<PauseReason> {
        self.timed_control("Resume", |t| t.advance_until(|_, _| None))
    }

    fn step(&mut self) -> Result<PauseReason> {
        self.timed_control("Step", |t| {
            let Some(cur) = t.idx else {
                return Err(TrackerError::NotStarted);
            };
            Ok(t.goto(cur + 1))
        })
    }

    fn next(&mut self) -> Result<PauseReason> {
        self.timed_control("Next", |t| {
            let Some(cur) = t.idx else {
                return Err(TrackerError::NotStarted);
            };
            if cur >= t.len() {
                return Ok(t.exited_reason());
            }
            let depth = t.depth_at(cur);
            let line = t.line_at(cur);
            t.advance_until(move |this, i| {
                let d = this.depth_at(i);
                (d < depth || (d == depth && this.line_at(i) != line)).then_some(PauseReason::Step)
            })
        })
    }

    fn finish(&mut self) -> Result<PauseReason> {
        self.timed_control("Finish", |t| {
            let Some(cur) = t.idx else {
                return Err(TrackerError::NotStarted);
            };
            if cur >= t.len() {
                return Ok(t.exited_reason());
            }
            let depth = t.depth_at(cur);
            if depth <= 1 {
                return Err(TrackerError::Engine(
                    "cannot finish the outermost frame".into(),
                ));
            }
            t.advance_until(move |this, i| (this.depth_at(i) < depth).then_some(PauseReason::Step))
        })
    }

    fn break_before_line(&mut self, line: u32) -> Result<ControlPointId> {
        self.obs.inc("tracker.control_point.SetBreakLine");
        // Slide to the next recorded line, like the live engines.
        let actual = self
            .reader
            .store()
            .breakable_lines()
            .into_iter()
            .filter(|&l| l >= line)
            .min()
            .ok_or_else(|| {
                TrackerError::Engine(format!("no recorded execution at or after line {line}"))
            })?;
        let id = self.next_id;
        self.next_id += 1;
        self.points.push(ControlPoint {
            id,
            kind: CpKind::LineBp(actual),
        });
        Ok(id)
    }

    fn break_before_func(
        &mut self,
        function: &str,
        maxdepth: Option<u32>,
    ) -> Result<ControlPointId> {
        self.obs.inc("tracker.control_point.SetBreakFunc");
        let id = self.next_id;
        self.next_id += 1;
        self.points.push(ControlPoint {
            id,
            kind: CpKind::FuncBp {
                function: function.to_owned(),
                maxdepth,
            },
        });
        Ok(id)
    }

    fn track_function(&mut self, function: &str, maxdepth: Option<u32>) -> Result<ControlPointId> {
        self.obs.inc("tracker.control_point.TrackFunction");
        let id = self.next_id;
        self.next_id += 1;
        self.points.push(ControlPoint {
            id,
            kind: CpKind::Track {
                function: function.to_owned(),
                maxdepth,
            },
        });
        Ok(id)
    }

    fn watch(&mut self, variable: &str) -> Result<ControlPointId> {
        self.obs.inc("tracker.control_point.Watch");
        if !self.watch_tl.contains_key(variable) {
            let tl = self.build_watch_timeline(variable);
            self.watch_tl.insert(variable.to_owned(), tl);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.points.push(ControlPoint {
            id,
            kind: CpKind::Watch {
                variable: variable.to_owned(),
            },
        });
        Ok(id)
    }

    fn remove(&mut self, id: ControlPointId) -> Result<()> {
        let before = self.points.len();
        self.points.retain(|cp| cp.id != id);
        if self.points.len() == before {
            return Err(TrackerError::Engine(format!("no control point {id}")));
        }
        Ok(())
    }

    fn terminate(&mut self) {
        self.idx = Some(self.len());
    }

    fn pause_reason(&self) -> PauseReason {
        self.last_reason.clone()
    }

    fn get_current_frame(&mut self) -> Result<Frame> {
        self.count_inspect("GetState");
        Ok(self.current_state()?.frame)
    }

    fn get_state(&mut self) -> Result<ProgramState> {
        self.count_inspect("GetState");
        self.current_state()
    }

    fn get_global_variables(&mut self) -> Result<Vec<Variable>> {
        self.count_inspect("GetGlobals");
        Ok(self.current_state()?.globals)
    }

    fn get_variable(&mut self, name: &str) -> Result<Option<Variable>> {
        self.count_inspect("GetVariable");
        let st = self.current_state()?;
        Ok(self.lookup_in(&st, name))
    }

    fn get_exit_code(&mut self) -> Option<i64> {
        self.count_inspect("GetExitCode");
        match self.idx {
            Some(i) if i >= self.len() => Some(self.exit_code()),
            _ => None,
        }
    }

    fn get_output(&mut self) -> Result<String> {
        self.count_inspect("GetOutput");
        let upto = self.output_pos.min(self.len());
        let start = self.output_cursor.min(upto);
        let out = self
            .reader
            .store()
            .output_range(start as u64, upto as u64)
            .to_string();
        self.output_cursor = upto;
        Ok(out)
    }

    fn get_source(&mut self) -> Result<(String, String)> {
        self.count_inspect("GetSource");
        let store = self.reader.store();
        Ok((store.file().to_string(), store.source().to_string()))
    }

    fn breakable_lines(&mut self) -> Result<Vec<u32>> {
        self.count_inspect("GetBreakableLines");
        Ok(self.reader.store().breakable_lines())
    }

    fn set_profile(&mut self, mode: obs::ProfileMode, period: u64) -> Result<()> {
        // A recording can be (re)profiled at any position: the report is
        // derived, not collected, so there is no before-start constraint.
        self.prof = (mode != obs::ProfileMode::Off).then_some((mode, period));
        Ok(())
    }

    fn profile(&mut self) -> Result<obs::ProfileReport> {
        let Some((mode, period)) = self.prof else {
            return Ok(obs::ProfileReport::default());
        };
        let upto = match self.idx {
            Some(i) => (i + 1).min(self.len()),
            None => 0,
        };
        // Re-drive a live profiler from the recorded stacks: each
        // recorded step is one line unit attributed to its innermost
        // frame. Calls are recovered from stack growth between steps, so
        // back-to-back calls of one function collapsing onto the same
        // stack shape count once — line-granular recordings cannot tell
        // them apart.
        let mut p = obs::Profiler::new(mode, period);
        let mut stack: Vec<String> = Vec::new();
        for i in 0..upto {
            let st = self.state_at(i);
            let mut chain: Vec<String> = st.frame.chain().map(|f| f.name().to_owned()).collect();
            chain.reverse(); // outermost first
            let common = stack.iter().zip(&chain).take_while(|(a, b)| a == b).count();
            for _ in common..stack.len() {
                p.exit();
            }
            for name in &chain[common..] {
                let id = p.intern(name);
                p.enter(id);
            }
            stack = chain;
            p.line(st.frame.location().line());
            p.tick();
        }
        Ok(p.report())
    }

    fn stats(&self) -> obs::Snapshot {
        self.obs.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MiTracker, PyTracker};

    const C_PROG: &str = "int square(int x) {\nreturn x * x;\n}\nint main() {\nint s = 0;\nfor (int i = 1; i <= 3; i++) {\ns += square(i);\n}\nreturn s;\n}";

    fn record_c() -> Recording {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        let rec = Recording::capture(&mut t).unwrap();
        t.terminate();
        rec
    }

    #[test]
    fn capture_records_every_step() {
        let rec = record_c();
        assert!(rec.len() > 10);
        assert_eq!(rec.exit_code, 14);
        // Serializes and round-trips.
        let json = rec.to_json().unwrap();
        let back: Recording = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn replay_stepping_matches_recording() {
        let rec = record_c();
        let n = rec.len();
        let mut t = ReplayTracker::new(rec);
        assert_eq!(t.start().unwrap(), PauseReason::Started);
        let mut count = 1;
        while t.get_exit_code().is_none() {
            t.step().unwrap();
            count += 1;
        }
        assert_eq!(count, n + 1);
        assert_eq!(t.get_exit_code(), Some(14));
    }

    #[test]
    fn replay_breakpoints_and_tracking() {
        let rec = record_c();
        let mut t = ReplayTracker::new(rec);
        t.track_function("square", None).unwrap();
        t.start().unwrap();
        let mut calls = 0;
        let mut returns = 0;
        loop {
            match t.resume().unwrap() {
                PauseReason::FunctionCall { function, .. } => {
                    assert_eq!(function, "square");
                    calls += 1;
                    // The frame is inspectable from the recording.
                    let f = t.get_current_frame().unwrap();
                    assert_eq!(f.name(), "square");
                }
                PauseReason::FunctionReturn { .. } => returns += 1,
                PauseReason::Exited(_) => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(calls, 3);
        assert_eq!(returns, 3);
    }

    #[test]
    fn replay_watchpoints_from_recorded_states() {
        let mut live = MiTracker::load_c(
            "w.c",
            "int main() {\nint i = 0;\nwhile (i < 3) {\ni = i + 1;\n}\nreturn i;\n}",
        )
        .unwrap();
        let rec = Recording::capture(&mut live).unwrap();
        live.terminate();
        let mut t = ReplayTracker::new(rec);
        t.start().unwrap();
        t.watch("i").unwrap();
        let mut changes = 0;
        loop {
            match t.resume().unwrap() {
                PauseReason::Watchpoint { variable, .. } => {
                    assert_eq!(variable, "i");
                    changes += 1;
                }
                PauseReason::Exited(_) => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(changes, 3);
    }

    #[test]
    fn replay_works_for_python_recordings_too() {
        let mut live =
            PyTracker::load("p.py", "def f(x):\n    return x + 1\na = f(1)\nb = f(a)\n").unwrap();
        let rec = Recording::capture(&mut live).unwrap();
        live.terminate();
        let mut t = ReplayTracker::new(rec);
        t.track_function("f", None).unwrap();
        t.start().unwrap();
        let mut calls = 0;
        loop {
            match t.resume().unwrap() {
                PauseReason::FunctionCall { .. } => calls += 1,
                PauseReason::Exited(_) => break,
                _ => {}
            }
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn replay_output_released_in_step_order() {
        let mut live = PyTracker::load("p.py", "print('a')\nprint('b')\nprint('c')\n").unwrap();
        let rec = Recording::capture(&mut live).unwrap();
        live.terminate();
        let mut t = ReplayTracker::new(rec);
        t.start().unwrap();
        t.step().unwrap();
        let first = t.get_output().unwrap();
        assert!(first.contains('a') && !first.contains('c'));
        t.resume().unwrap();
        let rest = t.get_output().unwrap();
        assert!(rest.contains('c'));
    }

    #[test]
    fn via_init_tracker_json() {
        let rec = record_c();
        let json = rec.to_json().unwrap();
        let mut t = crate::init_tracker("recording.json", &json).unwrap();
        t.start().unwrap();
        t.break_before_line(7).unwrap();
        let r = t.resume().unwrap();
        assert!(matches!(r, PauseReason::Breakpoint { .. }));
    }

    #[test]
    fn replay_errors() {
        let rec = record_c();
        let mut t = ReplayTracker::new(rec);
        assert!(matches!(t.step(), Err(TrackerError::NotStarted)));
        t.start().unwrap();
        assert!(matches!(t.finish(), Err(TrackerError::Engine(_))));
        assert!(matches!(t.remove(99), Err(TrackerError::Engine(_))));
        assert!(matches!(
            t.break_before_line(9999),
            Err(TrackerError::Engine(_))
        ));
    }

    // ---- store-backed time travel ----------------------------------------

    #[test]
    fn seek_jumps_to_any_pause() {
        let rec = record_c();
        let n = rec.len();
        // Capture the expected state at every pause the slow way first.
        let expected: Vec<ProgramState> = rec.steps.iter().map(|s| s.state.clone()).collect();
        let mut t = ReplayTracker::new(rec);
        t.start().unwrap();
        // Jump around out of order; each landing must be byte-identical to
        // the recorded snapshot (modulo the pause reason, which seek sets).
        for &i in &[n - 1, 0, n / 2, 1, n / 3, n - 2] {
            t.seek(i as u64).unwrap();
            let got = t.get_state().unwrap();
            let mut want = expected[i].clone();
            want.reason = got.reason.clone();
            assert_eq!(got, want, "seek({i})");
        }
        // Seeking past the end lands on exited.
        assert!(matches!(t.seek(u64::MAX).unwrap(), PauseReason::Exited(_)));
        assert_eq!(t.get_exit_code(), Some(14));
        // Seek before start fails.
        let mut fresh = ReplayTracker::new(record_c());
        assert!(matches!(fresh.seek(0), Err(TrackerError::NotStarted)));
    }

    #[test]
    fn history_queries_answer_without_replay() {
        let rec = record_c();
        let mut t = ReplayTracker::new(rec);
        t.start().unwrap();
        // `s` accumulates square(1) + square(2) + square(3): its write log
        // must end at value 14 and be monotonic in pause order.
        let writes = t.writes_in("s", 0, t.recorded_pauses() - 1);
        assert!(!writes.is_empty());
        assert!(writes.windows(2).all(|w| w[0].pause < w[1].pause));
        assert_eq!(writes.last().unwrap().value, "14");
        let last = t.last_change("s", None).unwrap();
        assert_eq!(last.value, "14");
        // Qualified names work too.
        assert_eq!(t.last_change("main::s", None).unwrap().pause, last.pause);
        assert!(t.last_change("main::nosuch", None).is_none());
    }

    #[test]
    fn save_open_roundtrip_preserves_replay() {
        let rec = record_c();
        let dir = std::env::temp_dir().join(format!(
            "eztrace-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.trace");
        let t = ReplayTracker::new(rec.clone());
        let bytes = t.save(&path).unwrap();
        assert!(bytes > 0);
        assert_eq!(t.registry().snapshot().gauge("trace.bytes_on_disk"), bytes);

        let mut back = ReplayTracker::open(&path).unwrap();
        back.start().unwrap();
        back.track_function("square", None).unwrap();
        let mut calls = 0;
        loop {
            match back.resume().unwrap() {
                PauseReason::FunctionCall { .. } => calls += 1,
                PauseReason::Exited(_) => break,
                _ => {}
            }
        }
        assert_eq!(calls, 3);
        assert_eq!(back.get_exit_code(), Some(14));
        std::fs::remove_dir_all(&dir).ok();
        assert!(ReplayTracker::open(dir.join("missing.trace")).is_err());
    }

    #[test]
    fn shared_store_serves_concurrent_scrubbing_readers() {
        let rec = record_c();
        let n = rec.len();
        let store = Arc::new(rec.to_store(8));
        let mut handles = Vec::new();
        for r in 0..4u64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let mut t = ReplayTracker::from_store(store);
                t.start().unwrap();
                for k in 0..n as u64 {
                    let i = (k * 13 + r) % n as u64;
                    t.seek(i).unwrap();
                    let st = t.get_state().unwrap();
                    assert!(st.frame.location().line() > 0);
                }
                // Per-reader metrics exist.
                let snap = t.registry().snapshot();
                assert!(snap.counter("trace.keyframe_decodes") > 0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn resident_bytes_gauge_tracks_store_footprint() {
        let rec = record_c();
        let raw_json = rec.to_json().unwrap().len() as u64;
        let t = ReplayTracker::new(rec);
        let resident = t.registry().snapshot().gauge("replay.resident_bytes");
        assert!(resident > 0);
        assert!(
            resident < raw_json,
            "store-backed replay ({resident} B) should undercut the raw \
             snapshot JSON ({raw_json} B)"
        );
    }
}

#[cfg(test)]
mod reverse_tests {
    use super::*;
    use crate::{MiTracker, Tracker};

    fn recording() -> Recording {
        let src = "int bump(int v) {\nreturn v + 1;\n}\nint main() {\nint x = 0;\nx = bump(x);\nx = bump(x);\nreturn x;\n}";
        let mut t = MiTracker::load_c("rev.c", src).unwrap();
        let rec = Recording::capture(&mut t).unwrap();
        t.terminate();
        rec
    }

    #[test]
    fn step_back_reverses_step() {
        let mut t = ReplayTracker::new(recording());
        t.start().unwrap();
        let l0 = t.current_line().unwrap();
        t.step().unwrap();
        t.step().unwrap();
        let l2 = t.current_line().unwrap();
        t.step_back().unwrap();
        t.step_back().unwrap();
        assert_eq!(t.current_line().unwrap(), l0);
        // Forward again reaches the same place (time travel is coherent).
        t.step().unwrap();
        t.step().unwrap();
        assert_eq!(t.current_line().unwrap(), l2);
    }

    #[test]
    fn step_back_at_origin_reports_started() {
        let mut t = ReplayTracker::new(recording());
        t.start().unwrap();
        assert_eq!(t.step_back().unwrap(), PauseReason::Started);
        assert_eq!(t.pause_reason(), PauseReason::Started);
    }

    #[test]
    fn resume_back_finds_previous_breakpoint() {
        let mut t = ReplayTracker::new(recording());
        t.start().unwrap();
        t.break_before_func("bump", None).unwrap();
        // Forward over both calls.
        t.resume().unwrap();
        t.resume().unwrap();
        let line_second = t.get_state().unwrap().frame.location().line();
        t.step().unwrap();
        // Backwards: hits the second call again, then the first.
        let r = t.resume_back().unwrap();
        assert!(matches!(r, PauseReason::Breakpoint { .. }));
        assert_eq!(t.get_state().unwrap().frame.location().line(), line_second);
        let r = t.resume_back().unwrap();
        assert!(matches!(r, PauseReason::Breakpoint { .. }));
        let r = t.resume_back().unwrap();
        assert_eq!(r, PauseReason::Started);
    }

    #[test]
    fn reverse_watchpoint_sees_changes_backwards() {
        let mut t = ReplayTracker::new(recording());
        t.start().unwrap();
        t.watch("x").unwrap();
        // Run forward to the end, then backwards collecting watch hits.
        while t.get_exit_code().is_none() {
            t.step().unwrap();
        }
        let mut hits = 0;
        loop {
            match t.resume_back().unwrap() {
                PauseReason::Watchpoint { .. } => hits += 1,
                PauseReason::Started => break,
                _ => {}
            }
        }
        assert!(hits >= 2, "x changed at least twice, saw {hits}");
    }

    #[test]
    fn reverse_before_start_fails() {
        let mut t = ReplayTracker::new(recording());
        assert!(matches!(t.step_back(), Err(TrackerError::NotStarted)));
        assert!(matches!(t.resume_back(), Err(TrackerError::NotStarted)));
    }

    #[test]
    fn reverse_walks_the_exact_forward_sequence() {
        // Forward trace, then step_back all the way: positions must visit
        // the same states in exactly reversed order.
        let mut t = ReplayTracker::new(recording());
        t.start().unwrap();
        let mut forward = vec![t.get_state().unwrap()];
        while t.get_exit_code().is_none() {
            if t.step().unwrap().is_alive() {
                forward.push(t.get_state().unwrap());
            }
        }
        // Walk back from the exited position; `Started` means position 0
        // was already visited (step_back stays put there).
        let mut backward = Vec::new();
        loop {
            let r = t.step_back().unwrap();
            if r == PauseReason::Started {
                break;
            }
            backward.push(t.get_state().unwrap());
        }
        assert_eq!(backward.len(), forward.len());
        for (i, (f, b)) in forward.iter().rev().zip(backward.iter()).enumerate() {
            let mut f = f.clone();
            let mut b = b.clone();
            // Reasons differ (Step vs Started direction markers); the
            // frames, variables and locations must be identical.
            f.reason = PauseReason::Step;
            b.reason = PauseReason::Step;
            assert_eq!(f, b, "reverse position {i}");
        }
    }

    // ---- degenerate recordings (conformance satellite) -------------------

    fn empty_recording(exit_code: i64) -> Recording {
        Recording {
            file: "empty.c".into(),
            source: String::new(),
            steps: Vec::new(),
            exit_code,
        }
    }

    #[test]
    fn empty_recording_starts_straight_into_exited() {
        let mut t = ReplayTracker::new(empty_recording(7));
        assert_eq!(t.pause_reason(), PauseReason::NotStarted);
        let r = t.start().unwrap();
        assert_eq!(r, PauseReason::Exited(ExitStatus::Exited(7)));
        // Every control and inspection call keeps answering, no panics.
        assert!(matches!(t.step().unwrap(), PauseReason::Exited(_)));
        assert!(matches!(t.resume().unwrap(), PauseReason::Exited(_)));
        assert!(matches!(t.next().unwrap(), PauseReason::Exited(_)));
        assert_eq!(t.get_output().unwrap(), "");
        assert_eq!(t.get_exit_code().unwrap(), 7);
        let st = t.get_state().unwrap();
        assert!(matches!(st.reason, PauseReason::Exited(_)));
        assert_eq!(st.frame.name(), "<module>");
    }

    #[test]
    fn empty_recording_with_crash_code_reports_crashed() {
        let mut t = ReplayTracker::new(empty_recording(-1));
        let r = t.start().unwrap();
        assert_eq!(r, PauseReason::Exited(ExitStatus::Crashed));
    }

    #[test]
    fn single_step_recording_walks_start_to_exit() {
        let full = recording();
        let single = Recording {
            file: full.file.clone(),
            source: full.source.clone(),
            steps: vec![full.steps[0].clone()],
            exit_code: full.exit_code,
        };
        let mut t = ReplayTracker::new(single);
        assert_eq!(t.start().unwrap(), PauseReason::Started);
        let line = t.get_state().unwrap().frame.location().line();
        assert_eq!(t.current_line().unwrap(), line);
        // The one recorded step is also the last: stepping exits.
        assert!(matches!(t.step().unwrap(), PauseReason::Exited(_)));
        assert_eq!(t.get_exit_code().unwrap(), full.exit_code);
        // And it replays backwards too.
        assert_eq!(t.step_back().unwrap(), PauseReason::Step);
        assert_eq!(t.current_line().unwrap(), line);
    }

    #[test]
    fn single_step_recording_tolerates_control_points() {
        let full = recording();
        let single = Recording {
            file: full.file.clone(),
            source: full.source.clone(),
            steps: vec![full.steps[0].clone()],
            exit_code: full.exit_code,
        };
        let mut t = ReplayTracker::new(single);
        t.start().unwrap();
        // Control points on things the one-step recording never reaches
        // must not fire or wedge the replay.
        t.break_before_func("square", None).unwrap();
        t.track_function("square", None).unwrap();
        t.watch("s").unwrap();
        assert!(matches!(t.resume().unwrap(), PauseReason::Exited(_)));
    }
}
