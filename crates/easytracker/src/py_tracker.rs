//! The thread-based MiniPy tracker (paper Fig. 5).
//!
//! The inferior runs on a dedicated thread executing the MiniPy
//! interpreter; EasyTracker's control logic runs *inside the trace
//! function* on that thread, exactly as the paper's `sys.settrace`-based
//! tracker does. When a pause condition is met, the trace function builds
//! a full serializable snapshot, sends it to the tool thread, and blocks
//! until the tool issues the next control command — the tool thread's
//! control call blocks symmetrically, so control functions "return only
//! when the inferior is paused", the paper's core contract.
//!
//! Because watchpoints are checked before every line, resuming with
//! watchpoints set degrades to single-stepping — the slowdown the paper
//! reports for its Python tracker, reproduced by design and measured in
//! the benches. A corollary of per-line checking (shared with the paper's
//! `sys.settrace` tracker): a modification performed by the program's
//! *final* statement has no following line event and is therefore not
//! observed as a watchpoint hit; it is still visible in the terminal
//! snapshot.

use crate::{ControlPointId, Result, Tracker, TrackerError};
use crossbeam::channel::{bounded, Receiver, Sender};
use minipy::{Interp, TraceAction, TraceCtx, TraceEvent, Tracer};
use state::{ExitStatus, Frame, PauseReason, ProgramState, SourceLocation, Variable};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

#[derive(Debug, Clone, Copy)]
enum RunMode {
    Start,
    Resume,
    Step { line: u32, depth: usize },
    Next { line: u32, depth: usize },
    Finish { depth: usize },
}

impl RunMode {
    /// Stable short name used as the metric-name suffix
    /// (`tracker.control.<kind>`), matching the MI command vocabulary.
    fn kind(&self) -> &'static str {
        match self {
            RunMode::Start => "Start",
            RunMode::Resume => "Resume",
            RunMode::Step { .. } => "Step",
            RunMode::Next { .. } => "Next",
            RunMode::Finish { .. } => "Finish",
        }
    }
}

#[derive(Debug)]
enum Go {
    Mode(RunMode),
    Terminate,
}

#[derive(Debug)]
struct PauseMsg {
    reason: PauseReason,
    state: ProgramState,
    exit: Option<i64>,
}

#[derive(Debug, Clone)]
enum CpKind {
    LineBp(u32),
    FuncBp {
        function: String,
        maxdepth: Option<u32>,
    },
    Track {
        function: String,
        maxdepth: Option<u32>,
    },
    Watch {
        variable: String,
    },
}

#[derive(Debug)]
struct ControlPoint {
    id: u64,
    kind: CpKind,
    /// Watch bookkeeping: last rendered value (primed at creation when
    /// the variable already exists).
    last: Option<String>,
}

#[derive(Debug, Default)]
struct Shared {
    points: Vec<ControlPoint>,
    output: String,
}

/// The trace function: EasyTracker's brain on the inferior thread.
struct ControlTracer {
    shared: Arc<Mutex<Shared>>,
    go_rx: Receiver<Go>,
    pause_tx: Sender<PauseMsg>,
    mode: RunMode,
    finish_fired: bool,
    file: String,
    /// Live count of trace-hook invocations (`vm.minipy.trace_hooks`);
    /// a cheap atomic bump per event, readable from the tool thread.
    hook_counter: obs::Counter,
    /// In-process profiler cell, shared with the tool thread. `None`
    /// until [`PyTracker::set_profile`] arms it; the tool only locks it
    /// while the inferior is paused, so the per-event lock is
    /// uncontended.
    prof: Arc<Mutex<Option<obs::Profiler>>>,
}

impl ControlTracer {
    fn pause(&mut self, reason: PauseReason, ctx: &TraceCtx<'_>) -> TraceAction {
        let state = ProgramState::new(
            minipy::inspect::current_frame(ctx, &self.file),
            minipy::inspect::global_variables(ctx),
            reason.clone(),
        );
        if self
            .pause_tx
            .send(PauseMsg {
                reason,
                state,
                exit: None,
            })
            .is_err()
        {
            return TraceAction::Stop;
        }
        match self.go_rx.recv() {
            Ok(Go::Mode(mode)) => {
                self.mode = mode;
                self.finish_fired = false;
                TraceAction::Continue
            }
            Ok(Go::Terminate) | Err(_) => TraceAction::Stop,
        }
    }

    /// Evaluates watchpoints; returns the first trigger.
    fn check_watches(&mut self, ctx: &TraceCtx<'_>) -> Option<PauseReason> {
        let mut shared = self.shared.lock().expect("tracker poisoned");
        let mut hit = None;
        for cp in shared.points.iter_mut() {
            let CpKind::Watch { variable } = &cp.kind else {
                continue;
            };
            // Render through the abstract model so the tool-side priming
            // (which only has the snapshot) produces identical strings.
            let current = ctx
                .lookup(variable)
                .map(|obj| state::render_value(&ctx.heap.to_abstract(obj)));
            if current.is_none() {
                continue;
            }
            if cp.last != current && hit.is_none() {
                hit = Some(PauseReason::Watchpoint {
                    id: cp.id,
                    variable: variable.clone(),
                    old: cp.last.clone(),
                    new: current.clone().expect("checked above"),
                });
            }
            cp.last = current;
        }
        hit
    }

    fn decide(&mut self, event: &TraceEvent, ctx: &TraceCtx<'_>) -> Option<PauseReason> {
        match event {
            TraceEvent::Line { line } => {
                {
                    let shared = self.shared.lock().expect("tracker poisoned");
                    if let Some(cp) = shared
                        .points
                        .iter()
                        .find(|cp| matches!(cp.kind, CpKind::LineBp(l) if l == *line))
                    {
                        return Some(PauseReason::Breakpoint {
                            id: cp.id,
                            location: SourceLocation::new(self.file.clone(), *line),
                        });
                    }
                }
                if self.finish_fired {
                    return Some(PauseReason::Step);
                }
                let depth = ctx.frames.len();
                match self.mode {
                    RunMode::Start => Some(PauseReason::Started),
                    RunMode::Step {
                        line: from,
                        depth: d,
                    } => (*line != from || depth != d).then_some(PauseReason::Step),
                    RunMode::Next {
                        line: from,
                        depth: d,
                    } => (depth < d || (depth == d && *line != from)).then_some(PauseReason::Step),
                    RunMode::Resume | RunMode::Finish { .. } => None,
                }
            }
            TraceEvent::Call {
                function,
                line,
                depth,
            } => {
                let shared = self.shared.lock().expect("tracker poisoned");
                for cp in &shared.points {
                    match &cp.kind {
                        CpKind::FuncBp {
                            function: f,
                            maxdepth,
                        } if f == function && maxdepth.is_none_or(|m| *depth <= m) => {
                            return Some(PauseReason::Breakpoint {
                                id: cp.id,
                                location: SourceLocation::new(self.file.clone(), *line),
                            });
                        }
                        CpKind::Track {
                            function: f,
                            maxdepth,
                        } if f == function && maxdepth.is_none_or(|m| *depth <= m) => {
                            return Some(PauseReason::FunctionCall {
                                function: function.clone(),
                                depth: *depth,
                            });
                        }
                        _ => {}
                    }
                }
                None
            }
            TraceEvent::Return {
                function,
                depth,
                value,
                ..
            } => {
                let tracked = {
                    let shared = self.shared.lock().expect("tracker poisoned");
                    shared.points.iter().any(|cp| {
                        matches!(
                            &cp.kind,
                            CpKind::Track { function: f, maxdepth }
                                if f == function && maxdepth.is_none_or(|m| *depth <= m)
                        )
                    })
                };
                if tracked {
                    return Some(PauseReason::FunctionReturn {
                        function: function.clone(),
                        depth: *depth,
                        return_value: Some(ctx.heap.repr(*value)),
                    });
                }
                if let RunMode::Finish { depth: d } = self.mode {
                    // Return events use 0-based depth; the mode records the
                    // frame count, hence the +1.
                    if *depth as usize + 1 == d {
                        self.finish_fired = true;
                    }
                }
                None
            }
            TraceEvent::Output { .. } => None,
        }
    }
}

impl Tracer for ControlTracer {
    fn trace(&mut self, event: &TraceEvent, ctx: &TraceCtx<'_>) -> TraceAction {
        self.hook_counter.inc();
        if let Some(p) = self.prof.lock().expect("profiler poisoned").as_mut() {
            match event {
                // A line event is the MiniPy step unit.
                TraceEvent::Line { line } => {
                    p.tick();
                    p.line(*line);
                }
                TraceEvent::Call { function, .. } => {
                    let id = p.intern(function);
                    p.enter(id);
                }
                TraceEvent::Return { .. } => p.exit(),
                TraceEvent::Output { .. } => {}
            }
        }
        if let TraceEvent::Output { text } = event {
            self.shared
                .lock()
                .expect("tracker poisoned")
                .output
                .push_str(text);
            return TraceAction::Continue;
        }
        // One Line event can carry several triggers (a store on the
        // previous line trips a watchpoint *and* this line holds a
        // breakpoint). Deliver each as its own pause, like the MiniC
        // engine where watch checks ride separate store events; dropping
        // the rest of the event on the first pause would silently eat
        // breakpoints.
        if matches!(event, TraceEvent::Line { .. }) {
            if let Some(reason) = self.check_watches(ctx) {
                let act = self.pause(reason, ctx);
                if !matches!(act, TraceAction::Continue) {
                    return act;
                }
            }
        }
        match self.decide(event, ctx) {
            Some(reason) => self.pause(reason, ctx),
            None => TraceAction::Continue,
        }
    }
}

/// The tool-thread side of the MiniPy tracker.
#[derive(Debug)]
pub struct PyTracker {
    go_tx: Sender<Go>,
    pause_rx: Receiver<PauseMsg>,
    shared: Arc<Mutex<Shared>>,
    handle: Option<JoinHandle<()>>,
    started: bool,
    last_reason: PauseReason,
    last_state: Option<ProgramState>,
    exit: Option<i64>,
    next_id: u64,
    output_cursor: usize,
    file: String,
    source: String,
    breakable: Vec<u32>,
    obs: obs::Registry,
    prof: Arc<Mutex<Option<obs::Profiler>>>,
}

impl PyTracker {
    /// Parses MiniPy source and spawns the inferior thread (blocked until
    /// [`Tracker::start`]).
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for parse errors.
    pub fn load(file: &str, source: &str) -> Result<Self> {
        Self::load_with_registry(file, source, obs::Registry::new())
    }

    /// Like [`PyTracker::load`], with control-call latencies, inspection
    /// counters, and `vm.minipy.*` interpreter stats reported into
    /// `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for parse errors.
    pub fn load_with_registry(file: &str, source: &str, registry: obs::Registry) -> Result<Self> {
        let module =
            minipy::parser::parse(source).map_err(|e| TrackerError::Load(e.to_string()))?;
        let breakable = collect_lines(&module.body);
        let shared = Arc::new(Mutex::new(Shared::default()));
        let (go_tx, go_rx) = bounded::<Go>(1);
        let (pause_tx, pause_rx) = bounded::<PauseMsg>(1);
        let tracer_shared = Arc::clone(&shared);
        let file_name = file.to_owned();
        let inferior_reg = registry.clone();
        let prof = Arc::new(Mutex::new(None));
        let tracer_prof = Arc::clone(&prof);
        let handle = std::thread::Builder::new()
            .name("easytracker-py-inferior".into())
            // MiniPy frames cost deep Rust recursion; give the inferior a
            // roomy stack like CPython's main thread.
            .stack_size(64 * 1024 * 1024)
            .spawn(move || {
                // Block until the tool calls start() (first Go message).
                let first = match go_rx.recv() {
                    Ok(Go::Mode(m)) => m,
                    Ok(Go::Terminate) | Err(_) => return,
                };
                let mut tracer = ControlTracer {
                    shared: tracer_shared,
                    go_rx,
                    pause_tx: pause_tx.clone(),
                    mode: first,
                    finish_fired: false,
                    file: file_name.clone(),
                    hook_counter: inferior_reg.counter("vm.minipy.trace_hooks"),
                    prof: tracer_prof,
                };
                let mut interp = Interp::new(module);
                interp.set_max_depth(500);
                let run_outcome = interp.run(&mut tracer);
                inferior_reg.set_gauge("vm.minipy.steps", interp.steps());
                let (reason, exit) = match run_outcome {
                    Ok(outcome) => (
                        PauseReason::Exited(ExitStatus::Exited(outcome.exit_code)),
                        Some(outcome.exit_code),
                    ),
                    Err(minipy::Error::Stopped) => return,
                    Err(e) => {
                        tracer
                            .shared
                            .lock()
                            .expect("tracker poisoned")
                            .output
                            .push_str(&format!("{e}\n"));
                        (PauseReason::Exited(ExitStatus::Crashed), Some(-1))
                    }
                };
                // Final snapshot: the module frame (with its final
                // bindings) survives the run, so tools can render the
                // terminal state of the program.
                let ctx = TraceCtx {
                    heap: interp.heap(),
                    frames: interp.frames(),
                };
                let state = if ctx.frames.is_empty() {
                    ProgramState::new(
                        Frame::new("<module>", 0, SourceLocation::new(file_name, 0)),
                        Vec::new(),
                        reason.clone(),
                    )
                } else {
                    ProgramState::new(
                        minipy::inspect::current_frame(&ctx, &file_name),
                        minipy::inspect::global_variables(&ctx),
                        reason.clone(),
                    )
                };
                let _ = pause_tx.send(PauseMsg {
                    reason,
                    state,
                    exit,
                });
            })
            .map_err(|e| TrackerError::Load(format!("cannot spawn inferior thread: {e}")))?;
        Ok(PyTracker {
            go_tx,
            pause_rx,
            shared,
            handle: Some(handle),
            started: false,
            last_reason: PauseReason::NotStarted,
            last_state: None,
            exit: None,
            next_id: 1,
            output_cursor: 0,
            file: file.to_owned(),
            source: source.to_owned(),
            breakable,
            obs: registry,
            prof,
        })
    }

    /// The registry this tracker reports into.
    pub fn registry(&self) -> &obs::Registry {
        &self.obs
    }

    fn control(&mut self, mode: RunMode) -> Result<PauseReason> {
        if !self.started {
            return Err(TrackerError::NotStarted);
        }
        let mut span = self.obs.span(format!("tracker.control.{}", mode.kind()));
        span.category("tracker");
        if let Some(code) = self.exit {
            let status = if code == -1 {
                ExitStatus::Crashed
            } else {
                ExitStatus::Exited(code)
            };
            span.tag("pause_reason", PauseReason::Exited(status).tag());
            return Ok(PauseReason::Exited(status));
        }
        self.go_tx
            .send(Go::Mode(mode))
            .map_err(|_| TrackerError::Engine("inferior thread is gone".into()))?;
        let msg = self
            .pause_rx
            .recv()
            .map_err(|_| TrackerError::Engine("inferior thread is gone".into()))?;
        span.tag("pause_reason", msg.reason.tag());
        self.last_reason = msg.reason.clone();
        self.last_state = Some(msg.state);
        self.exit = msg.exit;
        Ok(msg.reason)
    }

    fn count_inspect(&self, kind: &str) {
        self.obs.inc(&format!("tracker.inspect.{kind}"));
    }

    fn position(&self) -> (u32, usize) {
        match &self.last_state {
            Some(st) => (st.frame.location().line(), st.stack_depth()),
            None => (0, 1),
        }
    }

    fn add_point(&mut self, kind: CpKind) -> ControlPointId {
        // Counter names mirror the MI command vocabulary so Py and Mi
        // tracker snapshots line up column for column.
        let name = match &kind {
            CpKind::LineBp(_) => "SetBreakLine",
            CpKind::FuncBp { .. } => "SetBreakFunc",
            CpKind::Track { .. } => "TrackFunction",
            CpKind::Watch { .. } => "Watch",
        };
        self.obs.inc(&format!("tracker.control_point.{name}"));
        let id = self.next_id;
        self.next_id += 1;
        self.shared
            .lock()
            .expect("tracker poisoned")
            .points
            .push(ControlPoint {
                id,
                kind,
                last: None,
            });
        id
    }
}

impl Tracker for PyTracker {
    fn start(&mut self) -> Result<PauseReason> {
        if self.started {
            return Err(TrackerError::Engine("inferior already started".into()));
        }
        self.started = true;
        self.control(RunMode::Start)
    }

    fn resume(&mut self) -> Result<PauseReason> {
        self.control(RunMode::Resume)
    }

    fn step(&mut self) -> Result<PauseReason> {
        let (line, depth) = self.position();
        self.control(RunMode::Step { line, depth })
    }

    fn next(&mut self) -> Result<PauseReason> {
        let (line, depth) = self.position();
        self.control(RunMode::Next { line, depth })
    }

    fn finish(&mut self) -> Result<PauseReason> {
        let (_, depth) = self.position();
        if depth <= 1 {
            return Err(TrackerError::Engine(
                "cannot finish the outermost frame".into(),
            ));
        }
        self.control(RunMode::Finish { depth })
    }

    fn break_before_line(&mut self, line: u32) -> Result<ControlPointId> {
        let Some(&actual) = self.breakable.iter().find(|&&l| l >= line) else {
            return Err(TrackerError::Engine(format!(
                "no code at or after line {line}"
            )));
        };
        Ok(self.add_point(CpKind::LineBp(actual)))
    }

    fn break_before_func(
        &mut self,
        function: &str,
        maxdepth: Option<u32>,
    ) -> Result<ControlPointId> {
        Ok(self.add_point(CpKind::FuncBp {
            function: function.to_owned(),
            maxdepth,
        }))
    }

    fn track_function(&mut self, function: &str, maxdepth: Option<u32>) -> Result<ControlPointId> {
        Ok(self.add_point(CpKind::Track {
            function: function.to_owned(),
            maxdepth,
        }))
    }

    fn watch(&mut self, variable: &str) -> Result<ControlPointId> {
        // Prime from the current snapshot so a pre-existing value does not
        // immediately "change"; a variable that does not exist yet triggers
        // on its first binding (a binding is a modification in Python).
        let initial = self.get_variable(variable).ok().flatten().map(|v| {
            // Bindings are REF wrappers around the abstract object value;
            // render the target, matching the tracer's rendering.
            match v.value().content() {
                state::Content::Ref(target) => state::render_value(target),
                _ => state::render_value(v.value()),
            }
        });
        let id = self.add_point(CpKind::Watch {
            variable: variable.to_owned(),
        });
        if let Some(init) = initial {
            let mut shared = self.shared.lock().expect("tracker poisoned");
            if let Some(cp) = shared.points.iter_mut().find(|cp| cp.id == id) {
                cp.last = Some(init);
            }
        }
        Ok(id)
    }

    fn remove(&mut self, id: ControlPointId) -> Result<()> {
        let mut shared = self.shared.lock().expect("tracker poisoned");
        let before = shared.points.len();
        shared.points.retain(|cp| cp.id != id);
        if shared.points.len() == before {
            return Err(TrackerError::Engine(format!("no control point {id}")));
        }
        Ok(())
    }

    fn terminate(&mut self) {
        let _ = self.go_tx.send(Go::Terminate);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    fn pause_reason(&self) -> PauseReason {
        self.last_reason.clone()
    }

    fn get_current_frame(&mut self) -> Result<Frame> {
        self.count_inspect("GetState");
        self.last_state
            .as_ref()
            .map(|st| st.frame.clone())
            .ok_or(TrackerError::NotStarted)
    }

    fn get_state(&mut self) -> Result<ProgramState> {
        self.count_inspect("GetState");
        self.last_state.clone().ok_or(TrackerError::NotStarted)
    }

    fn get_global_variables(&mut self) -> Result<Vec<Variable>> {
        self.count_inspect("GetGlobals");
        Ok(self
            .last_state
            .as_ref()
            .map(|st| st.globals.clone())
            .unwrap_or_default())
    }

    fn get_variable(&mut self, name: &str) -> Result<Option<Variable>> {
        self.count_inspect("GetVariable");
        let Some(st) = &self.last_state else {
            return Ok(None);
        };
        let (frame_filter, var) = match name.split_once("::") {
            Some((f, v)) => (Some(f), v),
            None => (None, name),
        };
        for frame in st.frame.chain() {
            if let Some(f) = frame_filter {
                if frame.name() != f {
                    continue;
                }
            }
            if let Some(v) = frame.variable(var) {
                return Ok(Some(v.clone()));
            }
            if frame_filter.is_none() {
                break;
            }
        }
        if frame_filter.is_none() {
            return Ok(st.globals.iter().find(|g| g.name() == var).cloned());
        }
        Ok(None)
    }

    fn get_exit_code(&mut self) -> Option<i64> {
        self.count_inspect("GetExitCode");
        self.exit
    }

    fn get_output(&mut self) -> Result<String> {
        self.count_inspect("GetOutput");
        let shared = self.shared.lock().expect("tracker poisoned");
        let all = &shared.output;
        let new = all[self.output_cursor.min(all.len())..].to_owned();
        self.output_cursor = all.len();
        Ok(new)
    }

    fn get_source(&mut self) -> Result<(String, String)> {
        self.count_inspect("GetSource");
        Ok((self.file.clone(), self.source.clone()))
    }

    fn breakable_lines(&mut self) -> Result<Vec<u32>> {
        self.count_inspect("GetBreakableLines");
        Ok(self.breakable.clone())
    }

    fn set_profile(&mut self, mode: obs::ProfileMode, period: u64) -> Result<()> {
        if self.started {
            return Err(TrackerError::Engine(
                "profiling must be armed before start".into(),
            ));
        }
        let mut slot = self.prof.lock().expect("profiler poisoned");
        if mode == obs::ProfileMode::Off {
            *slot = None;
        } else {
            let mut p = obs::Profiler::new(mode, period);
            // The module frame is live from the first statement but never
            // raises a Call event; seed it like the VMs seed `main`.
            let id = p.intern("<module>");
            p.enter(id);
            *slot = Some(p);
        }
        Ok(())
    }

    fn profile(&mut self) -> Result<obs::ProfileReport> {
        Ok(self
            .prof
            .lock()
            .expect("profiler poisoned")
            .as_ref()
            .map(obs::Profiler::report)
            .unwrap_or_default())
    }

    fn stats(&self) -> obs::Snapshot {
        self.obs.snapshot()
    }
}

impl Drop for PyTracker {
    fn drop(&mut self) {
        self.terminate();
    }
}

/// Collects every line holding a statement (breakpoint targets).
fn collect_lines(stmts: &[minipy::ast::Stmt]) -> Vec<u32> {
    fn walk(stmts: &[minipy::ast::Stmt], out: &mut Vec<u32>) {
        use minipy::ast::StmtKind::*;
        for s in stmts {
            out.push(s.line);
            match &s.kind {
                If { body, orelse, .. } => {
                    walk(body, out);
                    walk(orelse, out);
                }
                While { body, .. } | For { body, .. } | Def { body, .. } => walk(body, out),
                Class { methods, .. } => walk(methods, out),
                _ => {}
            }
        }
    }
    let mut lines = Vec::new();
    walk(stmts, &mut lines);
    lines.sort_unstable();
    lines.dedup();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracker;
    use state::{AbstractType, Content, Prim};

    const PY_PROG: &str =
        "def square(x):\n    return x * x\ns = 0\nfor i in range(1, 4):\n    s = s + square(i)\n";

    #[test]
    fn full_session() {
        let mut t = PyTracker::load("p.py", PY_PROG).unwrap();
        assert_eq!(t.start().unwrap(), PauseReason::Started);
        t.track_function("square", None).unwrap();
        let mut calls = 0;
        let mut returns = Vec::new();
        loop {
            match t.resume().unwrap() {
                PauseReason::FunctionCall { function, .. } => {
                    assert_eq!(function, "square");
                    calls += 1;
                    let frame = t.get_current_frame().unwrap();
                    assert_eq!(frame.name(), "square");
                    let x = frame.variable("x").unwrap();
                    assert_eq!(x.value().abstract_type(), AbstractType::Ref);
                }
                PauseReason::FunctionReturn { return_value, .. } => {
                    returns.push(return_value.unwrap());
                }
                PauseReason::Exited(ExitStatus::Exited(0)) => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(calls, 3);
        assert_eq!(returns, ["1", "4", "9"]);
        assert_eq!(t.get_exit_code(), Some(0));
        t.terminate();
    }

    #[test]
    fn stepping_and_state() {
        let mut t = PyTracker::load("p.py", "a = 1\nb = 2\nc = a + b\n").unwrap();
        t.start().unwrap();
        assert_eq!(t.current_line(), Some(1));
        t.step().unwrap();
        assert_eq!(t.current_line(), Some(2));
        let frame = t.get_current_frame().unwrap();
        // `a` is bound, `b` not yet.
        assert!(frame.variable("a").is_some());
        assert!(frame.variable("b").is_none());
        t.step().unwrap();
        t.step().unwrap();
        let frame = t.get_current_frame().unwrap();
        match frame.variable("c").unwrap().value().deref_fully().content() {
            Content::Primitive(Prim::Int(3)) => {}
            other => panic!("unexpected {other:?}"),
        }
        let r = t.step().unwrap();
        assert!(matches!(r, PauseReason::Exited(_)));
    }

    #[test]
    fn watchpoints_single_step_under_the_hood() {
        let mut t = PyTracker::load("p.py", "x = 0\nwhile x < 3:\n    x = x + 1\ny = x\n").unwrap();
        t.start().unwrap();
        t.watch("x").unwrap();
        let mut changes = Vec::new();
        loop {
            match t.resume().unwrap() {
                PauseReason::Watchpoint { old, new, .. } => changes.push((old, new)),
                PauseReason::Exited(_) => break,
                other => panic!("unexpected {other}"),
            }
        }
        // The first binding of `x` counts as a modification (Python
        // variables spring into existence), then each increment.
        assert_eq!(
            changes,
            vec![
                (None, "0".into()),
                (Some("0".into()), "1".into()),
                (Some("1".into()), "2".into()),
                (Some("2".into()), "3".into()),
            ]
        );
    }

    #[test]
    fn line_breakpoints() {
        let mut t = PyTracker::load("p.py", "a = 1\nb = 2\nc = 3\n").unwrap();
        let id = t.break_before_line(2).unwrap();
        t.start().unwrap();
        match t.resume().unwrap() {
            PauseReason::Breakpoint { id: hit, location } => {
                assert_eq!(hit, id);
                assert_eq!(location.line(), 2);
            }
            other => panic!("unexpected {other}"),
        }
        let frame = t.get_current_frame().unwrap();
        assert!(frame.variable("a").is_some());
        assert!(frame.variable("b").is_none());
    }

    #[test]
    fn next_and_finish() {
        let src = "def f(x):\n    y = x + 1\n    return y\na = f(1)\nb = f(2)\n";
        let mut t = PyTracker::load("p.py", src).unwrap();
        t.start().unwrap(); // at line 1 (def) — step to line 4
        t.step().unwrap();
        assert_eq!(t.current_line(), Some(4));
        t.next().unwrap(); // steps over f
        assert_eq!(t.current_line(), Some(5));
        assert_eq!(t.get_current_frame().unwrap().name(), "<module>");
        // step into f, then finish.
        t.step().unwrap();
        assert_eq!(t.get_current_frame().unwrap().name(), "f");
        t.finish().unwrap();
        assert_eq!(t.get_current_frame().unwrap().name(), "<module>");
    }

    #[test]
    fn output_collection() {
        let mut t = PyTracker::load("p.py", "print('a')\nprint('b')\n").unwrap();
        t.start().unwrap();
        t.step().unwrap();
        assert_eq!(t.get_output().unwrap(), "a\n");
        t.resume().unwrap();
        assert_eq!(t.get_output().unwrap(), "b\n");
        assert_eq!(t.get_output().unwrap(), "");
    }

    #[test]
    fn crash_reports_crashed_status() {
        let mut t = PyTracker::load("p.py", "x = 1\ny = x / 0\n").unwrap();
        t.start().unwrap();
        let r = t.resume().unwrap();
        assert_eq!(r, PauseReason::Exited(ExitStatus::Crashed));
        assert!(t.get_output().unwrap().contains("ZeroDivision"));
        assert_eq!(t.get_exit_code(), Some(-1));
    }

    #[test]
    fn qualified_variable_lookup() {
        let src = "g = 10\ndef f(x):\n    local = x * 2\n    return local\nf(5)\n";
        let mut t = PyTracker::load("p.py", src).unwrap();
        t.break_before_line(4).unwrap();
        t.start().unwrap();
        t.resume().unwrap();
        let local = t.get_variable("f::local").unwrap().unwrap();
        assert_eq!(state::render_value(local.value().deref_fully()), "10");
        let g = t.get_variable("g").unwrap().unwrap();
        assert_eq!(state::render_value(g.value().deref_fully()), "10");
        assert!(t.get_variable("nonexistent").unwrap().is_none());
    }

    #[test]
    fn terminate_mid_run_stops_inferior() {
        let mut t = PyTracker::load("p.py", "i = 0\nwhile True:\n    i = i + 1\n").unwrap();
        t.start().unwrap();
        t.step().unwrap();
        t.terminate(); // must not hang
    }

    #[test]
    fn control_before_start_fails() {
        let mut t = PyTracker::load("p.py", "a = 1\n").unwrap();
        assert!(matches!(t.resume(), Err(TrackerError::NotStarted)));
    }

    #[test]
    fn load_error() {
        assert!(matches!(
            PyTracker::load("p.py", "def ("),
            Err(TrackerError::Load(_))
        ));
    }
}
