//! The machine-interface tracker: the GDB tracker analogue (paper Fig. 4).
//!
//! The inferior's engine (MiniC VM or RISC-V simulator) runs on its own
//! thread behind a serialized command/response transport — the same
//! decoupling the paper gets from running `gdb --interpreter=mi` as a
//! subprocess. All state crossing the boundary is serialized and
//! deserialized, so this tracker pays the real marshalling cost the
//! benchmarks measure.
//!
//! # Supervision
//!
//! A real debugger backend can die or wedge at any moment; a tracker
//! that hangs or panics with it is useless for building tools. This
//! tracker therefore *supervises* its session:
//!
//! * every MI call runs under a deadline (via
//!   [`mi::SupervisedClient`]), with bounded retries for idempotent
//!   commands — no call blocks forever against a wedged boundary;
//! * sessions loaded from source keep a declarative **manifest**: the
//!   program spec plus a journal of every successful control command
//!   (with its observed [`PauseReason`]) and every armed/disarmed
//!   control point;
//! * when the engine is lost (child killed, thread wedged, pipe broken)
//!   the tracker respawns it from the spec, re-arms every control point,
//!   and deterministically fast-forwards the fresh engine through the
//!   journal, verifying that ids and pause reasons match the original
//!   run step by step;
//! * when re-establishment is impossible — the respawn budget runs out,
//!   or the replayed run diverges from the journal — the session
//!   *degrades*: it stays alive, keeps its last known state, and answers
//!   every further engine request with
//!   [`TrackerError::SessionDegraded`] instead of guessing.
//!
//! Recovery is observable: `mi.respawns`, `mi.retries`,
//! `mi.heartbeat_misses` counters and the `mi.supervisor.recovery`
//! latency histogram all land in the tracker's [`obs::Registry`].
//!
//! # Telemetry plane
//!
//! A process-deployed engine hosts its *own* registry; this tracker
//! bridges it:
//!
//! * every outgoing [`CommandFrame`](mi::protocol::CommandFrame) carries
//!   the tracker's current trace context, so engine-side spans nest
//!   under the tracker control span that caused them;
//! * [`MiTracker::drain_telemetry`] pulls the engine's counters, gauges,
//!   histograms, and trace events over `Command::Telemetry` (idempotent:
//!   cumulative stats plus an absolute event cursor), mirroring stats as
//!   `engine.*` gauges and accumulating events for
//!   [`MiTracker::write_merged_trace`];
//! * [`MiTracker::sync_clock`] estimates the engine↔tracker clock offset
//!   from `Ping` roundtrips so merged traces share one timeline;
//! * an always-on [`obs::FlightRecorder`] ring captures commands,
//!   responses, pauses, traps, retries, and respawns; on engine death or
//!   session degradation a structured [`obs::FlightDump`] post-mortem is
//!   written (to `EASYTRACKER_DUMP_DIR` or the system temp dir),
//!   including the engine's own last-gasp ring recovered from its
//!   captured stderr tail.

use crate::{ControlPointId, LowLevel, Result, Tracker, TrackerError};
use mi::protocol::{Command, Response};
use mi::supervise::jittered_backoff;
use mi::transport::PumpedTransport;
use mi::{CommandPort, HostHandle, MiError, SupervisePolicy, SupervisedClient};
use state::{Frame, PauseReason, ProgramState, Variable};
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A hook interposed between the supervisor and the raw engine port,
/// applied at the initial spawn *and at every respawn*. The conformance
/// suite uses this to inject chaos faults that survive recovery (the
/// closure captures shared state, so a schedule can fire once across the
/// whole supervised session).
pub type PortWrapper = Box<dyn FnMut(Box<dyn CommandPort>) -> Box<dyn CommandPort> + Send>;

/// Supervision knobs for an [`MiTracker`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Per-command roundtrip deadline (`None` = unbounded).
    pub deadline: Option<Duration>,
    /// Deadline for [`MiTracker::heartbeat`] probes.
    pub ping_deadline: Duration,
    /// Command-level retries for idempotent commands (see
    /// [`Command::is_idempotent`]).
    pub max_retries: u32,
    /// Total engine respawns allowed over the session's lifetime; when
    /// exhausted the session degrades instead of looping.
    pub max_respawns: u32,
    /// Backoff before the first retry/respawn; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter (fixed so test runs are reproducible).
    pub jitter_seed: u64,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            deadline: Some(Duration::from_secs(30)),
            ping_deadline: Duration::from_secs(1),
            max_retries: 2,
            max_respawns: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
            jitter_seed: 0x00e5_7a6e_5eed_0001,
        }
    }
}

impl Supervision {
    /// A configuration that changes nothing: no deadline, no retries, no
    /// respawns. What [`MiTracker::from_port`] uses, since an opaque port
    /// has no spec to respawn from.
    pub fn passthrough() -> Self {
        Supervision {
            deadline: None,
            max_retries: 0,
            max_respawns: 0,
            ..Supervision::default()
        }
    }

    fn policy(&self) -> SupervisePolicy {
        SupervisePolicy {
            deadline: self.deadline,
            ping_deadline: self.ping_deadline,
            max_retries: self.max_retries,
            backoff_base: self.backoff_base,
            backoff_cap: self.backoff_cap,
            jitter_seed: self.jitter_seed,
        }
    }
}

/// Whether the supervised session can still vouch for its answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionHealth {
    /// Everything the tracker reports reflects a live, journal-consistent
    /// engine (possibly a respawned one).
    Healthy,
    /// The engine was lost and could not be re-established; engine
    /// requests now fail with [`TrackerError::SessionDegraded`].
    Degraded {
        /// Why recovery gave up.
        reason: String,
    },
}

/// Inferior language of a [`ProgramSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lang {
    C,
    Asm,
}

/// Where the engine runs.
#[derive(Debug, Clone)]
enum Deploy {
    /// Engine thread in this process, channel transport.
    InProcess,
    /// `mi-server` child process over stdio pipes.
    Process { server_bin: PathBuf },
    /// One session inside a shared multi-session host (`mi-server
    /// --host`): many trackers multiplex over one engine process.
    Host { host: HostHandle },
}

/// The declarative half of the session manifest: everything needed to
/// build an equivalent fresh engine. Cheap to clone; the journal (the
/// imperative half) lives on the tracker.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    file: String,
    source: String,
    lang: Lang,
    deploy: Deploy,
    /// MiniC optimization level (0 = off). Part of the manifest so a
    /// respawned engine is rebuilt at the same level; the optimizer is
    /// observation-preserving, so journal replay still converges.
    opt: u8,
}

impl ProgramSpec {
    /// A MiniC program, engine on an in-process thread.
    pub fn c(file: &str, source: &str) -> Self {
        ProgramSpec {
            file: file.to_owned(),
            source: source.to_owned(),
            lang: Lang::C,
            deploy: Deploy::InProcess,
            opt: 0,
        }
    }

    /// A RISC-V assembly program, engine on an in-process thread.
    pub fn asm(file: &str, source: &str) -> Self {
        ProgramSpec {
            file: file.to_owned(),
            source: source.to_owned(),
            lang: Lang::Asm,
            deploy: Deploy::InProcess,
            opt: 0,
        }
    }

    /// Runs the MiniC program through the observation-preserving
    /// bytecode optimizer at `level` before execution (0 = off, the
    /// default). Every debugging observable — pause sequence, variable
    /// snapshots, output, sanitizer traps — is identical at every level;
    /// only step counts shrink. Ignored for assembly programs.
    pub fn opt_level(mut self, level: u8) -> Self {
        self.opt = level;
        self
    }

    /// Moves the engine into an `mi-server` child process at `server_bin`
    /// (the paper's `gdb --interpreter=mi` deployment shape).
    pub fn via_server(mut self, server_bin: &Path) -> Self {
        self.deploy = Deploy::Process {
            server_bin: server_bin.to_owned(),
        };
        self
    }

    /// Moves the engine into a session of the shared multi-session
    /// `host`: the tracker opens (and on recovery re-opens) one session
    /// inside the host child instead of owning a dedicated process. The
    /// handle is cheap to clone, so any number of specs can share one
    /// host.
    pub fn via_host(mut self, host: &HostHandle) -> Self {
        self.deploy = Deploy::Host { host: host.clone() };
        self
    }
}

/// One replayable step of the session journal.
#[derive(Debug, Clone)]
enum JournalEntry {
    /// A control command and the pause it produced.
    Control { cmd: Command, reason: PauseReason },
    /// A control point armed, and the id the engine assigned.
    Arm { cmd: Command, id: ControlPointId },
    /// A control point removed.
    Disarm { id: ControlPointId },
    /// A configuration command acknowledged with `Ok` (sanitizer mode).
    /// Replayed in order so a respawned engine runs in the same mode —
    /// sanitized runs pause at traps, and a fresh engine that skipped
    /// the sanitizer would diverge at the first one.
    Config { cmd: Command },
}

/// How the engine behind the port is owned (for teardown and liveness
/// classification).
enum EngineKind {
    /// In-process engine thread (what `spawn_minic`/`spawn_asm` build).
    Thread {
        handle: Option<std::thread::JoinHandle<()>>,
    },
    /// `mi-server` child process.
    Child {
        child: std::process::Child,
        /// Rolling tail of the child's stderr, drained by a thread.
        stderr: Arc<Mutex<String>>,
        /// Temp dir holding the shipped source; removed on teardown.
        scratch: Option<PathBuf>,
    },
    /// One session inside a shared host child. Teardown closes the
    /// session (never the host — other trackers may be using it);
    /// liveness classification consults the host process.
    HostSession { host: HostHandle, session: u64 },
    /// An opaque port from [`MiTracker::from_port`]; nothing to tear
    /// down or respawn.
    External,
}

/// A live connection: supervised port plus engine ownership.
struct Backend {
    port: SupervisedClient<Box<dyn CommandPort>>,
    engine: EngineKind,
}

/// Replay verdicts recovery has to tell apart: a lost engine is worth
/// another respawn, a diverging one is not (deterministic engines would
/// diverge again).
enum ReplayOutcome {
    Diverged(String),
    Lost,
}

/// Tracker for MiniC and RISC-V inferiors behind the MI boundary.
pub struct MiTracker {
    backend: Option<Backend>,
    spec: Option<ProgramSpec>,
    wrapper: Option<PortWrapper>,
    cfg: Supervision,
    journal: Vec<JournalEntry>,
    /// Output already handed to the user via `get_output`.
    drained: String,
    /// Output recovered during replay that the user has not drained yet.
    pending_output: String,
    health: SessionHealth,
    respawns_used: u32,
    rng: u64,
    last_reason: PauseReason,
    started: bool,
    obs: obs::Registry,
    /// Always-on ring of the session's last moments (see module docs).
    flight: obs::FlightRecorder,
    /// Engine↔tracker clock offset estimator, fed by `Ping` roundtrips.
    clock: obs::ClockSync,
    /// Engine-side trace events accumulated across telemetry drains.
    engine_events: Vec<obs::TraceEvent>,
    /// Export-ring cursor for the next telemetry drain; reset to zero
    /// when a respawned engine starts a fresh event stream.
    telemetry_since: u64,
    /// Unit cursor of the last profile drain; reset to zero when a
    /// respawned engine restarts the profile.
    profile_since: u64,
    /// Where post-mortem dumps go; `None` = `EASYTRACKER_DUMP_DIR` or
    /// the system temp dir.
    dump_dir: Option<PathBuf>,
    last_dump: Option<PathBuf>,
}

impl std::fmt::Debug for MiTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiTracker")
            .field("live", &self.backend.is_some())
            .field("health", &self.health)
            .field("journal_len", &self.journal.len())
            .field("respawns_used", &self.respawns_used)
            .finish()
    }
}

impl MiTracker {
    /// Compiles MiniC source and attaches an engine to it.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for compile errors.
    pub fn load_c(file: &str, source: &str) -> Result<Self> {
        Self::load_c_with_registry(file, source, obs::Registry::new())
    }

    /// Like [`MiTracker::load_c`], with every layer (tracker control
    /// calls, MI client/server, VM engine) reporting into `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for compile errors.
    pub fn load_c_with_registry(file: &str, source: &str, registry: obs::Registry) -> Result<Self> {
        Self::load_spec(
            ProgramSpec::c(file, source),
            registry,
            Supervision::default(),
            None,
        )
    }

    /// Assembles RISC-V source and attaches an engine to it.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for assembly errors.
    pub fn load_asm(file: &str, source: &str) -> Result<Self> {
        Self::load_asm_with_registry(file, source, obs::Registry::new())
    }

    /// Like [`MiTracker::load_asm`], reporting into `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for assembly errors.
    pub fn load_asm_with_registry(
        file: &str,
        source: &str,
        registry: obs::Registry,
    ) -> Result<Self> {
        Self::load_spec(
            ProgramSpec::asm(file, source),
            registry,
            Supervision::default(),
            None,
        )
    }

    /// The fully general supervised constructor: builds (and on failure
    /// rebuilds) the engine from `spec`, supervised per `cfg`, with
    /// `wrapper` interposed between supervisor and engine port at every
    /// (re)spawn.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] when the program does not
    /// compile/assemble or the server process cannot be spawned.
    pub fn load_spec(
        spec: ProgramSpec,
        registry: obs::Registry,
        cfg: Supervision,
        mut wrapper: Option<PortWrapper>,
    ) -> Result<Self> {
        let flight = obs::FlightRecorder::new(256);
        let mut backend = Self::build_backend(&spec, &registry, &cfg, wrapper.as_mut())?;
        backend.port.set_flight_recorder(flight.clone());
        Ok(MiTracker {
            backend: Some(backend),
            spec: Some(spec),
            wrapper,
            cfg,
            journal: Vec::new(),
            drained: String::new(),
            pending_output: String::new(),
            health: SessionHealth::Healthy,
            respawns_used: 0,
            rng: cfg.jitter_seed | 1,
            last_reason: PauseReason::NotStarted,
            started: false,
            obs: registry,
            flight,
            clock: obs::ClockSync::new(),
            engine_events: Vec::new(),
            telemetry_since: 0,
            profile_since: 0,
            dump_dir: None,
            last_dump: None,
        })
    }

    /// Attaches the tracker to an already-connected [`CommandPort`] —
    /// any client over any transport. The conformance suite uses this to
    /// interpose a fault-injection proxy between tracker and engine.
    ///
    /// Opaque ports carry no program spec, so there is nothing to
    /// respawn from: supervision is passthrough (no deadline, no retry)
    /// and every transport fault surfaces directly, exactly as an
    /// unsupervised session would report it.
    pub fn from_port(port: Box<dyn CommandPort>) -> Self {
        Self::from_port_with_registry(port, obs::Registry::new())
    }

    /// Like [`MiTracker::from_port`], reporting into `registry`.
    pub fn from_port_with_registry(port: Box<dyn CommandPort>, registry: obs::Registry) -> Self {
        let cfg = Supervision::passthrough();
        let flight = obs::FlightRecorder::new(256);
        let mut port = SupervisedClient::with_registry(port, cfg.policy(), registry.clone());
        port.set_flight_recorder(flight.clone());
        MiTracker {
            backend: Some(Backend {
                port,
                engine: EngineKind::External,
            }),
            spec: None,
            wrapper: None,
            cfg,
            journal: Vec::new(),
            drained: String::new(),
            pending_output: String::new(),
            health: SessionHealth::Healthy,
            respawns_used: 0,
            rng: cfg.jitter_seed | 1,
            last_reason: PauseReason::NotStarted,
            started: false,
            obs: registry,
            flight,
            clock: obs::ClockSync::new(),
            engine_events: Vec::new(),
            telemetry_since: 0,
            profile_since: 0,
            dump_dir: None,
            last_dump: None,
        }
    }

    /// Spawns `mi-server` (at `server_bin`) as a real child process for a
    /// MiniC program and connects over its stdio pipes — the paper's
    /// `gdb --interpreter=mi` deployment shape.
    ///
    /// The source is shipped via a temporary file; `file` is passed as
    /// the logical name so reported source locations match an in-process
    /// run byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] if the scratch file cannot be
    /// written or the server process cannot be spawned.
    pub fn load_c_process(server_bin: &Path, file: &str, source: &str) -> Result<Self> {
        Self::load_spec(
            ProgramSpec::c(file, source).via_server(server_bin),
            obs::Registry::new(),
            Supervision::default(),
            None,
        )
    }

    /// Like [`MiTracker::load_c_process`], for RISC-V assembly.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] on scratch-file or spawn failure.
    pub fn load_asm_process(server_bin: &Path, file: &str, source: &str) -> Result<Self> {
        Self::load_spec(
            ProgramSpec::asm(file, source).via_server(server_bin),
            obs::Registry::new(),
            Supervision::default(),
            None,
        )
    }

    /// Opens a MiniC session inside a shared multi-session host: the
    /// tracker shares one `mi-server --host` child with every other
    /// tracker holding a clone of `host`, instead of owning a dedicated
    /// process. All supervision semantics carry over — a dead session is
    /// re-opened inside the host and replayed from the journal; a dead
    /// host child is respawned and the session re-established in it.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] if the program does not compile or
    /// the host cannot be (re)spawned.
    pub fn load_c_hosted(host: &HostHandle, file: &str, source: &str) -> Result<Self> {
        Self::load_spec(
            ProgramSpec::c(file, source).via_host(host),
            obs::Registry::new(),
            Supervision::default(),
            None,
        )
    }

    /// Like [`MiTracker::load_c_hosted`], for RISC-V assembly.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] on assembly or host-spawn failure.
    pub fn load_asm_hosted(host: &HostHandle, file: &str, source: &str) -> Result<Self> {
        Self::load_spec(
            ProgramSpec::asm(file, source).via_host(host),
            obs::Registry::new(),
            Supervision::default(),
            None,
        )
    }

    fn build_backend(
        spec: &ProgramSpec,
        registry: &obs::Registry,
        cfg: &Supervision,
        wrapper: Option<&mut PortWrapper>,
    ) -> Result<Backend> {
        let (base, engine): (Box<dyn CommandPort>, EngineKind) = match &spec.deploy {
            Deploy::InProcess => {
                let session = match spec.lang {
                    Lang::C => {
                        let program = minic::compile(&spec.file, &spec.source)
                            .map_err(|e| TrackerError::Load(e.to_string()))?;
                        mi::spawn_minic_opt_with_registry(&program, spec.opt, registry.clone())
                            .map_err(TrackerError::Load)?
                    }
                    Lang::Asm => {
                        let program = miniasm::asm::assemble(&spec.file, &spec.source)
                            .map_err(|e| TrackerError::Load(e.to_string()))?;
                        mi::spawn_asm_with_registry(&program, registry.clone())
                    }
                };
                let (client, handle) = session.into_parts();
                (Box::new(client), EngineKind::Thread { handle })
            }
            Deploy::Process { server_bin } => Self::spawn_server(server_bin, spec, registry)?,
            Deploy::Host { host } => {
                // `open_session` respawns a dead host child once before
                // retrying, so a host crash heals here: every tracker
                // recovering through build_backend re-establishes its
                // own session inside the respawned process.
                let mut handle = host
                    .open_session_opt(&spec.file, &spec.source, spec.opt, cfg.deadline)
                    .map_err(|e| TrackerError::Load(e.to_string()))?;
                handle.set_registry(registry.clone());
                let session = handle.session_id();
                (
                    Box::new(handle),
                    EngineKind::HostSession {
                        host: host.clone(),
                        session,
                    },
                )
            }
        };
        let port = match wrapper {
            Some(w) => w(base),
            None => base,
        };
        let port = SupervisedClient::with_registry(port, cfg.policy(), registry.clone());
        Ok(Backend { port, engine })
    }

    fn spawn_server(
        server_bin: &Path,
        spec: &ProgramSpec,
        registry: &obs::Registry,
    ) -> Result<(Box<dyn CommandPort>, EngineKind)> {
        use std::io::Write as _;
        use std::process::{Command as Proc, Stdio};

        let load = |e: &dyn std::fmt::Display| TrackerError::Load(e.to_string());
        // A private scratch dir per spawn: pid + a process-wide counter
        // keeps concurrent trackers (and concurrent test binaries) apart.
        static SCRATCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SCRATCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("easytracker-mi-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| load(&e))?;
        let scratch_name = match spec.lang {
            Lang::C => "prog.c",
            Lang::Asm => "prog.s",
        };
        let path = dir.join(scratch_name);
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(spec.source.as_bytes()))
            .map_err(|e| load(&e))?;

        let mut proc = Proc::new(server_bin);
        proc.arg(&path).arg(&spec.file);
        if spec.opt > 0 {
            proc.arg("--opt").arg(spec.opt.to_string());
        }
        let mut child = proc
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| {
                let _ = std::fs::remove_dir_all(&dir);
                load(&e)
            })?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let stderr = tail_stderr(child.stderr.take().expect("piped stderr"));
        // A pumped transport so receives can honor deadlines: the reader
        // thread blocks on the pipe, the tracker blocks on a channel.
        let transport = PumpedTransport::spawn(stdout, stdin);
        let port: Box<dyn CommandPort> =
            Box::new(mi::Client::with_registry(transport, registry.clone()));
        Ok((
            port,
            EngineKind::Child {
                child,
                stderr,
                scratch: Some(dir),
            },
        ))
    }

    /// The registry this tracker reports into.
    pub fn registry(&self) -> &obs::Registry {
        &self.obs
    }

    /// The active supervision configuration.
    pub fn supervision(&self) -> Supervision {
        self.cfg
    }

    /// Replaces the supervision configuration (deadlines, retry and
    /// respawn budgets) for all subsequent calls.
    pub fn set_supervision(&mut self, cfg: Supervision) {
        self.cfg = cfg;
        self.rng = cfg.jitter_seed | 1;
        if let Some(b) = &mut self.backend {
            b.port.set_policy(cfg.policy());
        }
    }

    /// Whether the session can still vouch for its answers.
    pub fn health(&self) -> &SessionHealth {
        &self.health
    }

    /// Engine respawns performed so far.
    pub fn respawns(&self) -> u32 {
        self.respawns_used
    }

    /// OS pid of the `mi-server` child, for process-deployed sessions.
    /// Fault-injection tests use this to kill the engine out from under
    /// the tracker.
    pub fn engine_pid(&self) -> Option<u32> {
        match &self.backend {
            Some(Backend {
                engine: EngineKind::Child { child, .. },
                ..
            }) => Some(child.id()),
            Some(Backend {
                engine: EngineKind::HostSession { host, .. },
                ..
            }) => host.host_pid(),
            _ => None,
        }
    }

    /// The host-assigned session id, for trackers deployed into a shared
    /// multi-session host. Chaos tests use this to kill one session out
    /// from under its tracker without touching the host's other tenants.
    pub fn host_session_id(&self) -> Option<u64> {
        match &self.backend {
            Some(Backend {
                engine: EngineKind::HostSession { session, .. },
                ..
            }) => Some(*session),
            _ => None,
        }
    }

    /// One bounded liveness probe of the MI boundary (`Ping`/`Pong`,
    /// answered by the serve loop without touching the engine). A miss
    /// bumps the `mi.heartbeat_misses` counter.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Protocol`] describing the miss; also fails on
    /// degraded or terminated sessions.
    pub fn heartbeat(&mut self) -> Result<()> {
        if let SessionHealth::Degraded { reason } = &self.health {
            return Err(TrackerError::SessionDegraded(reason.clone()));
        }
        let backend = self
            .backend
            .as_mut()
            .ok_or_else(|| TrackerError::Engine("tracker already terminated".into()))?;
        backend.port.ping().map_err(Into::into)
    }

    /// Sets hard per-session resource budgets (`None` leaves a resource
    /// unlimited): VM steps and live heap bytes are enforced in-engine,
    /// wall-clock and command-queue depth by the session host. Exceeding
    /// any of them surfaces as [`TrackerError::ResourceExhausted`] and
    /// ends the session. Journaled as configuration, so recovery
    /// re-applies the budgets before replaying execution.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Protocol`] on an unexpected acknowledgement;
    /// engine/session errors as usual.
    pub fn set_limits(
        &mut self,
        max_steps: Option<u64>,
        max_heap_bytes: Option<u64>,
        max_wall_ms: Option<u64>,
        max_queue_depth: Option<u64>,
    ) -> Result<()> {
        let cmd = Command::SetLimits {
            max_steps,
            max_heap_bytes,
            max_wall_ms,
            max_queue_depth,
        };
        match self.call(cmd.clone())? {
            Response::Ok => {
                if self.spec.is_some() {
                    self.journal.push(JournalEntry::Config { cmd });
                }
                Ok(())
            }
            other => Err(TrackerError::Protocol(format!(
                "expected acknowledgement, got {other:?}"
            ))),
        }
    }

    /// Arms engine-side trace recording with the given keyframe cadence.
    /// Must precede [`Tracker::start`]. Journaled as configuration: a
    /// respawned engine re-arms before the journal replays, so the
    /// rebuilt recording covers the same pauses.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Engine`] when already started; protocol errors as
    /// usual.
    pub fn record(&mut self, keyframe_every: u32) -> Result<()> {
        let cmd = Command::Record { keyframe_every };
        match self.call(cmd.clone())? {
            Response::Ok => {
                if self.spec.is_some() {
                    self.journal.push(JournalEntry::Config { cmd });
                }
                Ok(())
            }
            other => Err(TrackerError::Protocol(format!(
                "expected acknowledgement, got {other:?}"
            ))),
        }
    }

    /// Jumps the engine's inspection cursor to recorded pause `pause` —
    /// O(log n) through the store's keyframe index. Subsequent state
    /// inspections answer from the recording; any control call snaps
    /// back to the live position. Returns the recorded pause reason.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Engine`] when nothing is recorded or the pause is
    /// out of range.
    pub fn seek(&mut self, pause: u64) -> Result<PauseReason> {
        match self.call(Command::Seek { pause })? {
            Response::Paused(reason) => Ok(reason),
            other => Err(TrackerError::Protocol(format!(
                "expected pause report, got {other:?}"
            ))),
        }
    }

    /// All recorded writes to `variable` in `[from, to]` (defaults: the
    /// whole recording), answered from the store's write index without
    /// replaying.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Engine`] when nothing is recorded.
    pub fn query_history(
        &mut self,
        variable: &str,
        from: Option<u64>,
        to: Option<u64>,
    ) -> Result<Vec<trace::HistoryHit>> {
        match self.inspect(Command::QueryHistory {
            variable: variable.into(),
            from,
            to,
            last_only: false,
        })? {
            Response::History { hits } => Ok(hits),
            other => Err(TrackerError::Protocol(format!(
                "expected history, got {other:?}"
            ))),
        }
    }

    /// The most recent recorded write to `variable` at or before
    /// `before` (default: end of recording), if any.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Engine`] when nothing is recorded.
    pub fn last_change(
        &mut self,
        variable: &str,
        before: Option<u64>,
    ) -> Result<Option<trace::HistoryHit>> {
        match self.inspect(Command::QueryHistory {
            variable: variable.into(),
            from: None,
            to: before,
            last_only: true,
        })? {
            Response::History { hits } => Ok(hits.into_iter().next()),
            other => Err(TrackerError::Protocol(format!(
                "expected history, got {other:?}"
            ))),
        }
    }

    /// Recording statistics: `(pauses, keyframes, serialized_bytes)`.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Engine`] when nothing is recorded.
    pub fn trace_stats(&mut self) -> Result<(u64, u64, u64)> {
        match self.inspect(Command::TraceStats)? {
            Response::TraceStats {
                pauses,
                keyframes,
                bytes,
            } => Ok((pauses, keyframes, bytes)),
            other => Err(TrackerError::Protocol(format!(
                "expected trace stats, got {other:?}"
            ))),
        }
    }

    /// Publishes the session's recording on the host's trace shelf under
    /// `name`, where [`mi::HostHandle::open_replay`] sessions can scrub
    /// it. Only meaningful for hosted sessions.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Engine`] when there is no shelf (not hosted) or
    /// no recording.
    pub fn publish_trace(&mut self, name: &str) -> Result<()> {
        match self.call(Command::PublishTrace { name: name.into() })? {
            Response::Ok => Ok(()),
            other => Err(TrackerError::Protocol(format!(
                "expected acknowledgement, got {other:?}"
            ))),
        }
    }

    fn call(&mut self, command: Command) -> Result<Response> {
        if let SessionHealth::Degraded { reason } = &self.health {
            return Err(TrackerError::SessionDegraded(reason.clone()));
        }
        self.flight.record("cmd", command.kind());
        loop {
            let backend = self
                .backend
                .as_mut()
                .ok_or_else(|| TrackerError::Engine("tracker already terminated".into()))?;
            match backend.port.call(command.clone()) {
                Ok(Response::Error { message }) => {
                    self.flight.record("resp", format!("Error: {message}"));
                    return Err(TrackerError::Engine(message));
                }
                Ok(Response::ResourceExhausted { which, used, limit }) => {
                    // A hard budget tripped. Execution is deterministic,
                    // so recovery-by-replay would burn the same budget
                    // again: degrade loudly instead, with the budget
                    // state in the flight dump for the post-mortem.
                    self.obs.inc("mi.budget_exhausted");
                    self.flight
                        .record("budget", format!("{which} used {used} of {limit}"));
                    let _ = self.degrade(
                        format!("resource budget exhausted: {which} {used}/{limit}"),
                        None,
                    );
                    return Err(TrackerError::ResourceExhausted {
                        which: which.name().into(),
                        used,
                        limit,
                    });
                }
                Ok(resp @ (Response::Overloaded { .. } | Response::QueueFull { .. })) => {
                    // The supervised port already retried with backoff;
                    // a rejection surviving that is worth reporting, but
                    // nothing executed — the session is still healthy
                    // and the caller may simply try again later.
                    self.flight.record("resp", resp.summary());
                    return Err(TrackerError::Overloaded(resp.summary()));
                }
                Ok(resp) => {
                    self.flight.record("resp", resp.summary());
                    return Ok(resp);
                }
                Err(e) => {
                    let e = classify_failure(e, &mut backend.engine);
                    self.flight
                        .record("fault", format!("{} failed: {e}", command.kind()));
                    let recoverable = self.spec.is_some()
                        && matches!(
                            e,
                            MiError::Timeout | MiError::Disconnected | MiError::EngineDied { .. }
                        );
                    if !recoverable {
                        if let MiError::EngineDied { stderr, .. } = &e {
                            let tail = stderr.clone();
                            self.dump_flight_with(&e.to_string(), Some(tail));
                        }
                        return Err(e.into());
                    }
                    // Respawn, replay the journal, then re-issue the
                    // failed command against the re-established state.
                    // The loop is bounded: every pass through recover()
                    // consumes respawn budget, which never resets.
                    self.recover(&e)?;
                }
            }
        }
    }

    /// Re-establishes a live, journal-consistent engine after `trigger`,
    /// or degrades the session.
    fn recover(&mut self, trigger: &MiError) -> Result<()> {
        let spec = self.spec.clone().expect("recover requires a program spec");
        // The dead engine's stderr tail (with its last-gasp flight ring,
        // if any) must be captured before teardown discards the child.
        let dead_stderr = match trigger {
            MiError::EngineDied { stderr, .. } => Some(stderr.clone()),
            _ => self.engine_stderr_tail(),
        };
        // A timeout may be a wedged boundary or merely a slow engine:
        // probe once so the miss is visible in metrics before teardown.
        if matches!(trigger, MiError::Timeout) {
            if let Some(b) = &mut self.backend {
                let _ = b.port.ping();
            }
        }
        let started_at = Instant::now();
        loop {
            if self.respawns_used >= self.cfg.max_respawns {
                return Err(self.degrade(
                    format!(
                        "engine lost ({trigger}) and respawn budget ({}) exhausted",
                        self.cfg.max_respawns
                    ),
                    dead_stderr.clone(),
                ));
            }
            let attempt = self.respawns_used;
            self.respawns_used += 1;
            self.obs.inc("mi.respawns");
            self.flight.record(
                "respawn",
                format!("attempt {} after {trigger}", attempt + 1),
            );
            self.teardown_backend();
            let sleep = jittered_backoff(
                self.cfg.backoff_base,
                self.cfg.backoff_cap,
                attempt,
                &mut self.rng,
            );
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
            match Self::build_backend(&spec, &self.obs, &self.cfg, self.wrapper.as_mut()) {
                Ok(mut b) => {
                    b.port.set_flight_recorder(self.flight.clone());
                    self.backend = Some(b);
                }
                // The program compiled when the session was loaded, so a
                // rebuild failure here is spawn-level and possibly
                // transient: spend another attempt on it.
                Err(_) => continue,
            }
            match self.replay_journal() {
                Ok(()) => {
                    // The fresh engine starts a fresh export ring and
                    // fresh cumulative stats; rewinding the drain cursor
                    // keeps `Command::Telemetry` journal-safe (mirrored
                    // stats use set semantics, so nothing double-counts).
                    self.telemetry_since = 0;
                    // Same for the profile: the replayed engine rebuilt
                    // it from unit zero.
                    self.profile_since = 0;
                    self.obs
                        .record_duration("mi.supervisor.recovery", started_at.elapsed());
                    // The session survived, but an engine still died:
                    // leave a post-mortem of the death behind.
                    self.dump_flight_with(&format!("recovered: {trigger}"), dead_stderr.clone());
                    return Ok(());
                }
                Err(ReplayOutcome::Diverged(msg)) => {
                    // Deterministic engines would diverge identically on
                    // the next attempt; respawning again cannot help.
                    return Err(self.degrade(
                        format!("re-established engine diverged from the session journal: {msg}"),
                        dead_stderr.clone(),
                    ));
                }
                Err(ReplayOutcome::Lost) => continue,
            }
        }
    }

    /// Fast-forwards a freshly spawned engine through the journal,
    /// verifying every assigned id and pause reason, then reconciles the
    /// output stream against what the user has already drained.
    fn replay_journal(&mut self) -> std::result::Result<(), ReplayOutcome> {
        let backend = self.backend.as_mut().expect("replay needs a live backend");
        for entry in &self.journal {
            match entry {
                JournalEntry::Control { cmd, reason } => match backend.port.call(cmd.clone()) {
                    Ok(Response::Paused(r)) if r == *reason => {}
                    Ok(other) => {
                        return Err(ReplayOutcome::Diverged(format!(
                            "replaying `{}` expected pause `{reason}`, got {other:?}",
                            cmd.kind()
                        )))
                    }
                    Err(_) => return Err(ReplayOutcome::Lost),
                },
                JournalEntry::Arm { cmd, id } => match backend.port.call(cmd.clone()) {
                    Ok(Response::Created { id: got }) if got == *id => {}
                    Ok(other) => {
                        return Err(ReplayOutcome::Diverged(format!(
                            "re-arming `{}` expected control point {id}, got {other:?}",
                            cmd.kind()
                        )))
                    }
                    Err(_) => return Err(ReplayOutcome::Lost),
                },
                JournalEntry::Disarm { id } => {
                    match backend.port.call(Command::Delete { id: *id }) {
                        Ok(Response::Ok) => {}
                        Ok(other) => {
                            return Err(ReplayOutcome::Diverged(format!(
                                "re-deleting control point {id} got {other:?}"
                            )))
                        }
                        Err(_) => return Err(ReplayOutcome::Lost),
                    }
                }
                JournalEntry::Config { cmd } => match backend.port.call(cmd.clone()) {
                    Ok(Response::Ok) => {}
                    Ok(other) => {
                        return Err(ReplayOutcome::Diverged(format!(
                            "replaying `{}` expected Ok, got {other:?}",
                            cmd.kind()
                        )))
                    }
                    Err(_) => return Err(ReplayOutcome::Lost),
                },
            }
        }
        // The fresh engine re-produced all output since program start;
        // what the user already saw must be a prefix of it. The rest is
        // held pending for the next `get_output`.
        match backend.port.call(Command::GetOutput) {
            Ok(Response::Output(full)) => match full.strip_prefix(self.drained.as_str()) {
                Some(rest) => {
                    self.pending_output = rest.to_owned();
                    Ok(())
                }
                None => Err(ReplayOutcome::Diverged(
                    "replayed output does not extend the output already delivered".into(),
                )),
            },
            Ok(other) => Err(ReplayOutcome::Diverged(format!(
                "output reconciliation got {other:?}"
            ))),
            Err(_) => Err(ReplayOutcome::Lost),
        }
    }

    /// Marks the session unusable and releases the engine, leaving a
    /// post-mortem flight dump behind. `engine_stderr` is the stderr
    /// tail of the engine whose loss started the failure (the current
    /// backend, if any, is a later respawn).
    fn degrade(&mut self, reason: String, engine_stderr: Option<String>) -> TrackerError {
        let engine_stderr = engine_stderr.or_else(|| self.engine_stderr_tail());
        self.teardown_backend();
        self.health = SessionHealth::Degraded {
            reason: reason.clone(),
        };
        self.flight.record("degrade", reason.as_str());
        self.dump_flight_with(&format!("SessionDegraded: {reason}"), engine_stderr);
        TrackerError::SessionDegraded(reason)
    }

    /// The current child engine's captured stderr tail, if any.
    fn engine_stderr_tail(&self) -> Option<String> {
        match &self.backend {
            Some(Backend {
                engine: EngineKind::Child { stderr, .. },
                ..
            }) => Some(stderr.lock().unwrap().clone()),
            Some(Backend {
                engine: EngineKind::HostSession { host, .. },
                ..
            }) => host.engine_died().map(|(_, stderr)| stderr),
            _ => None,
        }
    }

    /// Non-graceful teardown: no Terminate handshake, just release.
    fn teardown_backend(&mut self) {
        let Some(Backend { port, engine }) = self.backend.take() else {
            return;
        };
        // Dropping the port disconnects the transport: an in-process
        // serve loop exits on it, a child reads EOF on stdin.
        drop(port);
        match engine {
            EngineKind::Thread { handle } => {
                // The serve loop exits promptly on disconnect; detaching
                // instead of joining keeps teardown bounded even when the
                // thread is wedged mid-fault.
                drop(handle);
            }
            EngineKind::Child {
                mut child, scratch, ..
            } => {
                let _ = child.kill();
                let _ = child.wait();
                if let Some(dir) = scratch {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
            // Close only this tracker's session; the host process (and
            // every other tenant in it) stays up.
            EngineKind::HostSession { host, session } => host.close_session(session),
            EngineKind::External => {}
        }
    }

    fn inspect(&mut self, command: Command) -> Result<Response> {
        self.obs.inc(&format!("tracker.inspect.{}", command.kind()));
        self.call(command)
    }

    fn control(&mut self, command: Command) -> Result<PauseReason> {
        let mut span = self.obs.span(format!("tracker.control.{}", command.kind()));
        span.category("tracker");
        match self.call(command.clone())? {
            Response::Paused(reason) => {
                span.tag("pause_reason", reason.tag());
                if let PauseReason::Sanitizer { diagnostic } = &reason {
                    self.flight.record("trap", format!("{diagnostic:?}"));
                }
                self.flight.record("pause", reason.to_string());
                self.last_reason = reason.clone();
                if self.spec.is_some() {
                    self.journal.push(JournalEntry::Control {
                        cmd: command,
                        reason: reason.clone(),
                    });
                }
                Ok(reason)
            }
            other => Err(TrackerError::Protocol(format!(
                "expected pause report, got {other:?}"
            ))),
        }
    }

    fn created(&mut self, command: Command) -> Result<ControlPointId> {
        self.obs
            .inc(&format!("tracker.control_point.{}", command.kind()));
        match self.call(command.clone())? {
            Response::Created { id } => {
                if self.spec.is_some() {
                    self.journal.push(JournalEntry::Arm { cmd: command, id });
                }
                Ok(id)
            }
            other => Err(TrackerError::Protocol(format!(
                "expected creation report, got {other:?}"
            ))),
        }
    }

    /// Bytes shipped across the MI boundary so far (bench metric).
    pub fn bytes_transferred(&self) -> u64 {
        self.backend
            .as_ref()
            .map(|b| b.port.counters().bytes_total())
            .unwrap_or(0)
    }

    /// This session's flight recorder (shared with the supervised port,
    /// so retries and heartbeat misses land in the same ring).
    pub fn flight_recorder(&self) -> &obs::FlightRecorder {
        &self.flight
    }

    /// Overrides where post-mortem flight dumps are written. Default:
    /// `EASYTRACKER_DUMP_DIR`, falling back to the system temp dir.
    pub fn set_dump_dir(&mut self, dir: impl Into<PathBuf>) {
        self.dump_dir = Some(dir.into());
    }

    /// The most recent post-mortem dump written by this session.
    pub fn last_flight_dump(&self) -> Option<&Path> {
        self.last_dump.as_deref()
    }

    /// Writes a post-mortem flight dump now (chaos/conformance harnesses
    /// call this when a *check* fails even though the session itself is
    /// healthy). Returns the dump path, or `None` if writing failed.
    pub fn dump_flight(&mut self, reason: &str) -> Option<PathBuf> {
        let stderr = self.engine_stderr_tail();
        self.dump_flight_with(reason, stderr)
    }

    fn dump_flight_with(&mut self, reason: &str, engine_stderr: Option<String>) -> Option<PathBuf> {
        let stderr = engine_stderr.unwrap_or_default();
        let log = self.flight.log();
        let dump = obs::FlightDump {
            side: "tracker".into(),
            reason: reason.into(),
            last_command: log
                .last_of("cmd")
                .map(|e| e.detail.clone())
                .unwrap_or_default(),
            last_pause: self.last_reason.to_string(),
            respawns: u64::from(self.respawns_used),
            log,
            engine_log: obs::extract_last_gasp(&stderr),
            engine_stderr: stderr,
        };
        let dir = self
            .dump_dir
            .clone()
            .or_else(|| std::env::var_os("EASYTRACKER_DUMP_DIR").map(PathBuf::from))
            .unwrap_or_else(std::env::temp_dir);
        match dump.write_to_dir(&dir) {
            Ok(path) => {
                self.obs.inc("mi.flight_dumps");
                self.last_dump = Some(path.clone());
                Some(path)
            }
            Err(_) => None,
        }
    }

    /// Estimates the engine↔tracker clock offset from `rounds` Ping
    /// roundtrips (the tightest roundtrip wins; see [`obs::ClockSync`]).
    /// Returns the estimate, also available via
    /// [`MiTracker::clock_offset_us`].
    ///
    /// # Errors
    ///
    /// Fails as any engine call does (degraded session, lost engine).
    pub fn sync_clock(&mut self, rounds: u32) -> Result<Option<i64>> {
        for _ in 0..rounds.max(1) {
            let send = self.obs.now_us();
            match self.call(Command::Ping)? {
                Response::Pong { now_us } => {
                    let recv = self.obs.now_us();
                    self.clock.sample(send, recv, now_us);
                }
                other => {
                    return Err(TrackerError::Protocol(format!(
                        "expected Pong, got {other:?}"
                    )))
                }
            }
        }
        Ok(self.clock.offset_us())
    }

    /// `engine_clock − tracker_clock` in microseconds, once
    /// [`MiTracker::sync_clock`] or a telemetry drain has sampled it.
    pub fn clock_offset_us(&self) -> Option<i64> {
        self.clock.offset_us()
    }

    /// Drains engine-side telemetry over `Command::Telemetry`: mirrors
    /// the engine's cumulative counters and gauges into this tracker's
    /// registry as `engine.*` gauges (set semantics — re-delivery after
    /// a supervised retry or respawn cannot double-count) and appends
    /// new engine trace events for [`MiTracker::write_merged_trace`].
    /// Also feeds the clock-offset estimator. Returns the raw frame.
    ///
    /// In-process sessions share the tracker's registry, so their frames
    /// echo it back; the drain stays well-defined but is only
    /// interesting for process-deployed engines.
    ///
    /// # Errors
    ///
    /// Fails as any engine call does (degraded session, lost engine).
    pub fn drain_telemetry(&mut self) -> Result<obs::TelemetryFrame> {
        let send = self.obs.now_us();
        let since = self.telemetry_since;
        match self.call(Command::Telemetry { since })? {
            Response::Telemetry(frame) => {
                let recv = self.obs.now_us();
                let frame = *frame;
                self.clock.sample(send, recv, frame.now_us);
                self.telemetry_since = frame.next_event;
                if frame.lost_events > 0 {
                    self.obs.add("mi.telemetry.lost_events", frame.lost_events);
                }
                self.engine_events.extend(frame.events.iter().cloned());
                for (name, v) in frame.counters.iter().chain(frame.gauges.iter()) {
                    self.obs.set_gauge(&format!("engine.{name}"), *v);
                }
                Ok(frame)
            }
            other => Err(TrackerError::Protocol(format!(
                "expected telemetry frame, got {other:?}"
            ))),
        }
    }

    /// Engine-side trace events drained so far (engine-clock timestamps;
    /// [`MiTracker::write_merged_trace`] re-stamps them).
    pub fn engine_trace_events(&self) -> &[obs::TraceEvent] {
        &self.engine_events
    }

    /// Writes one Chrome trace with two process lanes — `tracker_events`
    /// (from a [`obs::ChromeTraceSink`] attached to this tracker's
    /// registry) and the drained engine events shifted onto the tracker
    /// timeline by the estimated clock offset.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing `path`.
    pub fn write_merged_trace(
        &self,
        path: &Path,
        tracker_events: &[obs::TraceEvent],
    ) -> std::io::Result<()> {
        obs::save_merged_trace(
            path,
            tracker_events,
            &self.engine_events,
            self.clock.offset_us().unwrap_or(0),
        )
    }
}

/// Drains a child's stderr on a thread into a rolling tail, so engine
/// diagnostics survive the child and can be attached to
/// [`MiError::EngineDied`].
fn tail_stderr(mut stderr: std::process::ChildStderr) -> Arc<Mutex<String>> {
    const TAIL_CAP: usize = 8 * 1024;
    let tail = Arc::new(Mutex::new(String::new()));
    let sink = Arc::clone(&tail);
    let _ = std::thread::Builder::new()
        .name("mi-stderr-tail".into())
        .spawn(move || {
            let mut buf = [0u8; 1024];
            loop {
                match stderr.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        let mut tail = sink.lock().unwrap();
                        tail.push_str(&String::from_utf8_lossy(&buf[..n]));
                        if tail.len() > TAIL_CAP {
                            let mut cut = tail.len() - TAIL_CAP;
                            while !tail.is_char_boundary(cut) {
                                cut += 1;
                            }
                            tail.drain(..cut);
                        }
                    }
                }
            }
        });
    tail
}

/// Upgrades a bare transport failure to [`MiError::EngineDied`] when the
/// child process is confirmed gone, attaching its exit status and stderr
/// tail.
fn classify_failure(e: MiError, engine: &mut EngineKind) -> MiError {
    if !matches!(e, MiError::Disconnected | MiError::Timeout) {
        return e;
    }
    match engine {
        EngineKind::Child { child, stderr, .. } => match child.try_wait() {
            Ok(Some(status)) => MiError::EngineDied {
                exit: status.code(),
                stderr: stderr.lock().unwrap().clone(),
            },
            _ => e,
        },
        // Under a shared host the failure may be session-scoped (the
        // host is fine, only this session ended) or process-scoped; only
        // a confirmed-dead host child upgrades to EngineDied.
        EngineKind::HostSession { host, .. } => match host.engine_died() {
            Some((exit, stderr)) => MiError::EngineDied { exit, stderr },
            None => e,
        },
        _ => e,
    }
}

impl Tracker for MiTracker {
    fn start(&mut self) -> Result<PauseReason> {
        let r = self.control(Command::Start)?;
        self.started = true;
        Ok(r)
    }

    fn resume(&mut self) -> Result<PauseReason> {
        self.control(Command::Resume)
    }

    fn step(&mut self) -> Result<PauseReason> {
        self.control(Command::Step)
    }

    fn next(&mut self) -> Result<PauseReason> {
        self.control(Command::Next)
    }

    fn finish(&mut self) -> Result<PauseReason> {
        self.control(Command::Finish)
    }

    fn break_before_line(&mut self, line: u32) -> Result<ControlPointId> {
        self.created(Command::SetBreakLine { line })
    }

    fn break_before_func(
        &mut self,
        function: &str,
        maxdepth: Option<u32>,
    ) -> Result<ControlPointId> {
        self.created(Command::SetBreakFunc {
            function: function.to_owned(),
            maxdepth,
        })
    }

    fn track_function(&mut self, function: &str, maxdepth: Option<u32>) -> Result<ControlPointId> {
        self.created(Command::TrackFunction {
            function: function.to_owned(),
            maxdepth,
        })
    }

    fn watch(&mut self, variable: &str) -> Result<ControlPointId> {
        self.created(Command::Watch {
            variable: variable.to_owned(),
        })
    }

    fn remove(&mut self, id: ControlPointId) -> Result<()> {
        self.call(Command::Delete { id })?;
        if self.spec.is_some() {
            self.journal.push(JournalEntry::Disarm { id });
        }
        Ok(())
    }

    fn terminate(&mut self) {
        let Some(Backend { mut port, engine }) = self.backend.take() else {
            return;
        };
        // Bounded farewell: a wedged engine must not block terminate.
        let _ = port.call_deadline(Command::Terminate, Some(Duration::from_secs(2)));
        drop(port);
        match engine {
            EngineKind::Thread { handle } => {
                // Disconnect (from the port drop) ends the serve loop
                // even when Terminate itself was swallowed by a fault.
                if let Some(h) = handle {
                    let _ = h.join();
                }
            }
            EngineKind::Child {
                mut child, scratch, ..
            } => {
                // Closing stdin is EOF for the child's serve loop; give
                // it a bounded grace period before resorting to a kill.
                let mut exited = false;
                for _ in 0..100 {
                    match child.try_wait() {
                        Ok(Some(_)) => {
                            exited = true;
                            break;
                        }
                        Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                        Err(_) => break,
                    }
                }
                if !exited {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                if let Some(dir) = scratch {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
            // The bounded Terminate above already ended the session
            // server-side; closing releases the client route and (best
            // effort) the host's slot. The host itself keeps serving.
            EngineKind::HostSession { host, session } => host.close_session(session),
            EngineKind::External => {}
        }
    }

    fn pause_reason(&self) -> PauseReason {
        self.last_reason.clone()
    }

    fn get_current_frame(&mut self) -> Result<Frame> {
        Ok(self.get_state()?.frame)
    }

    fn get_state(&mut self) -> Result<ProgramState> {
        match self.inspect(Command::GetState)? {
            Response::State(st) => Ok(*st),
            other => Err(TrackerError::Protocol(format!(
                "expected state, got {other:?}"
            ))),
        }
    }

    fn get_global_variables(&mut self) -> Result<Vec<Variable>> {
        match self.inspect(Command::GetGlobals)? {
            Response::Globals(gs) => Ok(gs),
            other => Err(TrackerError::Protocol(format!(
                "expected globals, got {other:?}"
            ))),
        }
    }

    fn get_variable(&mut self, name: &str) -> Result<Option<Variable>> {
        match self.inspect(Command::GetVariable {
            name: name.to_owned(),
        })? {
            Response::Variable(v) => Ok(v),
            other => Err(TrackerError::Protocol(format!(
                "expected variable, got {other:?}"
            ))),
        }
    }

    fn get_exit_code(&mut self) -> Option<i64> {
        match self.inspect(Command::GetExitCode) {
            Ok(Response::ExitCode(c)) => c,
            _ => None,
        }
    }

    fn get_output(&mut self) -> Result<String> {
        match self.inspect(Command::GetOutput)? {
            Response::Output(o) => {
                // Output recovered during a respawn is delivered first;
                // `drained` tracks the full stream the user has seen so
                // reconciliation after the *next* crash has a baseline.
                let mut out = std::mem::take(&mut self.pending_output);
                out.push_str(&o);
                self.drained.push_str(&out);
                Ok(out)
            }
            other => Err(TrackerError::Protocol(format!(
                "expected output, got {other:?}"
            ))),
        }
    }

    fn get_source(&mut self) -> Result<(String, String)> {
        match self.inspect(Command::GetSource)? {
            Response::Source { file, text } => Ok((file, text)),
            other => Err(TrackerError::Protocol(format!(
                "expected source, got {other:?}"
            ))),
        }
    }

    fn breakable_lines(&mut self) -> Result<Vec<u32>> {
        match self.inspect(Command::GetBreakableLines)? {
            Response::Lines(lines) => Ok(lines),
            other => Err(TrackerError::Protocol(format!(
                "expected lines, got {other:?}"
            ))),
        }
    }

    fn low_level(&mut self) -> Option<&mut dyn LowLevel> {
        Some(self)
    }

    fn diagnostics(&mut self) -> Result<Vec<state::Diagnostic>> {
        match self.inspect(Command::Analyze)? {
            Response::Diagnostics(diags) => Ok(diags),
            other => Err(TrackerError::Protocol(format!(
                "expected diagnostics, got {other:?}"
            ))),
        }
    }

    fn set_sanitizer(&mut self, on: bool) -> Result<()> {
        let cmd = Command::SetSanitizer { on };
        match self.call(cmd.clone())? {
            Response::Ok => {
                if self.spec.is_some() {
                    self.journal.push(JournalEntry::Config { cmd });
                }
                Ok(())
            }
            other => Err(TrackerError::Protocol(format!(
                "expected acknowledgement, got {other:?}"
            ))),
        }
    }

    fn set_profile(&mut self, mode: obs::ProfileMode, period: u64) -> Result<()> {
        let cmd = Command::SetProfile { mode, period };
        match self.call(cmd.clone())? {
            Response::Ok => {
                if self.spec.is_some() {
                    self.journal.push(JournalEntry::Config { cmd });
                }
                self.profile_since = 0;
                Ok(())
            }
            other => Err(TrackerError::Protocol(format!(
                "expected acknowledgement, got {other:?}"
            ))),
        }
    }

    fn profile(&mut self) -> Result<obs::ProfileReport> {
        let since = self.profile_since;
        match self.inspect(Command::ProfileReport { since })? {
            Response::Profile(report) => {
                let report = *report;
                if report.units < since {
                    // A report behind our cursor means the engine
                    // restarted its profile without us noticing a
                    // recovery; count it, it should not happen.
                    self.obs.inc("mi.profile.rewinds");
                }
                self.profile_since = report.next;
                Ok(report)
            }
            other => Err(TrackerError::Protocol(format!(
                "expected profile report, got {other:?}"
            ))),
        }
    }

    fn stats(&self) -> obs::Snapshot {
        self.obs.snapshot()
    }
}

impl LowLevel for MiTracker {
    fn registers(&mut self) -> Result<Vec<Variable>> {
        match self.inspect(Command::GetRegisters)? {
            Response::Registers(regs) => Ok(regs),
            other => Err(TrackerError::Protocol(format!(
                "expected registers, got {other:?}"
            ))),
        }
    }

    fn read_memory(&mut self, addr: u64, len: u64) -> Result<Vec<u8>> {
        match self.inspect(Command::ReadMemory { addr, len })? {
            Response::Memory(bytes) => Ok(bytes),
            other => Err(TrackerError::Protocol(format!(
                "expected memory, got {other:?}"
            ))),
        }
    }
}

impl Drop for MiTracker {
    fn drop(&mut self) {
        self.terminate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::{Content, ExitStatus, Prim};
    use std::sync::atomic::{AtomicBool, Ordering};

    const C_PROG: &str = "int square(int x) {\nreturn x * x;\n}\nint main() {\nint s = 0;\nfor (int i = 1; i <= 3; i++) {\ns += square(i);\n}\nreturn s;\n}";

    #[test]
    fn full_session_over_the_boundary() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        assert_eq!(t.pause_reason(), PauseReason::NotStarted);
        let r = t.start().unwrap();
        assert_eq!(r, PauseReason::Started);
        t.track_function("square", None).unwrap();
        let mut calls = 0;
        loop {
            match t.resume().unwrap() {
                PauseReason::FunctionCall { .. } => {
                    calls += 1;
                    let frame = t.get_current_frame().unwrap();
                    assert_eq!(frame.name(), "square");
                    let x = frame.variable("x").unwrap();
                    match x.value().content() {
                        Content::Primitive(Prim::Int(v)) => assert_eq!(*v, calls),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                PauseReason::FunctionReturn { .. } => {}
                PauseReason::Exited(ExitStatus::Exited(code)) => {
                    assert_eq!(code, 14);
                    break;
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(calls, 3);
        assert!(t.bytes_transferred() > 0, "traffic really crossed the pipe");
        t.terminate();
    }

    #[test]
    fn asm_tracker_speaks_the_same_api() {
        let src = "main:\n    li a0, 5\n    call triple\n    li a7, 93\n    ecall\ntriple:\n    li t0, 3\n    mul a0, a0, t0\n    ret";
        let mut t = MiTracker::load_asm("p.s", src).unwrap();
        t.start().unwrap();
        t.track_function("triple", None).unwrap();
        let r = t.resume().unwrap();
        assert!(matches!(r, PauseReason::FunctionCall { .. }));
        let regs = t.low_level().unwrap().registers().unwrap();
        let a0 = regs.iter().find(|v| v.name() == "a0").unwrap();
        assert_eq!(state::render_value(a0.value()), "5");
        let r = t.resume().unwrap();
        assert!(matches!(r, PauseReason::FunctionReturn { .. }));
        let r = t.resume().unwrap();
        assert_eq!(r, PauseReason::Exited(ExitStatus::Exited(15)));
    }

    #[test]
    fn load_errors_are_reported() {
        assert!(matches!(
            MiTracker::load_c("bad.c", "int main() { return x; }"),
            Err(TrackerError::Load(_))
        ));
        assert!(matches!(
            MiTracker::load_asm("bad.s", "frobnicate a0"),
            Err(TrackerError::Load(_))
        ));
    }

    #[test]
    fn engine_errors_surface() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        assert!(matches!(t.resume(), Err(TrackerError::Engine(_))));
        t.start().unwrap();
        assert!(matches!(
            t.break_before_func("nope", None),
            Err(TrackerError::Engine(_))
        ));
    }

    #[test]
    fn terminate_is_idempotent_and_drop_safe() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        t.start().unwrap();
        t.terminate();
        t.terminate();
        assert!(matches!(t.resume(), Err(TrackerError::Engine(_))));
    }

    #[test]
    fn memory_reads_via_low_level() {
        let mut t = MiTracker::load_c("p.c", "int g = 7;\nint main() {\nreturn g;\n}").unwrap();
        t.start().unwrap();
        let g = t.get_variable("g").unwrap().unwrap();
        let addr = g.value().address().unwrap();
        let bytes = t.low_level().unwrap().read_memory(addr, 4).unwrap();
        assert_eq!(bytes, 7i32.to_le_bytes());
    }

    /// A port wrapper that reports Disconnected exactly once, at the
    /// `fail_at`-th call of the whole session (shared across respawns).
    struct FailOnce {
        inner: Box<dyn CommandPort>,
        state: Arc<FailOnceState>,
    }

    struct FailOnceState {
        calls: std::sync::atomic::AtomicUsize,
        fail_at: usize,
        fired: AtomicBool,
    }

    impl FailOnce {
        fn should_fail(&self) -> bool {
            let n = self.state.calls.fetch_add(1, Ordering::SeqCst) + 1;
            n == self.state.fail_at && !self.state.fired.swap(true, Ordering::SeqCst)
        }
    }

    impl CommandPort for FailOnce {
        fn call(&mut self, command: Command) -> std::result::Result<Response, MiError> {
            if self.should_fail() {
                return Err(MiError::Disconnected);
            }
            self.inner.call(command)
        }

        fn call_deadline(
            &mut self,
            command: Command,
            deadline: Option<Duration>,
        ) -> std::result::Result<Response, MiError> {
            if self.should_fail() {
                return Err(MiError::Disconnected);
            }
            self.inner.call_deadline(command, deadline)
        }

        fn counters(&self) -> mi::transport::TransportCounters {
            self.inner.counters()
        }
    }

    fn fail_once_wrapper(fail_at: usize) -> (PortWrapper, Arc<FailOnceState>) {
        let state = Arc::new(FailOnceState {
            calls: std::sync::atomic::AtomicUsize::new(0),
            fail_at,
            fired: AtomicBool::new(false),
        });
        let s = Arc::clone(&state);
        let wrapper: PortWrapper = Box::new(move |inner| {
            Box::new(FailOnce {
                inner,
                state: Arc::clone(&s),
            })
        });
        (wrapper, state)
    }

    fn fast_supervision() -> Supervision {
        Supervision {
            deadline: Some(Duration::from_secs(5)),
            ping_deadline: Duration::from_millis(100),
            max_retries: 1,
            max_respawns: 2,
            backoff_base: Duration::from_micros(10),
            backoff_cap: Duration::from_micros(100),
            jitter_seed: 11,
        }
    }

    #[test]
    fn session_recovers_transparently_from_a_lost_engine() {
        let reg = obs::Registry::new();
        let (wrapper, state) = fail_once_wrapper(6);
        let mut t = MiTracker::load_spec(
            ProgramSpec::c("p.c", C_PROG),
            reg.clone(),
            fast_supervision(),
            Some(wrapper),
        )
        .unwrap();
        t.start().unwrap();
        t.track_function("square", None).unwrap();
        let mut calls = 0;
        loop {
            match t.resume().unwrap() {
                PauseReason::FunctionCall { .. } => calls += 1,
                PauseReason::FunctionReturn { .. } => {}
                PauseReason::Exited(ExitStatus::Exited(code)) => {
                    assert_eq!(code, 14);
                    break;
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(calls, 3, "recovered run sees the same events");
        assert!(state.fired.load(Ordering::SeqCst), "the fault really fired");
        assert_eq!(*t.health(), SessionHealth::Healthy);
        assert_eq!(t.respawns(), 1);
        assert_eq!(reg.snapshot().counter("mi.respawns"), 1);
        assert!(
            reg.snapshot().histogram("mi.supervisor.recovery").is_some(),
            "recovery latency was recorded"
        );
    }

    /// A wrapper whose port fails every call: recovery can never replay,
    /// so the session must burn its respawn budget and degrade — without
    /// hanging or panicking.
    #[test]
    fn respawn_storm_is_capped_and_degrades() {
        struct Dead;
        impl CommandPort for Dead {
            fn call(&mut self, _: Command) -> std::result::Result<Response, MiError> {
                Err(MiError::Disconnected)
            }
            fn counters(&self) -> mi::transport::TransportCounters {
                mi::transport::TransportCounters::default()
            }
        }
        let reg = obs::Registry::new();
        let wrapper: PortWrapper = Box::new(|inner| {
            drop(inner);
            Box::new(Dead)
        });
        let cfg = fast_supervision();
        let mut t = MiTracker::load_spec(
            ProgramSpec::c("p.c", C_PROG),
            reg.clone(),
            cfg,
            Some(wrapper),
        )
        .unwrap();
        let err = t.start().unwrap_err();
        assert!(matches!(err, TrackerError::SessionDegraded(_)), "{err:?}");
        assert!(matches!(t.health(), SessionHealth::Degraded { .. }));
        assert_eq!(t.respawns(), cfg.max_respawns);
        assert_eq!(
            reg.snapshot().counter("mi.respawns"),
            u64::from(cfg.max_respawns)
        );
        // Degraded is sticky: further calls fail fast, no new respawns.
        assert!(matches!(t.resume(), Err(TrackerError::SessionDegraded(_))));
        assert_eq!(t.respawns(), cfg.max_respawns);
    }

    #[test]
    fn output_is_reconciled_across_a_respawn() {
        let prog = "int main() {\nputs(\"one\");\nputs(\"two\");\nputs(\"three\");\nreturn 0;\n}";
        // Reference: which call index does what, without faults.
        let (wrapper, _) = fail_once_wrapper(usize::MAX);
        let mut r = MiTracker::load_spec(
            ProgramSpec::c("p.c", prog),
            obs::Registry::new(),
            fast_supervision(),
            Some(wrapper),
        )
        .unwrap();
        r.start().unwrap();
        r.step().unwrap();
        r.step().unwrap();
        let first = r.get_output().unwrap();
        while r.get_exit_code().is_none() {
            if r.step().is_err() {
                break;
            }
        }
        let rest = r.get_output().unwrap();
        let full_reference = format!("{first}{rest}");

        // Faulty run: drain some output, lose the engine, drain the rest.
        let (wrapper, state) = fail_once_wrapper(8);
        let mut t = MiTracker::load_spec(
            ProgramSpec::c("p.c", prog),
            obs::Registry::new(),
            fast_supervision(),
            Some(wrapper),
        )
        .unwrap();
        t.start().unwrap();
        t.step().unwrap();
        t.step().unwrap();
        let mut seen = t.get_output().unwrap();
        while t.get_exit_code().is_none() {
            if t.step().is_err() {
                break;
            }
        }
        seen.push_str(&t.get_output().unwrap());
        assert!(state.fired.load(Ordering::SeqCst), "the fault really fired");
        assert_eq!(*t.health(), SessionHealth::Healthy);
        assert_eq!(
            seen, full_reference,
            "no output lost or duplicated across the respawn"
        );
    }

    const UNSAFE_PROG: &str =
        "int main() {\nint* p = malloc(4);\n*p = 7;\nfree(p);\nint x = *p;\nreturn x;\n}";

    #[test]
    fn diagnostics_cross_the_boundary_without_running() {
        let mut t = MiTracker::load_c("p.c", UNSAFE_PROG).unwrap();
        let diags = t.diagnostics().unwrap();
        assert!(diags
            .iter()
            .any(|d| d.kind == state::DiagnosticKind::UseAfterFree && d.span == 5));
        assert_eq!(t.get_exit_code(), None, "analysis never ran the inferior");
        // The inferior is still startable afterwards.
        assert_eq!(t.start().unwrap(), PauseReason::Started);
    }

    #[test]
    fn sanitized_session_pauses_at_traps() {
        let mut t = MiTracker::load_c("p.c", UNSAFE_PROG).unwrap();
        t.set_sanitizer(true).unwrap();
        t.start().unwrap();
        match t.resume().unwrap() {
            PauseReason::Sanitizer { diagnostic } => {
                assert_eq!(diagnostic.kind, state::DiagnosticKind::UseAfterFree);
                assert_eq!(diagnostic.span, 5);
                // The paused frame is inspectable like any other pause.
                assert_eq!(t.get_current_frame().unwrap().name(), "main");
            }
            other => panic!("unexpected {other}"),
        }
        assert_eq!(
            t.resume().unwrap(),
            PauseReason::Exited(ExitStatus::Exited(7)),
            "traps are observations, not faults"
        );
    }

    #[test]
    fn sanitizer_must_precede_start() {
        let mut t = MiTracker::load_c("p.c", UNSAFE_PROG).unwrap();
        t.start().unwrap();
        assert!(matches!(
            t.set_sanitizer(true),
            Err(TrackerError::Engine(_))
        ));
    }

    #[test]
    fn sanitizer_mode_survives_an_engine_respawn() {
        // Call 3 is the first `resume`: the engine is lost mid-run, after
        // the sanitizer was armed and the inferior started.
        let (wrapper, state) = fail_once_wrapper(3);
        let mut t = MiTracker::load_spec(
            ProgramSpec::c("p.c", UNSAFE_PROG),
            obs::Registry::new(),
            fast_supervision(),
            Some(wrapper),
        )
        .unwrap();
        t.set_sanitizer(true).unwrap();
        t.start().unwrap();
        let mut traps = Vec::new();
        loop {
            match t.resume().unwrap() {
                PauseReason::Sanitizer { diagnostic } => traps.push(diagnostic.kind),
                PauseReason::Exited(ExitStatus::Exited(code)) => {
                    assert_eq!(code, 7);
                    break;
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert!(state.fired.load(Ordering::SeqCst), "the fault really fired");
        assert_eq!(*t.health(), SessionHealth::Healthy);
        assert_eq!(t.respawns(), 1);
        assert_eq!(traps, vec![state::DiagnosticKind::UseAfterFree]);
    }

    #[test]
    fn recording_seek_and_history_through_the_boundary() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        t.record(8).unwrap();
        t.start().unwrap();
        let mut lines = vec![t.current_line().unwrap()];
        while t.step().unwrap().is_alive() {
            lines.push(t.current_line().unwrap());
        }
        let (pauses, keyframes, bytes) = t.trace_stats().unwrap();
        assert_eq!(pauses, lines.len() as u64);
        assert_eq!(keyframes, pauses.div_ceil(8));
        assert!(bytes > 0);
        // Seek anywhere: inspections answer from the recording.
        for n in [0, pauses / 2, pauses - 1] {
            t.seek(n).unwrap();
            let frame = t.get_current_frame().unwrap();
            assert_eq!(frame.location().line(), lines[n as usize]);
        }
        // History: `s` accumulates 1, 5, 14; the last write is 14.
        let hits = t.query_history("main::s", None, None).unwrap();
        let values: Vec<&str> = hits.iter().map(|h| h.value.as_str()).collect();
        assert!(values.windows(2).all(|w| w[0] != w[1]), "{values:?}");
        assert_eq!(values.last(), Some(&"14"));
        assert_eq!(t.last_change("main::s", None).unwrap().unwrap().value, "14");
        // Control snaps back to the live (exited) inferior.
        assert_eq!(t.get_exit_code(), Some(14));
    }

    #[test]
    fn record_must_precede_start() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        t.start().unwrap();
        assert!(matches!(t.record(8), Err(TrackerError::Engine(_))));
    }

    #[test]
    fn recording_survives_an_engine_respawn() {
        // Call 4 lands mid-run: the engine is lost after Record armed
        // and the inferior started. The journal replays Record first,
        // then the control history, so the rebuilt store covers the
        // same pauses.
        let (wrapper, state) = fail_once_wrapper(4);
        let mut t = MiTracker::load_spec(
            ProgramSpec::c("p.c", C_PROG),
            obs::Registry::new(),
            fast_supervision(),
            Some(wrapper),
        )
        .unwrap();
        t.record(4).unwrap();
        t.start().unwrap();
        let mut steps = 1u64;
        while t.step().unwrap().is_alive() {
            steps += 1;
        }
        assert!(state.fired.load(Ordering::SeqCst), "the fault really fired");
        assert_eq!(t.respawns(), 1);
        let (pauses, _, _) = t.trace_stats().unwrap();
        assert_eq!(
            pauses, steps,
            "recording covers every pause, respawn included"
        );
        assert_eq!(t.last_change("main::s", None).unwrap().unwrap().value, "14");
    }

    #[test]
    fn heartbeat_probes_the_boundary() {
        let reg = obs::Registry::new();
        let mut t = MiTracker::load_c_with_registry("p.c", C_PROG, reg.clone()).unwrap();
        t.heartbeat().unwrap();
        assert_eq!(reg.snapshot().counter("mi.heartbeat_misses"), 0);
        t.terminate();
        assert!(t.heartbeat().is_err());
    }
}
