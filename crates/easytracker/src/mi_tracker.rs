//! The machine-interface tracker: the GDB tracker analogue (paper Fig. 4).
//!
//! The inferior's engine (MiniC VM or RISC-V simulator) runs on its own
//! thread behind a serialized command/response transport — the same
//! decoupling the paper gets from running `gdb --interpreter=mi` as a
//! subprocess. All state crossing the boundary is serialized and
//! deserialized, so this tracker pays the real marshalling cost the
//! benchmarks measure.

use crate::{ControlPointId, LowLevel, Result, Tracker, TrackerError};
use mi::protocol::{Command, Response};
use mi::transport::{StreamTransport, Transport as _};
use mi::{CommandPort, Session};
use state::{Frame, PauseReason, ProgramState, Variable};
use std::path::{Path, PathBuf};

/// Where the engine on the other side of the MI boundary lives.
///
/// The tracker code above this enum is identical for every variant —
/// that is the conformance suite's central claim, so the boundary is an
/// explicit seam rather than a hard-coded thread spawn.
enum Backend {
    /// Engine on an in-process thread over channel transports (the
    /// default, what `spawn_minic`/`spawn_asm` build).
    Session(Session),
    /// Any [`CommandPort`]: a client over a custom transport, e.g. the
    /// conformance suite's fault-injection proxy.
    Port(Box<dyn CommandPort>),
    /// Engine in a separate `mi-server` OS process over real pipes (the
    /// paper's `gdb --interpreter=mi` deployment, made literal).
    Process {
        port: Box<dyn CommandPort>,
        child: std::process::Child,
        /// Temp dir holding the shipped source; removed on terminate.
        scratch: Option<PathBuf>,
    },
}

impl Backend {
    fn call(&mut self, command: Command) -> std::result::Result<Response, mi::MiError> {
        match self {
            Backend::Session(s) => s.client.call(command),
            Backend::Port(p) => p.call(command),
            Backend::Process { port, .. } => port.call(command),
        }
    }

    fn counters(&self) -> mi::transport::TransportCounters {
        match self {
            Backend::Session(s) => s.client.transport().counters(),
            Backend::Port(p) => p.counters(),
            Backend::Process { port, .. } => port.counters(),
        }
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Session(_) => f.write_str("Backend::Session"),
            Backend::Port(_) => f.write_str("Backend::Port"),
            Backend::Process { .. } => f.write_str("Backend::Process"),
        }
    }
}

/// Tracker for MiniC and RISC-V inferiors behind the MI boundary.
#[derive(Debug)]
pub struct MiTracker {
    backend: Option<Backend>,
    last_reason: PauseReason,
    started: bool,
    obs: obs::Registry,
}

impl MiTracker {
    /// Compiles MiniC source and attaches an engine to it.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for compile errors.
    pub fn load_c(file: &str, source: &str) -> Result<Self> {
        Self::load_c_with_registry(file, source, obs::Registry::new())
    }

    /// Like [`MiTracker::load_c`], with every layer (tracker control
    /// calls, MI client/server, VM engine) reporting into `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for compile errors.
    pub fn load_c_with_registry(file: &str, source: &str, registry: obs::Registry) -> Result<Self> {
        let program =
            minic::compile(file, source).map_err(|e| TrackerError::Load(e.to_string()))?;
        Ok(Self::with_backend(
            Backend::Session(mi::spawn_minic_with_registry(&program, registry.clone())),
            registry,
        ))
    }

    /// Assembles RISC-V source and attaches an engine to it.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for assembly errors.
    pub fn load_asm(file: &str, source: &str) -> Result<Self> {
        Self::load_asm_with_registry(file, source, obs::Registry::new())
    }

    /// Like [`MiTracker::load_asm`], reporting into `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for assembly errors.
    pub fn load_asm_with_registry(
        file: &str,
        source: &str,
        registry: obs::Registry,
    ) -> Result<Self> {
        let program =
            miniasm::asm::assemble(file, source).map_err(|e| TrackerError::Load(e.to_string()))?;
        Ok(Self::with_backend(
            Backend::Session(mi::spawn_asm_with_registry(&program, registry.clone())),
            registry,
        ))
    }

    fn with_backend(backend: Backend, registry: obs::Registry) -> Self {
        MiTracker {
            backend: Some(backend),
            last_reason: PauseReason::NotStarted,
            started: false,
            obs: registry,
        }
    }

    /// Attaches the tracker to an already-connected [`CommandPort`] —
    /// any client over any transport. The conformance suite uses this to
    /// interpose a fault-injection proxy between tracker and engine.
    pub fn from_port(port: Box<dyn CommandPort>) -> Self {
        Self::from_port_with_registry(port, obs::Registry::new())
    }

    /// Like [`MiTracker::from_port`], reporting into `registry`.
    pub fn from_port_with_registry(port: Box<dyn CommandPort>, registry: obs::Registry) -> Self {
        Self::with_backend(Backend::Port(port), registry)
    }

    /// Spawns `mi-server` (at `server_bin`) as a real child process for a
    /// MiniC program and connects over its stdio pipes — the paper's
    /// `gdb --interpreter=mi` deployment shape.
    ///
    /// The source is shipped via a temporary file; `file` is passed as
    /// the logical name so reported source locations match an in-process
    /// run byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] if the scratch file cannot be
    /// written or the server process cannot be spawned.
    pub fn load_c_process(server_bin: &Path, file: &str, source: &str) -> Result<Self> {
        Self::load_process(server_bin, file, source, "prog.c")
    }

    /// Like [`MiTracker::load_c_process`], for RISC-V assembly.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] on scratch-file or spawn failure.
    pub fn load_asm_process(server_bin: &Path, file: &str, source: &str) -> Result<Self> {
        Self::load_process(server_bin, file, source, "prog.s")
    }

    fn load_process(
        server_bin: &Path,
        file: &str,
        source: &str,
        scratch_name: &str,
    ) -> Result<Self> {
        use std::io::Write as _;
        use std::process::{Command as Proc, Stdio};

        let load = |e: &dyn std::fmt::Display| TrackerError::Load(e.to_string());
        // A private scratch dir per tracker: pid + a process-wide counter
        // keeps concurrent trackers (and concurrent test binaries) apart.
        static SCRATCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SCRATCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("easytracker-mi-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| load(&e))?;
        let path = dir.join(scratch_name);
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(source.as_bytes()))
            .map_err(|e| load(&e))?;

        let mut child = Proc::new(server_bin)
            .arg(&path)
            .arg(file)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| {
                let _ = std::fs::remove_dir_all(&dir);
                load(&e)
            })?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let port = Box::new(mi::Client::new(StreamTransport::new(stdout, stdin)));
        Ok(Self::with_backend(
            Backend::Process {
                port,
                child,
                scratch: Some(dir),
            },
            obs::Registry::new(),
        ))
    }

    /// The registry this tracker reports into.
    pub fn registry(&self) -> &obs::Registry {
        &self.obs
    }

    fn call(&mut self, command: Command) -> Result<Response> {
        let backend = self
            .backend
            .as_mut()
            .ok_or_else(|| TrackerError::Engine("tracker already terminated".into()))?;
        let resp = backend.call(command)?;
        if let Response::Error { message } = resp {
            return Err(TrackerError::Engine(message));
        }
        Ok(resp)
    }

    fn inspect(&mut self, command: Command) -> Result<Response> {
        self.obs.inc(&format!("tracker.inspect.{}", command.kind()));
        self.call(command)
    }

    fn control(&mut self, command: Command) -> Result<PauseReason> {
        let mut span = self.obs.span(format!("tracker.control.{}", command.kind()));
        span.category("tracker");
        match self.call(command)? {
            Response::Paused(reason) => {
                span.tag("pause_reason", reason.tag());
                self.last_reason = reason.clone();
                Ok(reason)
            }
            other => Err(TrackerError::Protocol(format!(
                "expected pause report, got {other:?}"
            ))),
        }
    }

    fn created(&mut self, command: Command) -> Result<ControlPointId> {
        self.obs
            .inc(&format!("tracker.control_point.{}", command.kind()));
        match self.call(command)? {
            Response::Created { id } => Ok(id),
            other => Err(TrackerError::Protocol(format!(
                "expected creation report, got {other:?}"
            ))),
        }
    }

    /// Bytes shipped across the MI boundary so far (bench metric).
    pub fn bytes_transferred(&self) -> u64 {
        self.backend
            .as_ref()
            .map(|b| b.counters().bytes_total())
            .unwrap_or(0)
    }
}

impl Tracker for MiTracker {
    fn start(&mut self) -> Result<PauseReason> {
        let r = self.control(Command::Start)?;
        self.started = true;
        Ok(r)
    }

    fn resume(&mut self) -> Result<PauseReason> {
        self.control(Command::Resume)
    }

    fn step(&mut self) -> Result<PauseReason> {
        self.control(Command::Step)
    }

    fn next(&mut self) -> Result<PauseReason> {
        self.control(Command::Next)
    }

    fn finish(&mut self) -> Result<PauseReason> {
        self.control(Command::Finish)
    }

    fn break_before_line(&mut self, line: u32) -> Result<ControlPointId> {
        self.created(Command::SetBreakLine { line })
    }

    fn break_before_func(
        &mut self,
        function: &str,
        maxdepth: Option<u32>,
    ) -> Result<ControlPointId> {
        self.created(Command::SetBreakFunc {
            function: function.to_owned(),
            maxdepth,
        })
    }

    fn track_function(&mut self, function: &str, maxdepth: Option<u32>) -> Result<ControlPointId> {
        self.created(Command::TrackFunction {
            function: function.to_owned(),
            maxdepth,
        })
    }

    fn watch(&mut self, variable: &str) -> Result<ControlPointId> {
        self.created(Command::Watch {
            variable: variable.to_owned(),
        })
    }

    fn remove(&mut self, id: ControlPointId) -> Result<()> {
        self.call(Command::Delete { id })?;
        Ok(())
    }

    fn terminate(&mut self) {
        match self.backend.take() {
            Some(Backend::Session(session)) => session.shutdown(),
            Some(Backend::Port(mut port)) => {
                let _ = port.call(Command::Terminate);
            }
            Some(Backend::Process {
                mut port,
                mut child,
                scratch,
            }) => {
                let _ = port.call(Command::Terminate);
                // Dropping the port closes the child's stdin, which its
                // serve loop reads as EOF; give it a bounded grace
                // period before resorting to a kill.
                drop(port);
                let mut exited = false;
                for _ in 0..100 {
                    match child.try_wait() {
                        Ok(Some(_)) => {
                            exited = true;
                            break;
                        }
                        Ok(None) => std::thread::sleep(std::time::Duration::from_millis(20)),
                        Err(_) => break,
                    }
                }
                if !exited {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                if let Some(dir) = scratch {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
            None => {}
        }
    }

    fn pause_reason(&self) -> PauseReason {
        self.last_reason.clone()
    }

    fn get_current_frame(&mut self) -> Result<Frame> {
        Ok(self.get_state()?.frame)
    }

    fn get_state(&mut self) -> Result<ProgramState> {
        match self.inspect(Command::GetState)? {
            Response::State(st) => Ok(*st),
            other => Err(TrackerError::Protocol(format!(
                "expected state, got {other:?}"
            ))),
        }
    }

    fn get_global_variables(&mut self) -> Result<Vec<Variable>> {
        match self.inspect(Command::GetGlobals)? {
            Response::Globals(gs) => Ok(gs),
            other => Err(TrackerError::Protocol(format!(
                "expected globals, got {other:?}"
            ))),
        }
    }

    fn get_variable(&mut self, name: &str) -> Result<Option<Variable>> {
        match self.inspect(Command::GetVariable {
            name: name.to_owned(),
        })? {
            Response::Variable(v) => Ok(v),
            other => Err(TrackerError::Protocol(format!(
                "expected variable, got {other:?}"
            ))),
        }
    }

    fn get_exit_code(&mut self) -> Option<i64> {
        match self.inspect(Command::GetExitCode) {
            Ok(Response::ExitCode(c)) => c,
            _ => None,
        }
    }

    fn get_output(&mut self) -> Result<String> {
        match self.inspect(Command::GetOutput)? {
            Response::Output(o) => Ok(o),
            other => Err(TrackerError::Protocol(format!(
                "expected output, got {other:?}"
            ))),
        }
    }

    fn get_source(&mut self) -> Result<(String, String)> {
        match self.inspect(Command::GetSource)? {
            Response::Source { file, text } => Ok((file, text)),
            other => Err(TrackerError::Protocol(format!(
                "expected source, got {other:?}"
            ))),
        }
    }

    fn breakable_lines(&mut self) -> Result<Vec<u32>> {
        match self.inspect(Command::GetBreakableLines)? {
            Response::Lines(lines) => Ok(lines),
            other => Err(TrackerError::Protocol(format!(
                "expected lines, got {other:?}"
            ))),
        }
    }

    fn low_level(&mut self) -> Option<&mut dyn LowLevel> {
        Some(self)
    }

    fn stats(&self) -> obs::Snapshot {
        self.obs.snapshot()
    }
}

impl LowLevel for MiTracker {
    fn registers(&mut self) -> Result<Vec<Variable>> {
        match self.inspect(Command::GetRegisters)? {
            Response::Registers(regs) => Ok(regs),
            other => Err(TrackerError::Protocol(format!(
                "expected registers, got {other:?}"
            ))),
        }
    }

    fn read_memory(&mut self, addr: u64, len: u64) -> Result<Vec<u8>> {
        match self.inspect(Command::ReadMemory { addr, len })? {
            Response::Memory(bytes) => Ok(bytes),
            other => Err(TrackerError::Protocol(format!(
                "expected memory, got {other:?}"
            ))),
        }
    }
}

impl Drop for MiTracker {
    fn drop(&mut self) {
        self.terminate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::{Content, ExitStatus, Prim};

    const C_PROG: &str = "int square(int x) {\nreturn x * x;\n}\nint main() {\nint s = 0;\nfor (int i = 1; i <= 3; i++) {\ns += square(i);\n}\nreturn s;\n}";

    #[test]
    fn full_session_over_the_boundary() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        assert_eq!(t.pause_reason(), PauseReason::NotStarted);
        let r = t.start().unwrap();
        assert_eq!(r, PauseReason::Started);
        t.track_function("square", None).unwrap();
        let mut calls = 0;
        loop {
            match t.resume().unwrap() {
                PauseReason::FunctionCall { .. } => {
                    calls += 1;
                    let frame = t.get_current_frame().unwrap();
                    assert_eq!(frame.name(), "square");
                    let x = frame.variable("x").unwrap();
                    match x.value().content() {
                        Content::Primitive(Prim::Int(v)) => assert_eq!(*v, calls),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                PauseReason::FunctionReturn { .. } => {}
                PauseReason::Exited(ExitStatus::Exited(code)) => {
                    assert_eq!(code, 14);
                    break;
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(calls, 3);
        assert!(t.bytes_transferred() > 0, "traffic really crossed the pipe");
        t.terminate();
    }

    #[test]
    fn asm_tracker_speaks_the_same_api() {
        let src = "main:\n    li a0, 5\n    call triple\n    li a7, 93\n    ecall\ntriple:\n    li t0, 3\n    mul a0, a0, t0\n    ret";
        let mut t = MiTracker::load_asm("p.s", src).unwrap();
        t.start().unwrap();
        t.track_function("triple", None).unwrap();
        let r = t.resume().unwrap();
        assert!(matches!(r, PauseReason::FunctionCall { .. }));
        let regs = t.low_level().unwrap().registers().unwrap();
        let a0 = regs.iter().find(|v| v.name() == "a0").unwrap();
        assert_eq!(state::render_value(a0.value()), "5");
        let r = t.resume().unwrap();
        assert!(matches!(r, PauseReason::FunctionReturn { .. }));
        let r = t.resume().unwrap();
        assert_eq!(r, PauseReason::Exited(ExitStatus::Exited(15)));
    }

    #[test]
    fn load_errors_are_reported() {
        assert!(matches!(
            MiTracker::load_c("bad.c", "int main() { return x; }"),
            Err(TrackerError::Load(_))
        ));
        assert!(matches!(
            MiTracker::load_asm("bad.s", "frobnicate a0"),
            Err(TrackerError::Load(_))
        ));
    }

    #[test]
    fn engine_errors_surface() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        assert!(matches!(t.resume(), Err(TrackerError::Engine(_))));
        t.start().unwrap();
        assert!(matches!(
            t.break_before_func("nope", None),
            Err(TrackerError::Engine(_))
        ));
    }

    #[test]
    fn terminate_is_idempotent_and_drop_safe() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        t.start().unwrap();
        t.terminate();
        t.terminate();
        assert!(matches!(t.resume(), Err(TrackerError::Engine(_))));
    }

    #[test]
    fn memory_reads_via_low_level() {
        let mut t = MiTracker::load_c("p.c", "int g = 7;\nint main() {\nreturn g;\n}").unwrap();
        t.start().unwrap();
        let g = t.get_variable("g").unwrap().unwrap();
        let addr = g.value().address().unwrap();
        let bytes = t.low_level().unwrap().read_memory(addr, 4).unwrap();
        assert_eq!(bytes, 7i32.to_le_bytes());
    }
}
