//! The machine-interface tracker: the GDB tracker analogue (paper Fig. 4).
//!
//! The inferior's engine (MiniC VM or RISC-V simulator) runs on its own
//! thread behind a serialized command/response transport — the same
//! decoupling the paper gets from running `gdb --interpreter=mi` as a
//! subprocess. All state crossing the boundary is serialized and
//! deserialized, so this tracker pays the real marshalling cost the
//! benchmarks measure.

use crate::{ControlPointId, LowLevel, Result, Tracker, TrackerError};
use mi::protocol::{Command, Response};
use mi::transport::Transport as _;
use mi::Session;
use state::{Frame, PauseReason, ProgramState, Variable};

/// Tracker for MiniC and RISC-V inferiors behind the MI boundary.
#[derive(Debug)]
pub struct MiTracker {
    session: Option<Session>,
    last_reason: PauseReason,
    started: bool,
    obs: obs::Registry,
}

impl MiTracker {
    /// Compiles MiniC source and attaches an engine to it.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for compile errors.
    pub fn load_c(file: &str, source: &str) -> Result<Self> {
        Self::load_c_with_registry(file, source, obs::Registry::new())
    }

    /// Like [`MiTracker::load_c`], with every layer (tracker control
    /// calls, MI client/server, VM engine) reporting into `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for compile errors.
    pub fn load_c_with_registry(file: &str, source: &str, registry: obs::Registry) -> Result<Self> {
        let program =
            minic::compile(file, source).map_err(|e| TrackerError::Load(e.to_string()))?;
        Ok(MiTracker {
            session: Some(mi::spawn_minic_with_registry(&program, registry.clone())),
            last_reason: PauseReason::NotStarted,
            started: false,
            obs: registry,
        })
    }

    /// Assembles RISC-V source and attaches an engine to it.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for assembly errors.
    pub fn load_asm(file: &str, source: &str) -> Result<Self> {
        Self::load_asm_with_registry(file, source, obs::Registry::new())
    }

    /// Like [`MiTracker::load_asm`], reporting into `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] for assembly errors.
    pub fn load_asm_with_registry(
        file: &str,
        source: &str,
        registry: obs::Registry,
    ) -> Result<Self> {
        let program =
            miniasm::asm::assemble(file, source).map_err(|e| TrackerError::Load(e.to_string()))?;
        Ok(MiTracker {
            session: Some(mi::spawn_asm_with_registry(&program, registry.clone())),
            last_reason: PauseReason::NotStarted,
            started: false,
            obs: registry,
        })
    }

    /// The registry this tracker reports into.
    pub fn registry(&self) -> &obs::Registry {
        &self.obs
    }

    fn call(&mut self, command: Command) -> Result<Response> {
        let session = self
            .session
            .as_mut()
            .ok_or_else(|| TrackerError::Engine("tracker already terminated".into()))?;
        let resp = session.client.call(command)?;
        if let Response::Error { message } = resp {
            return Err(TrackerError::Engine(message));
        }
        Ok(resp)
    }

    fn inspect(&mut self, command: Command) -> Result<Response> {
        self.obs.inc(&format!("tracker.inspect.{}", command.kind()));
        self.call(command)
    }

    fn control(&mut self, command: Command) -> Result<PauseReason> {
        let mut span = self.obs.span(format!("tracker.control.{}", command.kind()));
        span.category("tracker");
        match self.call(command)? {
            Response::Paused(reason) => {
                span.tag("pause_reason", reason.tag());
                self.last_reason = reason.clone();
                Ok(reason)
            }
            other => Err(TrackerError::Protocol(format!(
                "expected pause report, got {other:?}"
            ))),
        }
    }

    fn created(&mut self, command: Command) -> Result<ControlPointId> {
        self.obs
            .inc(&format!("tracker.control_point.{}", command.kind()));
        match self.call(command)? {
            Response::Created { id } => Ok(id),
            other => Err(TrackerError::Protocol(format!(
                "expected creation report, got {other:?}"
            ))),
        }
    }

    /// Bytes shipped across the MI boundary so far (bench metric).
    pub fn bytes_transferred(&self) -> u64 {
        self.session
            .as_ref()
            .map(|s| s.client.transport().counters().bytes_total())
            .unwrap_or(0)
    }
}

impl Tracker for MiTracker {
    fn start(&mut self) -> Result<PauseReason> {
        let r = self.control(Command::Start)?;
        self.started = true;
        Ok(r)
    }

    fn resume(&mut self) -> Result<PauseReason> {
        self.control(Command::Resume)
    }

    fn step(&mut self) -> Result<PauseReason> {
        self.control(Command::Step)
    }

    fn next(&mut self) -> Result<PauseReason> {
        self.control(Command::Next)
    }

    fn finish(&mut self) -> Result<PauseReason> {
        self.control(Command::Finish)
    }

    fn break_before_line(&mut self, line: u32) -> Result<ControlPointId> {
        self.created(Command::SetBreakLine { line })
    }

    fn break_before_func(
        &mut self,
        function: &str,
        maxdepth: Option<u32>,
    ) -> Result<ControlPointId> {
        self.created(Command::SetBreakFunc {
            function: function.to_owned(),
            maxdepth,
        })
    }

    fn track_function(&mut self, function: &str, maxdepth: Option<u32>) -> Result<ControlPointId> {
        self.created(Command::TrackFunction {
            function: function.to_owned(),
            maxdepth,
        })
    }

    fn watch(&mut self, variable: &str) -> Result<ControlPointId> {
        self.created(Command::Watch {
            variable: variable.to_owned(),
        })
    }

    fn remove(&mut self, id: ControlPointId) -> Result<()> {
        self.call(Command::Delete { id })?;
        Ok(())
    }

    fn terminate(&mut self) {
        if let Some(session) = self.session.take() {
            session.shutdown();
        }
    }

    fn pause_reason(&self) -> PauseReason {
        self.last_reason.clone()
    }

    fn get_current_frame(&mut self) -> Result<Frame> {
        Ok(self.get_state()?.frame)
    }

    fn get_state(&mut self) -> Result<ProgramState> {
        match self.inspect(Command::GetState)? {
            Response::State(st) => Ok(*st),
            other => Err(TrackerError::Protocol(format!(
                "expected state, got {other:?}"
            ))),
        }
    }

    fn get_global_variables(&mut self) -> Result<Vec<Variable>> {
        match self.inspect(Command::GetGlobals)? {
            Response::Globals(gs) => Ok(gs),
            other => Err(TrackerError::Protocol(format!(
                "expected globals, got {other:?}"
            ))),
        }
    }

    fn get_variable(&mut self, name: &str) -> Result<Option<Variable>> {
        match self.inspect(Command::GetVariable {
            name: name.to_owned(),
        })? {
            Response::Variable(v) => Ok(v),
            other => Err(TrackerError::Protocol(format!(
                "expected variable, got {other:?}"
            ))),
        }
    }

    fn get_exit_code(&mut self) -> Option<i64> {
        match self.inspect(Command::GetExitCode) {
            Ok(Response::ExitCode(c)) => c,
            _ => None,
        }
    }

    fn get_output(&mut self) -> Result<String> {
        match self.inspect(Command::GetOutput)? {
            Response::Output(o) => Ok(o),
            other => Err(TrackerError::Protocol(format!(
                "expected output, got {other:?}"
            ))),
        }
    }

    fn get_source(&mut self) -> Result<(String, String)> {
        match self.inspect(Command::GetSource)? {
            Response::Source { file, text } => Ok((file, text)),
            other => Err(TrackerError::Protocol(format!(
                "expected source, got {other:?}"
            ))),
        }
    }

    fn breakable_lines(&mut self) -> Result<Vec<u32>> {
        match self.inspect(Command::GetBreakableLines)? {
            Response::Lines(lines) => Ok(lines),
            other => Err(TrackerError::Protocol(format!(
                "expected lines, got {other:?}"
            ))),
        }
    }

    fn low_level(&mut self) -> Option<&mut dyn LowLevel> {
        Some(self)
    }

    fn stats(&self) -> obs::Snapshot {
        self.obs.snapshot()
    }
}

impl LowLevel for MiTracker {
    fn registers(&mut self) -> Result<Vec<Variable>> {
        match self.inspect(Command::GetRegisters)? {
            Response::Registers(regs) => Ok(regs),
            other => Err(TrackerError::Protocol(format!(
                "expected registers, got {other:?}"
            ))),
        }
    }

    fn read_memory(&mut self, addr: u64, len: u64) -> Result<Vec<u8>> {
        match self.inspect(Command::ReadMemory { addr, len })? {
            Response::Memory(bytes) => Ok(bytes),
            other => Err(TrackerError::Protocol(format!(
                "expected memory, got {other:?}"
            ))),
        }
    }
}

impl Drop for MiTracker {
    fn drop(&mut self) {
        self.terminate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::{Content, ExitStatus, Prim};

    const C_PROG: &str = "int square(int x) {\nreturn x * x;\n}\nint main() {\nint s = 0;\nfor (int i = 1; i <= 3; i++) {\ns += square(i);\n}\nreturn s;\n}";

    #[test]
    fn full_session_over_the_boundary() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        assert_eq!(t.pause_reason(), PauseReason::NotStarted);
        let r = t.start().unwrap();
        assert_eq!(r, PauseReason::Started);
        t.track_function("square", None).unwrap();
        let mut calls = 0;
        loop {
            match t.resume().unwrap() {
                PauseReason::FunctionCall { .. } => {
                    calls += 1;
                    let frame = t.get_current_frame().unwrap();
                    assert_eq!(frame.name(), "square");
                    let x = frame.variable("x").unwrap();
                    match x.value().content() {
                        Content::Primitive(Prim::Int(v)) => assert_eq!(*v, calls),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                PauseReason::FunctionReturn { .. } => {}
                PauseReason::Exited(ExitStatus::Exited(code)) => {
                    assert_eq!(code, 14);
                    break;
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(calls, 3);
        assert!(t.bytes_transferred() > 0, "traffic really crossed the pipe");
        t.terminate();
    }

    #[test]
    fn asm_tracker_speaks_the_same_api() {
        let src = "main:\n    li a0, 5\n    call triple\n    li a7, 93\n    ecall\ntriple:\n    li t0, 3\n    mul a0, a0, t0\n    ret";
        let mut t = MiTracker::load_asm("p.s", src).unwrap();
        t.start().unwrap();
        t.track_function("triple", None).unwrap();
        let r = t.resume().unwrap();
        assert!(matches!(r, PauseReason::FunctionCall { .. }));
        let regs = t.low_level().unwrap().registers().unwrap();
        let a0 = regs.iter().find(|v| v.name() == "a0").unwrap();
        assert_eq!(state::render_value(a0.value()), "5");
        let r = t.resume().unwrap();
        assert!(matches!(r, PauseReason::FunctionReturn { .. }));
        let r = t.resume().unwrap();
        assert_eq!(r, PauseReason::Exited(ExitStatus::Exited(15)));
    }

    #[test]
    fn load_errors_are_reported() {
        assert!(matches!(
            MiTracker::load_c("bad.c", "int main() { return x; }"),
            Err(TrackerError::Load(_))
        ));
        assert!(matches!(
            MiTracker::load_asm("bad.s", "frobnicate a0"),
            Err(TrackerError::Load(_))
        ));
    }

    #[test]
    fn engine_errors_surface() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        assert!(matches!(t.resume(), Err(TrackerError::Engine(_))));
        t.start().unwrap();
        assert!(matches!(
            t.break_before_func("nope", None),
            Err(TrackerError::Engine(_))
        ));
    }

    #[test]
    fn terminate_is_idempotent_and_drop_safe() {
        let mut t = MiTracker::load_c("p.c", C_PROG).unwrap();
        t.start().unwrap();
        t.terminate();
        t.terminate();
        assert!(matches!(t.resume(), Err(TrackerError::Engine(_))));
    }

    #[test]
    fn memory_reads_via_low_level() {
        let mut t = MiTracker::load_c("p.c", "int g = 7;\nint main() {\nreturn g;\n}").unwrap();
        t.start().unwrap();
        let g = t.get_variable("g").unwrap().unwrap();
        let addr = g.value().address().unwrap();
        let bytes = t.low_level().unwrap().read_memory(addr, 4).unwrap();
        assert_eq!(bytes, 7i32.to_le_bytes());
    }
}
