//! EasyTracker: a library for controlling and inspecting program
//! execution, reproduced in Rust.
//!
//! This crate is the paper's contribution (CGO 2024): one simple,
//! imperative, **language-agnostic** API — the [`Tracker`] trait — for
//! running a program (the *inferior*), pausing it at interesting points,
//! and inspecting its state in the serializable representation of the
//! [`state`] crate. Visualization tools are written once against the
//! trait and work on every supported inferior language.
//!
//! Three tracker families are provided:
//!
//! * [`MiTracker`] — the GDB-tracker analogue (paper Fig. 4): the inferior
//!   runs behind a machine-interface boundary (serialized commands over a
//!   byte transport, engine on its own thread), for MiniC (`.c`) and
//!   RISC-V assembly (`.s`);
//! * [`PyTracker`] — the Python-tracker analogue (paper Fig. 5): the
//!   MiniPy interpreter runs on a dedicated inferior thread with a
//!   `settrace`-style hook; control calls block until the inferior pauses;
//! * [`ReplayTracker`] — the trace tracker of §III-E: the full control API
//!   implemented over a pre-recorded execution, enabling tools to run on
//!   traces (and traces to be made from tools).
//!
//! # Naming
//!
//! The inspection methods keep the paper's `get_*` spelling
//! (`get_current_frame`, `get_exit_code`, ...) instead of Rust's bare
//! getter convention: the whole point of this crate is that a reader of
//! the paper (or of the original Python library) can map its API onto
//! this one line by line.
//!
//! # Examples
//!
//! The paper's Listing 1 (the stack-and-heap tool's control loop),
//! unchanged across languages:
//!
//! ```
//! use easytracker::{init_tracker, Tracker};
//!
//! # fn main() -> Result<(), easytracker::TrackerError> {
//! let mut tracker = init_tracker("prog.py", "x = [1, 2]\ny = x\n")?;
//! tracker.start()?;
//! let mut snapshots = 0;
//! while tracker.get_exit_code().is_none() {
//!     let frame = tracker.get_current_frame()?;
//!     assert_eq!(frame.name(), "<module>");
//!     snapshots += 1;
//!     tracker.step()?;
//! }
//! tracker.terminate();
//! assert_eq!(snapshots, 2);
//! # Ok(())
//! # }
//! ```

pub mod mi_tracker;
pub mod py_tracker;
pub mod recording;

pub use mi_tracker::{MiTracker, PortWrapper, ProgramSpec, SessionHealth, Supervision};
pub use py_tracker::PyTracker;
pub use recording::{RecordedStep, Recording, ReplayTracker};

pub use state::{
    AbstractType, Content, Diagnostic, DiagnosticKind, ExitStatus, Frame, Location, PauseReason,
    Prim, ProgramState, Scope, Severity, SourceLocation, Value, Variable,
};

use std::fmt;

/// Identifier of a control point (breakpoint, watchpoint or tracked
/// function), returned by the control interface.
pub type ControlPointId = u64;

/// Errors reported by trackers.
#[derive(Debug, Clone, PartialEq)]
pub enum TrackerError {
    /// The inferior failed to compile/parse/assemble.
    Load(String),
    /// A machine-interface/protocol failure.
    Protocol(String),
    /// The engine rejected the request.
    Engine(String),
    /// Control/inspection before `start`.
    NotStarted,
    /// The operation is not supported by this tracker.
    Unsupported(String),
    /// The supervised session lost its engine and could not re-establish
    /// an equivalent one (respawn budget exhausted, or the re-established
    /// state diverged from the journal). The tracker stays alive but
    /// refuses further engine traffic rather than answering from a state
    /// it cannot vouch for.
    SessionDegraded(String),
    /// A hard per-session resource budget (`set_limits`) was exceeded.
    /// Terminal: execution is deterministic, so replaying the journal
    /// would burn the same budget again — the session is not recovered.
    /// `which` names the exhausted resource (`steps`, `heap_bytes`,
    /// `wall_ms`, `queue_depth`).
    ResourceExhausted {
        which: String,
        used: u64,
        limit: u64,
    },
    /// The host shed this request before it touched the engine (session
    /// cap or queue bound), and the port's bounded backoff retries did
    /// not get through. Retryable later; nothing executed.
    Overloaded(String),
}

impl fmt::Display for TrackerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackerError::Load(m) => write!(f, "failed to load inferior: {m}"),
            TrackerError::Protocol(m) => write!(f, "machine-interface failure: {m}"),
            TrackerError::Engine(m) => write!(f, "{m}"),
            TrackerError::NotStarted => write!(f, "inferior not started"),
            TrackerError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            TrackerError::SessionDegraded(m) => write!(f, "session degraded: {m}"),
            TrackerError::ResourceExhausted { which, used, limit } => {
                write!(f, "resource budget exhausted: {which} {used}/{limit}")
            }
            TrackerError::Overloaded(m) => write!(f, "host overloaded: {m}"),
        }
    }
}

impl std::error::Error for TrackerError {}

impl From<mi::MiError> for TrackerError {
    fn from(e: mi::MiError) -> Self {
        TrackerError::Protocol(e.to_string())
    }
}

/// Result alias for tracker operations.
pub type Result<T> = std::result::Result<T, TrackerError>;

/// The language-agnostic control and inspection interface (paper §II-B).
///
/// **Control calls return only when the inferior is paused or
/// terminated**, reporting the [`PauseReason`]. Inspection calls are valid
/// while the inferior is paused.
pub trait Tracker {
    // ---- control (paper Listings 2 and 3) -------------------------------

    /// Starts the inferior, pausing before its first line executes.
    ///
    /// # Errors
    ///
    /// Fails when called twice or when the engine is unreachable.
    fn start(&mut self) -> Result<PauseReason>;

    /// Resumes until the next control point (breakpoint, watchpoint,
    /// tracked-function boundary) or termination.
    ///
    /// # Errors
    ///
    /// Fails before `start` or when the engine is unreachable.
    fn resume(&mut self) -> Result<PauseReason>;

    /// Executes until the next source line, entering function calls.
    ///
    /// # Errors
    ///
    /// Fails before `start` or when the engine is unreachable.
    fn step(&mut self) -> Result<PauseReason>;

    /// Executes until the next source line in the current (or an outer)
    /// frame, stepping over calls.
    ///
    /// # Errors
    ///
    /// Fails before `start` or when the engine is unreachable.
    fn next(&mut self) -> Result<PauseReason>;

    /// Executes until the current function returns to its caller.
    ///
    /// # Errors
    ///
    /// Fails in the outermost frame, before `start`, or when the engine is
    /// unreachable.
    fn finish(&mut self) -> Result<PauseReason>;

    /// Pauses the inferior just before executing `line` (sliding to the
    /// next line holding code, like GDB).
    ///
    /// # Errors
    ///
    /// Fails when no executable line exists at or after `line`.
    fn break_before_line(&mut self, line: u32) -> Result<ControlPointId>;

    /// Pauses just after entering `function` (arguments are bound).
    /// `maxdepth` filters out hits deeper than the given 0-based call
    /// depth.
    ///
    /// # Errors
    ///
    /// Fails for unknown functions.
    fn break_before_func(
        &mut self,
        function: &str,
        maxdepth: Option<u32>,
    ) -> Result<ControlPointId>;

    /// Pauses at every entry of `function` *and* just before each of its
    /// returns (the returning frame is still inspectable).
    ///
    /// # Errors
    ///
    /// Fails for unknown functions.
    fn track_function(&mut self, function: &str, maxdepth: Option<u32>) -> Result<ControlPointId>;

    /// Pauses whenever the variable changes value. Names are `var`,
    /// `function::var`, or engine-specific identifiers (registers,
    /// `*0xADDR:LEN` memory ranges for the assembly engine).
    ///
    /// # Errors
    ///
    /// Fails when the identifier cannot be watched.
    fn watch(&mut self, variable: &str) -> Result<ControlPointId>;

    /// Removes a control point.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids.
    fn remove(&mut self, id: ControlPointId) -> Result<()>;

    /// Stops the inferior and releases its resources. Idempotent.
    fn terminate(&mut self);

    // ---- inspection (paper Listings 4 and 5) ------------------------------

    /// Why the inferior is currently paused.
    fn pause_reason(&self) -> PauseReason;

    /// The innermost frame with its full parent chain.
    ///
    /// # Errors
    ///
    /// Fails before `start` or after termination.
    fn get_current_frame(&mut self) -> Result<Frame>;

    /// The full serializable snapshot (frames + globals + reason).
    ///
    /// # Errors
    ///
    /// Fails before `start` or after termination.
    fn get_state(&mut self) -> Result<ProgramState>;

    /// The global variables.
    ///
    /// # Errors
    ///
    /// Fails when the engine is unreachable.
    fn get_global_variables(&mut self) -> Result<Vec<Variable>>;

    /// Looks one variable up by (possibly `function::`-qualified) name.
    ///
    /// # Errors
    ///
    /// Fails when the engine is unreachable (an unknown name is `None`).
    fn get_variable(&mut self, name: &str) -> Result<Option<Variable>>;

    /// The inferior's exit code; `None` while it is still running.
    fn get_exit_code(&mut self) -> Option<i64>;

    /// Output produced since the last call.
    ///
    /// # Errors
    ///
    /// Fails when the engine is unreachable.
    fn get_output(&mut self) -> Result<String>;

    /// The inferior's source: `(file_name, text)`.
    ///
    /// # Errors
    ///
    /// Fails when the engine is unreachable.
    fn get_source(&mut self) -> Result<(String, String)>;

    /// Lines valid as breakpoint targets.
    ///
    /// # Errors
    ///
    /// Fails when the engine is unreachable.
    fn breakable_lines(&mut self) -> Result<Vec<u32>>;

    /// The current source line of the innermost frame, when paused.
    fn current_line(&mut self) -> Option<u32> {
        self.get_current_frame().ok().map(|f| f.location().line())
    }

    /// Engine-specific low-level access (the paper's `get_registers_gdb` /
    /// `get_value_at_gdb`); `None` for trackers without one.
    fn low_level(&mut self) -> Option<&mut dyn LowLevel> {
        None
    }

    // ---- analysis ---------------------------------------------------------

    /// Runs the static memory-safety analysis over the loaded program and
    /// returns its findings. Purely compile-time: valid before `start`,
    /// and the inferior does not run. The default fails for trackers
    /// whose language has no analysis.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Unsupported`] by default; MI trackers also fail
    /// when the engine is unreachable.
    fn diagnostics(&mut self) -> Result<Vec<Diagnostic>> {
        Err(TrackerError::Unsupported(
            "static diagnostics are not available for this tracker".into(),
        ))
    }

    /// Switches the runtime memory sanitizer on or off. Must be called
    /// before `start`; sanitized runs pause with
    /// [`PauseReason::Sanitizer`] at every memory-safety trap. The
    /// default fails for trackers without a sanitizer.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Unsupported`] by default; MI trackers also fail
    /// after `start` or when the engine is unreachable.
    fn set_sanitizer(&mut self, on: bool) -> Result<()> {
        let _ = on;
        Err(TrackerError::Unsupported(
            "sanitized execution is not available for this tracker".into(),
        ))
    }

    /// Arms or disarms the in-engine profiler. `Counting` attributes
    /// every VM step exactly; `Sampling` attributes on a
    /// seeded-deterministic interval clock with mean `period` steps, so
    /// the same mode and period always produce the same profile. Must be
    /// called before `start`. The default fails for trackers without a
    /// profiler.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Unsupported`] by default; MI trackers also fail
    /// after `start` or when the engine is unreachable.
    fn set_profile(&mut self, mode: obs::ProfileMode, period: u64) -> Result<()> {
        let _ = (mode, period);
        Err(TrackerError::Unsupported(
            "profiling is not available for this tracker".into(),
        ))
    }

    /// Drains the collected profile: cumulative over the whole run so
    /// far, idempotent, and safe to call repeatedly while the inferior
    /// is paused. The default fails for trackers without a profiler.
    ///
    /// # Errors
    ///
    /// [`TrackerError::Unsupported`] by default; MI trackers also fail
    /// when the engine is unreachable.
    fn profile(&mut self) -> Result<obs::ProfileReport> {
        Err(TrackerError::Unsupported(
            "profiling is not available for this tracker".into(),
        ))
    }

    // ---- observability ----------------------------------------------------

    /// Point-in-time view of this tracker's metrics: control-call latency
    /// histograms, inspection counters, MI byte gauges, and VM execution
    /// stats. The default is an empty snapshot for trackers that do not
    /// report.
    fn stats(&self) -> obs::Snapshot {
        obs::Snapshot::default()
    }
}

/// Low-level, engine-specific inspection (registers and raw memory).
pub trait LowLevel {
    /// Machine registers as language-agnostic variables.
    ///
    /// # Errors
    ///
    /// Fails when the engine is unreachable.
    fn registers(&mut self) -> Result<Vec<Variable>>;

    /// Raw memory bytes.
    ///
    /// # Errors
    ///
    /// Fails for unmapped ranges.
    fn read_memory(&mut self, addr: u64, len: u64) -> Result<Vec<u8>>;
}

/// Creates the right tracker for a source file, like the paper's
/// `init_tracker` + `load_program` pair: `.c` and `.s` files get the
/// machine-interface tracker (MiniC / RISC-V engines), `.py` files get the
/// in-process thread-based tracker, `.json` recordings get the replay
/// tracker.
///
/// # Errors
///
/// Returns [`TrackerError::Load`] for unknown extensions or programs that
/// fail to compile.
///
/// # Examples
///
/// ```
/// let mut t = easytracker::init_tracker("q.c", "int main() { return 0; }")?;
/// t.start()?;
/// # Ok::<(), easytracker::TrackerError>(())
/// ```
pub fn init_tracker(file: &str, source: &str) -> Result<Box<dyn Tracker>> {
    init_tracker_with_registry(file, source, obs::Registry::new())
}

/// Like [`init_tracker`], but the tracker (and every layer beneath it —
/// MI client/server, VM engine) reports metrics and trace events into
/// `registry`. Passing the same registry to several trackers aggregates
/// them into one profile.
///
/// # Errors
///
/// Returns [`TrackerError::Load`] for unknown extensions or programs that
/// fail to compile.
pub fn init_tracker_with_registry(
    file: &str,
    source: &str,
    registry: obs::Registry,
) -> Result<Box<dyn Tracker>> {
    if file.ends_with(".c") {
        Ok(Box::new(MiTracker::load_c_with_registry(
            file, source, registry,
        )?))
    } else if file.ends_with(".s") || file.ends_with(".asm") {
        Ok(Box::new(MiTracker::load_asm_with_registry(
            file, source, registry,
        )?))
    } else if file.ends_with(".py") {
        Ok(Box::new(PyTracker::load_with_registry(
            file, source, registry,
        )?))
    } else if file.ends_with(".json") {
        let recording: Recording = serde_json::from_str(source)
            .map_err(|e| TrackerError::Load(format!("bad recording: {e}")))?;
        Ok(Box::new(ReplayTracker::with_registry(recording, registry)))
    } else {
        Err(TrackerError::Load(format!(
            "cannot infer language from file name `{file}` (.c, .s, .py, .json)"
        )))
    }
}
