//! Micro-benchmark of the span hot path: create + tag + finish, with
//! and without a sink attached. The detached case is what every
//! production tracker pays per control call when nobody is profiling;
//! the attached case adds trace-event construction and the ring push.
//!
//! Run with: `cargo run --release -p obs --example span_micro`

use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 200_000u32;
    for with_sink in [false, true] {
        let reg = obs::Registry::new();
        if with_sink {
            reg.add_sink(Arc::new(obs::ExportSink::new(8192)));
        }
        let t = Instant::now();
        for _ in 0..n {
            let mut s = reg.span("tracker.control.resume");
            s.tag("reason", "FunctionCall");
            s.finish();
        }
        let el = t.elapsed();
        println!(
            "with_sink={with_sink}: {el:?} total, {:.0}ns/span",
            el.as_nanos() as f64 / f64::from(n)
        );
    }
}
