//! Always-on flight recorder: a bounded ring of the last things that
//! happened on one side of the MI pipe, dumped as a structured JSON
//! post-mortem when a session dies.
//!
//! Both the tracker and the `mi-server` engine keep one. Recording is a
//! mutex-guarded ring push — cheap enough to leave on everywhere. On the
//! engine side the ring cannot be fetched once the process is dead, so
//! the server prints it as a single marked stderr line
//! ([`STDERR_MARKER`]) on the way down; the tracker's stderr tail
//! capture (bounded, keeps the last 8 KB) carries it across the grave,
//! and [`extract_last_gasp`] recovers it from the captured tail.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Marker prefixing the engine's last-gasp flight log on stderr.
pub const STDERR_MARKER: &str = "MI-FLIGHT-RECORDER ";

/// Longest detail string retained per entry; long payloads (full state
/// snapshots, source text) are truncated so the ring — and the one-line
/// stderr last-gasp — stays bounded.
const DETAIL_CAP: usize = 160;

/// One recorded moment: a command sent, a response, a pause reason, a
/// sanitizer trap, a retry, a respawn.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlightEntry {
    /// Monotonic sequence number; never reused, so gaps reveal eviction.
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Entry kind, e.g. `cmd`, `resp`, `pause`, `trap`, `retry`, `respawn`.
    pub kind: String,
    pub detail: String,
}

/// The serializable contents of a [`FlightRecorder`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlightLog {
    pub entries: Vec<FlightEntry>,
    /// Entries evicted from the ring before this log was taken.
    pub dropped: u64,
}

impl FlightLog {
    /// Most recent entry of `kind`, if any survived in the ring.
    pub fn last_of(&self, kind: &str) -> Option<&FlightEntry> {
        self.entries.iter().rev().find(|e| e.kind == kind)
    }
}

struct FlightInner {
    epoch: Instant,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<FlightEntry>,
}

/// Cheaply cloneable handle to one side's bounded event ring.
#[derive(Clone)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Arc<Mutex<FlightInner>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(256)
    }
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Arc::new(Mutex::new(FlightInner {
                epoch: Instant::now(),
                next_seq: 0,
                dropped: 0,
                buf: VecDeque::new(),
            })),
        }
    }

    /// Appends an entry, evicting the oldest when full. `detail` is
    /// truncated to a bounded length.
    pub fn record(&self, kind: &str, detail: impl Into<String>) {
        let mut detail = detail.into();
        if detail.len() > DETAIL_CAP {
            let mut cut = DETAIL_CAP;
            while !detail.is_char_boundary(cut) {
                cut -= 1;
            }
            detail.truncate(cut);
            detail.push('…');
        }
        let mut inner = self.inner.lock().unwrap();
        let at_us = inner.epoch.elapsed().as_micros() as u64;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(FlightEntry {
            seq,
            at_us,
            kind: kind.to_string(),
            detail,
        });
    }

    /// Copies out the ring, oldest first.
    pub fn log(&self) -> FlightLog {
        let inner = self.inner.lock().unwrap();
        FlightLog {
            entries: inner.buf.iter().cloned().collect(),
            dropped: inner.dropped,
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the log as the one-line last-gasp stderr record.
    pub fn last_gasp_line(&self) -> String {
        let json = serde_json::to_string(&self.log()).unwrap_or_else(|_| "{}".into());
        format!("{STDERR_MARKER}{json}")
    }
}

/// Recovers the engine's last-gasp [`FlightLog`] from a captured stderr
/// tail, taking the last marked line (the tail may truncate earlier
/// ones mid-line).
pub fn extract_last_gasp(stderr: &str) -> Option<FlightLog> {
    stderr
        .lines()
        .rev()
        .filter_map(|line| {
            line.find(STDERR_MARKER)
                .map(|i| &line[i + STDERR_MARKER.len()..])
        })
        .find_map(|json| serde_json::from_str(json).ok())
}

/// A complete post-mortem artifact: why the session died, what the
/// tracker side saw last, and — when the engine's last gasp made it out
/// through the stderr tail — what the engine side saw last.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlightDump {
    /// Which side produced the dump (`tracker` or `engine`).
    pub side: String,
    /// The error that triggered it, e.g. `EngineDied`, `SessionDegraded`.
    pub reason: String,
    /// The last MI command sent before the failure.
    pub last_command: String,
    /// The last pause reason the tracker observed.
    pub last_pause: String,
    /// Respawns consumed by the supervisor up to the dump.
    pub respawns: u64,
    /// This side's ring.
    pub log: FlightLog,
    /// The engine's last-gasp ring, when recovered from stderr.
    pub engine_log: Option<FlightLog>,
    /// Raw captured engine stderr tail.
    pub engine_stderr: String,
}

impl FlightDump {
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".into())
    }

    pub fn from_json(text: &str) -> Option<FlightDump> {
        serde_json::from_str(text).ok()
    }

    /// Writes the dump into `dir` under a collision-free name and
    /// returns the path.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(dir)?;
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!(
            "easytracker-flight-{}-{n}.json",
            std::process::id()
        ));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        f.flush()?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_entries_and_counts_drops() {
        let rec = FlightRecorder::new(2);
        rec.record("cmd", "Start");
        rec.record("cmd", "Resume");
        rec.record("pause", "Breakpoint");
        let log = rec.log();
        assert_eq!(log.entries.len(), 2);
        assert_eq!(log.dropped, 1);
        // Seqs are global, so the surviving window is identifiable.
        assert_eq!(log.entries[0].seq, 1);
        assert_eq!(log.entries[1].seq, 2);
        assert_eq!(log.last_of("cmd").unwrap().detail, "Resume");
        assert!(log.last_of("trap").is_none());
    }

    #[test]
    fn long_details_are_truncated() {
        let rec = FlightRecorder::new(4);
        rec.record("resp", "x".repeat(500));
        let log = rec.log();
        assert!(log.entries[0].detail.len() < 200);
        assert!(log.entries[0].detail.ends_with('…'));
    }

    #[test]
    fn last_gasp_survives_a_stderr_tail() {
        let rec = FlightRecorder::new(8);
        rec.record("cmd", "Step");
        rec.record("trap", "UseAfterFree at 0x40");
        let mut stderr = String::from("mi-server: something odd\n");
        stderr.push_str(&rec.last_gasp_line());
        stderr.push('\n');
        let log = extract_last_gasp(&stderr).expect("marked line parses");
        assert_eq!(log.entries.len(), 2);
        assert_eq!(log.last_of("trap").unwrap().detail, "UseAfterFree at 0x40");
        assert!(extract_last_gasp("no marker here\n").is_none());
    }

    #[test]
    fn dumps_roundtrip_and_write_to_disk() {
        let rec = FlightRecorder::new(8);
        rec.record("cmd", "Resume");
        rec.record("pause", "Exited(7)");
        let dump = FlightDump {
            side: "tracker".into(),
            reason: "EngineDied".into(),
            last_command: "Resume".into(),
            last_pause: "Exited(7)".into(),
            respawns: 1,
            log: rec.log(),
            engine_log: None,
            engine_stderr: String::new(),
        };
        let back = FlightDump::from_json(&dump.to_json()).unwrap();
        assert_eq!(back.last_command, "Resume");
        assert_eq!(back.respawns, 1);
        assert_eq!(back.log.entries.len(), 2);
        let dir = std::env::temp_dir().join("obs-flight-test");
        let path = dump.write_to_dir(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let read = FlightDump::from_json(&text).unwrap();
        assert_eq!(read.reason, "EngineDied");
        let _ = std::fs::remove_file(path);
    }
}
