//! Log-bucketed histograms for latency and size distributions.
//!
//! Values are `u64` (nanoseconds for latencies, bytes for sizes) and
//! land in power-of-two buckets, so `record` is a couple of arithmetic
//! ops and quantile estimates are exact to within a factor of two —
//! plenty for the order-of-magnitude cost accounting the paper's §V
//! tables call for.

use serde::{Deserialize, Serialize};

const BUCKETS: usize = 64;

/// A histogram over `u64` samples with power-of-two buckets.
#[derive(Clone)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket `i` holds values in `[2^(i-1), 2^i)`; bucket 0 holds 0.
    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }

    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate of the `q`-quantile sample (`q` in `[0, 1]`), clamped
    /// to the observed maximum.
    ///
    /// The estimate interpolates linearly *within* the power-of-two
    /// bucket holding the ranked sample. Returning the bucket's upper
    /// bound instead (as this once did) collapses every tail quantile
    /// that lands in the same bucket to one value — p95 and p99 both
    /// reading exactly `2^k` ns was the visible symptom.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i == 0 {
                    return 0;
                }
                // Rank position inside this bucket, in [1, n]: assume
                // samples spread evenly over [2^(i-1), 2^i).
                let lower = 1u64 << (i - 1);
                let width = lower; // upper - lower for a pow-2 bucket
                let pos = rank - (seen - n);
                let est = lower + (width as u128 * pos as u128 / *n as u128) as u64;
                return est.min(self.max);
            }
        }
        self.max
    }

    pub fn stats(&self) -> HistStats {
        HistStats {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }

    /// Raw bucket counts; bucket `i` holds values in `[2^(i-1), 2^i)`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Reconstructs a histogram from wire-transported parts. Extra
    /// buckets are ignored, missing ones are zero.
    pub fn from_raw(count: u64, sum: u64, max: u64, buckets: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        h.max = max;
        for (slot, b) in h.buckets.iter_mut().zip(buckets.iter()) {
            *slot = *b;
        }
        h
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Point-in-time summary of a [`Histogram`], cheap to copy around and
/// serialize into reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistStats {
    pub count: u64,
    pub sum: u64,
    pub mean: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p95, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn quantiles_bound_samples_within_a_factor_of_two() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        // True median is 500; bucketed answer must be in [500, 1000).
        assert!((500..1024).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        assert_eq!(h.quantile(1.0), 1000);
        // The tail quantiles are ordered and within-2x of the truth.
        let s = h.stats();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((990..=1000).contains(&s.p99), "p99 = {}", s.p99);
    }

    #[test]
    fn tail_quantiles_in_one_bucket_stay_distinct() {
        // 1000 samples spread across one power-of-two bucket
        // [2^19, 2^20): p95 and p99 land in the same bucket, and the
        // pre-interpolation quantile() reported both as 2^20 = 1048576.
        let mut h = Histogram::new();
        for k in 0..1000u64 {
            h.record((1 << 19) + k * 524);
        }
        let s = h.stats();
        assert!(s.p95 < s.p99, "p95 = {}, p99 = {}", s.p95, s.p99);
        assert!(s.p99 <= s.max);
        // Interpolated estimates track the true ranks within ~1%.
        let true_p95 = (1 << 19) + 949 * 524;
        assert!(
            (s.p95 as i64 - true_p95 as i64).unsigned_abs() < (1 << 19) / 64,
            "p95 = {} vs true {}",
            s.p95,
            true_p95
        );
    }

    #[test]
    fn zero_values_have_their_own_bucket() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        h.record(7);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.sum(), 1010);
    }

    #[test]
    fn stats_roundtrip_through_json() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(50);
        let s = h.stats();
        let text = serde_json::to_string(&s).unwrap();
        let back: HistStats = serde_json::from_str(&text).unwrap();
        assert_eq!(s, back);
    }
}
