//! Event sinks: where finished spans and instant events go.
//!
//! A [`Registry`](crate::Registry) fans each [`TraceEvent`] out to every
//! attached sink. Three implementations cover the common needs:
//! [`RingSink`] for in-memory inspection (last N events), [`JsonLinesSink`]
//! for streaming JSONL logs, and [`ChromeTraceSink`] for a
//! `chrome://tracing` / Perfetto-compatible profile file.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// One trace event in (a subset of) the Chrome trace-event format.
///
/// `ph` is the phase: `'X'` complete span, `'i'` instant, `'C'` counter
/// sample. Timestamps and durations are microseconds relative to the
/// owning registry's epoch. Serializable so the telemetry drain can
/// ship engine-side events over the MI wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub name: String,
    pub cat: String,
    pub ph: char,
    pub ts_us: u64,
    pub dur_us: u64,
    pub pid: u64,
    pub tid: u64,
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// Renders as a Chrome trace-event JSON object.
    pub fn to_json(&self) -> Value {
        let mut args = serde_json::Map::new();
        for (k, v) in &self.args {
            // Counter samples carry numeric args so the trace viewer
            // can chart them; everything else stays a string tag.
            if self.ph == 'C' {
                if let Ok(n) = v.parse::<u64>() {
                    args.insert(k.clone(), json!(n));
                    continue;
                }
            }
            args.insert(k.clone(), json!(v));
        }
        let mut obj = serde_json::Map::new();
        obj.insert("name".into(), json!(self.name));
        obj.insert("cat".into(), json!(self.cat));
        obj.insert("ph".into(), json!(self.ph.to_string()));
        obj.insert("ts".into(), json!(self.ts_us));
        if self.ph == 'X' {
            obj.insert("dur".into(), json!(self.dur_us));
        }
        obj.insert("pid".into(), json!(self.pid));
        obj.insert("tid".into(), json!(self.tid));
        obj.insert("args".into(), Value::Object(args));
        Value::Object(obj)
    }
}

/// Receives every event emitted through a registry.
pub trait Sink: Send + Sync {
    fn record(&self, event: &TraceEvent);

    /// Takes ownership of the event. The registry routes the last (or
    /// only) attached sink through here, so buffering sinks can store
    /// the event without cloning its strings.
    fn record_owned(&self, event: TraceEvent) {
        self.record(&event);
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Keeps the most recent `capacity` events in memory.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }
}

impl Sink for RingSink {
    fn record(&self, event: &TraceEvent) {
        self.record_owned(event.clone());
    }

    fn record_owned(&self, event: TraceEvent) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event);
    }
}

/// Bounded buffer of events addressed by an *absolute* index, so a
/// remote reader can drain incrementally and idempotently: asking for
/// "everything since index N" twice returns the same events, which is
/// what makes `Command::Telemetry` safe to retry over a flaky MI pipe.
pub struct ExportSink {
    capacity: usize,
    inner: Mutex<ExportBuf>,
}

struct ExportBuf {
    /// Absolute index of the oldest retained event.
    base: u64,
    buf: VecDeque<TraceEvent>,
}

impl ExportSink {
    pub fn new(capacity: usize) -> Self {
        ExportSink {
            capacity: capacity.max(1),
            inner: Mutex::new(ExportBuf {
                base: 0,
                buf: VecDeque::new(),
            }),
        }
    }

    /// Absolute index one past the newest event.
    pub fn next_index(&self) -> u64 {
        let b = self.inner.lock().unwrap();
        b.base + b.buf.len() as u64
    }

    /// Events with absolute index `>= since`, oldest first. Returns
    /// `(events, next_index, lost)` where `next_index` is the cursor to
    /// pass on the next call and `lost` counts events in
    /// `[since, next_index)` that had already been evicted.
    pub fn since(&self, since: u64) -> (Vec<TraceEvent>, u64, u64) {
        let b = self.inner.lock().unwrap();
        let end = b.base + b.buf.len() as u64;
        let start = since.max(b.base);
        let events = if start >= end {
            Vec::new()
        } else {
            b.buf
                .iter()
                .skip((start - b.base) as usize)
                .cloned()
                .collect()
        };
        let lost = b.base.saturating_sub(since);
        (events, end, lost)
    }
}

impl Sink for ExportSink {
    fn record(&self, event: &TraceEvent) {
        self.record_owned(event.clone());
    }

    fn record_owned(&self, event: TraceEvent) {
        let mut b = self.inner.lock().unwrap();
        if b.buf.len() == self.capacity {
            b.buf.pop_front();
            b.base += 1;
        }
        b.buf.push_back(event);
    }
}

/// Writes each event as one JSON object per line.
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut out = self.out.lock().unwrap();
        // A full sink must not take down the instrumented program.
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

/// Collects events and serializes them as a Chrome trace-event file
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing`,
/// Perfetto, or Speedscope.
#[derive(Default)]
pub struct ChromeTraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl ChromeTraceSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the collected events, e.g. to merge with another
    /// process's lane via [`crate::telemetry::merge_chrome_trace`].
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Serializes the collected profile into `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let events = self.events.lock().unwrap();
        let list: Vec<Value> = events.iter().map(TraceEvent::to_json).collect();
        let doc = json!({
            "traceEvents": list,
            "displayTimeUnit": "ms",
        });
        write!(w, "{doc}")
    }

    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)?;
        f.flush()
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, event: &TraceEvent) {
        self.record_owned(event.clone());
    }

    fn record_owned(&self, event: TraceEvent) {
        self.events.lock().unwrap().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "test".into(),
            ph: 'X',
            ts_us: ts,
            dur_us: 3,
            pid: 1,
            tid: 1,
            args: vec![("k".into(), "v".into())],
        }
    }

    #[test]
    fn ring_sink_drops_oldest() {
        let ring = RingSink::new(2);
        ring.record(&ev("a", 1));
        ring.record(&ev("b", 2));
        ring.record(&ev("c", 3));
        let names: Vec<String> = ring.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(&ev("a", 1));
        sink.record(&ev("b", 2));
        let bytes = sink.out.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["ph"], "X");
            assert_eq!(v["args"]["k"], "v");
        }
    }

    #[test]
    fn chrome_sink_emits_trace_events_document() {
        let sink = ChromeTraceSink::new();
        sink.record(&ev("span", 10));
        let mut out = Vec::new();
        sink.write_to(&mut out).unwrap();
        let doc: Value = serde_json::from_slice(&out).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["name"], "span");
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["dur"], 3u64);
    }

    #[test]
    fn export_sink_drains_idempotently_by_absolute_index() {
        let sink = ExportSink::new(3);
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            sink.record(&ev(name, i as u64));
        }
        // "a" (index 0) was evicted; the window is [1, 4).
        let (events, next, lost) = sink.since(0);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b", "c", "d"]);
        assert_eq!(next, 4);
        assert_eq!(lost, 1);
        // Same cursor, same answer — retry-safe.
        let (again, next2, _) = sink.since(0);
        assert_eq!(again.len(), events.len());
        assert_eq!(next2, next);
        // Advancing the cursor yields nothing new.
        let (rest, next3, lost3) = sink.since(next);
        assert!(rest.is_empty());
        assert_eq!(next3, next);
        assert_eq!(lost3, 0);
    }

    #[test]
    fn trace_events_roundtrip_through_serde() {
        let e = ev("wire", 9);
        let text = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&text).unwrap();
        assert_eq!(back.name, "wire");
        assert_eq!(back.ph, 'X');
        assert_eq!(back.ts_us, 9);
        assert_eq!(back.args, e.args);
    }

    #[test]
    fn counter_events_carry_numeric_args() {
        let e = TraceEvent {
            name: "vm.ops".into(),
            cat: "counter".into(),
            ph: 'C',
            ts_us: 5,
            dur_us: 0,
            pid: 1,
            tid: 1,
            args: vec![("value".into(), "42".into())],
        };
        let v = e.to_json();
        assert_eq!(v["args"]["value"], 42u64);
    }
}
