//! Cross-process telemetry: the wire form of a registry drain, the
//! tracker↔engine monotonic-clock offset estimator, and the two-lane
//! Chrome-trace merge.
//!
//! The MI engine runs in its own process with its own [`Registry`],
//! whose epoch (and therefore every `ts_us`) is meaningless to the
//! tracker. Three pieces bridge the gap:
//!
//! * [`TelemetryFrame`] — everything one `Command::Telemetry` drain
//!   ships back: cumulative counters/gauges, full histograms, and the
//!   trace events newer than the client-held cursor. Because counters
//!   and histograms are *cumulative* and events are addressed by an
//!   absolute index ([`crate::ExportSink`]), draining is idempotent: a
//!   supervised retry of the same drain returns the same frame.
//! * [`ClockSync`] — estimates `engine_clock − tracker_clock` from Ping
//!   roundtrips, keeping the sample with the smallest RTT (the midpoint
//!   assumption errs by at most RTT/2, so the tightest roundtrip wins).
//! * [`merge_chrome_trace`] — re-stamps engine events onto the tracker
//!   timeline and emits one document with two process lanes, so a
//!   `tracker.control.Resume` span visually contains the
//!   `vm.minic.exec` span it caused.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::sink::ExportSink;
use crate::{Histogram, Registry, TraceEvent};

/// Chrome-trace process lane for tracker-side events.
pub const TRACKER_PID: u64 = 1;
/// Chrome-trace process lane for engine-side events after the merge.
pub const ENGINE_PID: u64 = 2;

/// A [`Histogram`] in wire form: fixed arrays don't serialize through
/// the vendored serde, so buckets travel as a `Vec` (trailing zero
/// buckets trimmed to keep frames small).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireHistogram {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl WireHistogram {
    pub fn from_histogram(h: &Histogram) -> WireHistogram {
        let mut buckets: Vec<u64> = h.bucket_counts().to_vec();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        WireHistogram {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            buckets,
        }
    }

    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_raw(self.count, self.sum, self.max, &self.buckets)
    }
}

/// One drain's worth of engine-side telemetry.
///
/// `counters`, `gauges`, and `histograms` are cumulative totals as of
/// `now_us` (engine clock); the receiver mirrors them with *set*
/// semantics, never addition, so re-delivery cannot double-count.
/// `events` are the trace events with absolute index in
/// `[requested since, next_event)`; `lost_events` counts those already
/// evicted from the bounded export ring.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryFrame {
    /// Engine-clock microseconds at collection time.
    pub now_us: u64,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, WireHistogram>,
    /// Cursor to request on the next drain.
    pub next_event: u64,
    /// Events evicted before the requested cursor could read them.
    pub lost_events: u64,
    pub events: Vec<TraceEvent>,
}

/// Collects a frame from `reg` (and the export ring, when one is
/// attached) for a drain request with cursor `since`.
pub fn collect_frame(reg: &Registry, export: Option<&ExportSink>, since: u64) -> TelemetryFrame {
    let snap = reg.snapshot();
    let histograms = reg
        .export_histograms()
        .iter()
        .map(|(k, v)| (k.clone(), WireHistogram::from_histogram(v)))
        .collect();
    let (events, next_event, lost_events) = match export {
        Some(sink) => sink.since(since),
        None => (Vec::new(), since, 0),
    };
    TelemetryFrame {
        now_us: reg.now_us(),
        counters: snap.counters,
        gauges: snap.gauges,
        histograms,
        next_event,
        lost_events,
        events,
    }
}

/// Estimates the offset between a remote monotonic clock and the local
/// one from request/response roundtrips, keeping the minimum-RTT
/// sample. All timestamps are microseconds since the respective
/// registry epochs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClockSync {
    best_rtt_us: Option<u64>,
    offset_us: i64,
}

impl ClockSync {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one roundtrip: the local clock just before sending, just
    /// after receiving, and the remote clock read while handling the
    /// request. Assumes the remote read happened at the local midpoint,
    /// which errs by at most RTT/2 — so only the tightest roundtrip is
    /// retained.
    pub fn sample(&mut self, local_send_us: u64, local_recv_us: u64, remote_us: u64) {
        let rtt = local_recv_us.saturating_sub(local_send_us);
        if self.best_rtt_us.is_some_and(|best| rtt >= best) {
            return;
        }
        let midpoint = (local_send_us + local_recv_us) / 2;
        self.best_rtt_us = Some(rtt);
        self.offset_us = remote_us as i64 - midpoint as i64;
    }

    /// `remote_clock − local_clock`, or `None` before the first sample.
    pub fn offset_us(&self) -> Option<i64> {
        self.best_rtt_us.map(|_| self.offset_us)
    }

    /// RTT of the retained (best) sample.
    pub fn rtt_us(&self) -> Option<u64> {
        self.best_rtt_us
    }

    /// Maps a remote timestamp onto the local timeline (saturating at
    /// zero — events from before the local epoch clamp to it).
    pub fn remote_to_local(&self, remote_us: u64) -> u64 {
        (remote_us as i64 - self.offset_us).max(0) as u64
    }
}

/// Merges tracker- and engine-side events into one Chrome trace-event
/// document with two named process lanes. Engine timestamps are shifted
/// onto the tracker timeline by `offset_us` (= engine − tracker, as
/// estimated by [`ClockSync`]).
pub fn merge_chrome_trace(
    tracker_events: &[TraceEvent],
    engine_events: &[TraceEvent],
    offset_us: i64,
) -> Value {
    let sync = ClockSync {
        best_rtt_us: Some(0),
        offset_us,
    };
    let mut list: Vec<Value> = Vec::with_capacity(tracker_events.len() + engine_events.len() + 2);
    for (pid, label) in [(TRACKER_PID, "tracker"), (ENGINE_PID, "engine")] {
        list.push(json!({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }));
    }
    for e in tracker_events {
        let mut e = e.clone();
        e.pid = TRACKER_PID;
        list.push(e.to_json());
    }
    for e in engine_events {
        let mut e = e.clone();
        e.pid = ENGINE_PID;
        e.ts_us = sync.remote_to_local(e.ts_us);
        list.push(e.to_json());
    }
    json!({
        "traceEvents": list,
        "displayTimeUnit": "ms",
    })
}

/// Writes a merged trace document to `path`.
pub fn save_merged_trace(
    path: &Path,
    tracker_events: &[TraceEvent],
    engine_events: &[TraceEvent],
    offset_us: i64,
) -> io::Result<()> {
    let doc = merge_chrome_trace(tracker_events, engine_events, offset_us);
    let mut f = std::fs::File::create(path)?;
    write!(f, "{doc}")?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sink;

    fn ev(name: &str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "span".into(),
            ph: 'X',
            ts_us: ts,
            dur_us: dur,
            pid: 1,
            tid: 1,
            args: Vec::new(),
        }
    }

    #[test]
    fn wire_histograms_roundtrip_losslessly() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 900, 70_000] {
            h.record(v);
        }
        let wire = WireHistogram::from_histogram(&h);
        let text = serde_json::to_string(&wire).unwrap();
        let back: WireHistogram = serde_json::from_str(&text).unwrap();
        let h2 = back.to_histogram();
        assert_eq!(h2.count(), h.count());
        assert_eq!(h2.sum(), h.sum());
        assert_eq!(h2.max(), h.max());
        assert_eq!(h2.stats(), h.stats());
        assert_eq!(h2.quantile(0.5), h.quantile(0.5));
    }

    #[test]
    fn collect_frame_is_idempotent_for_a_fixed_cursor() {
        let reg = Registry::new();
        let export = ExportSink::new(16);
        reg.add("engine.calls", 3);
        reg.set_gauge("vm.ops", 40);
        reg.record_value("vm.lat", 512);
        export.record(&ev("vm.exec", 5, 2));
        export.record(&ev("vm.exec", 9, 1));
        let a = collect_frame(&reg, Some(&export), 0);
        let b = collect_frame(&reg, Some(&export), 0);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.gauges, b.gauges);
        assert_eq!(a.next_event, b.next_event);
        assert_eq!(a.events.len(), 2);
        assert_eq!(b.events.len(), 2);
        assert_eq!(a.counters["engine.calls"], 3);
        assert_eq!(a.gauges["vm.ops"], 40);
        // Resuming from the returned cursor yields nothing new.
        let c = collect_frame(&reg, Some(&export), a.next_event);
        assert!(c.events.is_empty());
        assert_eq!(c.next_event, a.next_event);
        // Frames serialize over the vendored serde.
        let text = serde_json::to_string(&a).unwrap();
        let back: TelemetryFrame = serde_json::from_str(&text).unwrap();
        assert_eq!(back.counters, a.counters);
        assert_eq!(back.events.len(), a.events.len());
    }

    #[test]
    fn clock_sync_keeps_the_tightest_roundtrip() {
        let mut sync = ClockSync::new();
        // Wide roundtrip: local [100, 300], remote says 5200.
        sync.sample(100, 300, 5200);
        assert_eq!(sync.offset_us(), Some(5000));
        assert_eq!(sync.rtt_us(), Some(200));
        // Tighter roundtrip wins: local [400, 420], remote 5411.
        sync.sample(400, 420, 5411);
        assert_eq!(sync.offset_us(), Some(5001));
        assert_eq!(sync.rtt_us(), Some(20));
        // A looser one afterwards is ignored.
        sync.sample(500, 900, 9999);
        assert_eq!(sync.offset_us(), Some(5001));
        // Remote → local mapping undoes the offset.
        assert_eq!(sync.remote_to_local(5411), 410);
        // Pre-epoch clamps instead of wrapping.
        assert_eq!(sync.remote_to_local(0), 0);
    }

    #[test]
    fn merged_trace_has_two_named_lanes_with_aligned_times() {
        let tracker = [ev("tracker.control.Resume", 1000, 600)];
        // Engine clock runs 50_000us ahead: the exec span at engine
        // time 51_200 really happened at tracker time 1_200.
        let engine = [ev("vm.minic.exec", 51_200, 300)];
        let doc = merge_chrome_trace(&tracker, &engine, 50_000);
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 4); // 2 metadata + 2 spans
        let meta: Vec<&Value> = events.iter().filter(|e| e["ph"] == "M").collect();
        assert_eq!(meta.len(), 2);
        assert!(meta.iter().any(|e| e["args"]["name"] == "tracker"));
        assert!(meta.iter().any(|e| e["args"]["name"] == "engine"));
        let exec = events
            .iter()
            .find(|e| e["name"] == "vm.minic.exec")
            .unwrap();
        assert_eq!(exec["pid"], ENGINE_PID);
        assert_eq!(exec["ts"], 1_200u64);
        let ctrl = events
            .iter()
            .find(|e| e["name"] == "tracker.control.Resume")
            .unwrap();
        assert_eq!(ctrl["pid"], TRACKER_PID);
        // The control span [1000, 1600] contains the exec span [1200, 1500].
        assert!(ctrl["ts"].as_u64().unwrap() <= exec["ts"].as_u64().unwrap());
    }
}
