//! The in-engine profiling plane: a counting + sampling profiler for
//! the VMs, measuring where the *inferior* program spends its execution
//! — per-function self/total step units, per-line hit counts,
//! allocation-site bytes, instruction-class counts, and collapsed call
//! stacks for flamegraphs.
//!
//! # Determinism model
//!
//! The profiler has no wall clock. Its unit of cost is the VM's own
//! step count — one executed opcode (MiniC), one traced statement
//! (MiniPy), one retired instruction (MiniAsm) — delivered through
//! [`Profiler::tick`]. The sampling clock is a seeded LCG over those
//! units, so the same program under the same `{mode, period, seed}`
//! configuration produces a bit-identical profile on every run: the
//! conformance suite asserts this, and it is what makes profiles usable
//! as regression artifacts and as seed data for tier-promotion
//! decisions.
//!
//! # Modes
//!
//! * [`ProfileMode::Off`] — every hook is behind an `Option` check in
//!   the VMs; disabled cost is one untaken branch per step.
//! * [`ProfileMode::Counting`] — exact attribution: every tick charges
//!   one unit to the current function, line, and call path.
//! * [`ProfileMode::Sampling`] — the seeded clock fires every ~`period`
//!   units; the elapsed units since the previous sample are charged to
//!   the call stack captured at the sample point. Call counts,
//!   allocation sites, and instruction classes stay exact in this mode
//!   (those hooks are rare); only the per-step attribution is sampled.
//!
//! # Cursor semantics
//!
//! A [`ProfileReport`] is *cumulative*, like the counters of a
//! [`crate::TelemetryFrame`]: draining it twice returns the same (or a
//! grown) report, and receivers mirror it with set semantics, so a
//! supervised retry or a re-delivered frame cannot double-count. The
//! drain request still carries a `since` cursor — the `units` value of
//! the previous report — echoed back as [`ProfileReport::next`]; a
//! report whose `units` is *smaller* than the cursor the client sent
//! reveals a respawned engine (fresh profile), which the tracker
//! handles by rewinding its cursor to zero, exactly like the telemetry
//! event cursor.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// Default seed for the sampling clock. Fixed (not configurable over
/// the wire) so two runs of the same program with the same period are
/// comparable sample for sample.
pub const DEFAULT_SEED: u64 = 0x5eed_00d5_ca1e_d001;

/// What the profiler measures, if anything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileMode {
    /// No measurement; hooks reduce to one untaken branch per step.
    #[default]
    Off,
    /// Exact per-step attribution.
    Counting,
    /// Seeded-deterministic sampling every ~`period` step units.
    Sampling,
}

impl ProfileMode {
    /// Short lowercase name (`off`/`counting`/`sampling`), used in
    /// command summaries and bench output.
    pub fn name(self) -> &'static str {
        match self {
            ProfileMode::Off => "off",
            ProfileMode::Counting => "counting",
            ProfileMode::Sampling => "sampling",
        }
    }
}

/// Per-function bookkeeping (intern-table index order).
#[derive(Clone, Debug, Default)]
struct FuncStat {
    calls: u64,
    self_units: u64,
    total_units: u64,
    /// How many occurrences of this function are on the stack right
    /// now; `total_units` only accumulates when the *outermost*
    /// occurrence exits, so recursion is not double-counted.
    live: u32,
    /// `units` at the outermost entry.
    entry_units: u64,
}

/// One function's row of a [`ProfileReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncProfile {
    pub name: String,
    /// Times the function was entered.
    pub calls: u64,
    /// Step units attributed to the function itself.
    pub self_units: u64,
    /// Step units spent with the function anywhere on the stack
    /// (recursion counted once).
    pub total_units: u64,
}

/// One source line's row of a [`ProfileReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineProfile {
    /// 1-based source line.
    pub line: u32,
    /// Step units attributed to the line (exact hits in counting mode,
    /// sampled elapsed units in sampling mode).
    pub units: u64,
}

/// One allocation site's row of a [`ProfileReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocSiteProfile {
    /// 1-based source line of the allocation call.
    pub line: u32,
    /// Allocations performed at this site.
    pub count: u64,
    /// Total bytes requested at this site.
    pub bytes: u64,
}

/// One call path's row of a [`ProfileReport`]: a root-first stack and
/// the step units charged to it — exactly one line of a flamegraph
/// `.folded` file.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackProfile {
    /// Function names, outermost first.
    pub frames: Vec<String>,
    /// Step units charged while this exact stack was current.
    pub units: u64,
}

/// A cumulative profile drain (see the module docs for cursor and
/// idempotency semantics). Serde-safe: every collection is a `Vec` or
/// a `BTreeMap` with scalar keys, so frames travel over the vendored
/// serde unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    pub mode: ProfileMode,
    /// Sampling period in step units (0 in counting/off modes).
    pub period: u64,
    /// Seed of the sampling clock.
    pub seed: u64,
    /// Total step units executed so far; also the cursor to send as
    /// `since` on the next drain.
    pub units: u64,
    /// Samples taken so far (sampling mode).
    pub samples: u64,
    /// Cursor echo: the `units` value, for respawn detection.
    pub next: u64,
    /// Per-function rows, sorted by descending `self_units`.
    pub functions: Vec<FuncProfile>,
    /// Per-line unit counts, sorted by line.
    pub lines: Vec<LineProfile>,
    /// Allocation sites, sorted by line.
    pub alloc_sites: Vec<AllocSiteProfile>,
    /// Instruction-class counts (assembly engines).
    pub inst_classes: BTreeMap<String, u64>,
    /// Collapsed call stacks, sorted root-first lexicographically.
    pub stacks: Vec<StackProfile>,
}

impl ProfileReport {
    /// The top `n` functions by self units: `(name, self_units)`.
    /// `functions` is already sorted, so this is a prefix.
    pub fn top_self(&self, n: usize) -> Vec<(&str, u64)> {
        self.functions
            .iter()
            .take(n)
            .map(|f| (f.name.as_str(), f.self_units))
            .collect()
    }

    /// Units attributed to `line`, zero when the line never appeared.
    pub fn line_units(&self, line: u32) -> u64 {
        self.lines
            .iter()
            .find(|l| l.line == line)
            .map_or(0, |l| l.units)
    }

    /// The per-line counts in the plain form the heatmap renderer
    /// takes: `(line, units)` pairs sorted by line.
    pub fn line_counts(&self) -> Vec<(u32, u64)> {
        self.lines.iter().map(|l| (l.line, l.units)).collect()
    }

    /// The collapsed stacks in the plain form the flamegraph renderer
    /// takes: `(frames, units)` with non-zero units only.
    pub fn folded_stacks(&self) -> Vec<(Vec<String>, u64)> {
        self.stacks
            .iter()
            .filter(|s| s.units > 0 && !s.frames.is_empty())
            .map(|s| (s.frames.clone(), s.units))
            .collect()
    }

    /// Whether any measurement landed in this report.
    pub fn is_empty(&self) -> bool {
        self.units == 0 && self.functions.is_empty() && self.inst_classes.is_empty()
    }
}

/// The in-engine profiler. One per VM; never shared across threads
/// (the VMs own it behind an `Option<Box<_>>`, mirroring the sanitizer).
#[derive(Clone, Debug)]
pub struct Profiler {
    mode: ProfileMode,
    period: u64,
    seed: u64,
    rng: u64,
    /// Ticks until the next sample (sampling mode).
    countdown: u64,
    units: u64,
    samples: u64,
    /// `units` at the previous sample, for elapsed-unit attribution.
    last_sample_units: u64,
    /// Intern table: function id → name.
    names: Vec<String>,
    name_idx: HashMap<String, u32>,
    funcs: Vec<FuncStat>,
    /// Current call stack, outermost first, as intern ids.
    stack: Vec<u32>,
    /// Unique call paths and the units charged to each.
    paths: Vec<(Vec<u32>, u64)>,
    path_idx: HashMap<Vec<u32>, usize>,
    /// Index into `paths` for the current stack.
    cur_path: usize,
    /// Most recent source line, for sampled line attribution.
    cur_line: u32,
    lines: BTreeMap<u32, u64>,
    /// line → (count, bytes).
    allocs: BTreeMap<u32, (u64, u64)>,
    inst: BTreeMap<&'static str, u64>,
}

impl Profiler {
    /// Creates a profiler in `mode`. `period` is the mean sampling
    /// interval in step units (clamped to ≥ 1; ignored outside
    /// sampling mode).
    pub fn new(mode: ProfileMode, period: u64) -> Self {
        Self::with_seed(mode, period, DEFAULT_SEED)
    }

    /// Like [`Profiler::new`] with an explicit sampling-clock seed.
    pub fn with_seed(mode: ProfileMode, period: u64, seed: u64) -> Self {
        let period = period.max(1);
        let mut p = Profiler {
            mode,
            period,
            seed,
            rng: seed | 1,
            countdown: 0,
            units: 0,
            samples: 0,
            last_sample_units: 0,
            names: Vec::new(),
            name_idx: HashMap::new(),
            funcs: Vec::new(),
            stack: Vec::new(),
            paths: vec![(Vec::new(), 0)],
            path_idx: HashMap::from([(Vec::new(), 0)]),
            cur_path: 0,
            cur_line: 0,
            lines: BTreeMap::new(),
            allocs: BTreeMap::new(),
            inst: BTreeMap::new(),
        };
        p.countdown = p.next_interval();
        p
    }

    /// The configured mode.
    pub fn mode(&self) -> ProfileMode {
        self.mode
    }

    /// Whether ticks currently measure anything.
    pub fn is_active(&self) -> bool {
        self.mode != ProfileMode::Off
    }

    /// Seeded LCG step; interval drawn from `[period/2, 3*period/2)`
    /// so samples decorrelate from loop periods while the mean stays
    /// at `period`.
    fn next_interval(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter = (self.rng >> 33) % self.period;
        (self.period / 2).max(1) + jitter
    }

    /// Interns a function name, returning its stable id. VMs resolve
    /// their function indices to ids once (at arm time or first call),
    /// so the hot hooks are integer-only.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_idx.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.name_idx.insert(name.to_owned(), id);
        self.funcs.push(FuncStat::default());
        id
    }

    /// Function entry: pushes `id`, counts the call, opens the
    /// total-units window on the outermost occurrence.
    pub fn enter(&mut self, id: u32) {
        let f = &mut self.funcs[id as usize];
        f.calls += 1;
        if f.live == 0 {
            f.entry_units = self.units;
        }
        f.live += 1;
        self.stack.push(id);
        self.switch_path();
    }

    /// Function exit: pops the innermost frame and closes its
    /// total-units window when the outermost occurrence leaves.
    pub fn exit(&mut self) {
        let Some(id) = self.stack.pop() else {
            return;
        };
        let units = self.units;
        let f = &mut self.funcs[id as usize];
        f.live = f.live.saturating_sub(1);
        if f.live == 0 {
            f.total_units += units - f.entry_units;
        }
        self.switch_path();
    }

    /// Re-resolves `cur_path` after a stack change.
    fn switch_path(&mut self) {
        if let Some(&i) = self.path_idx.get(&self.stack) {
            self.cur_path = i;
            return;
        }
        let i = self.paths.len();
        self.paths.push((self.stack.clone(), 0));
        self.path_idx.insert(self.stack.clone(), i);
        self.cur_path = i;
    }

    /// Line-marker hit: remembers the line (for sampled attribution)
    /// and, in counting mode, charges a hit to it.
    pub fn line(&mut self, line: u32) {
        self.cur_line = line;
        if self.mode == ProfileMode::Counting {
            *self.lines.entry(line).or_insert(0) += 1;
        }
    }

    /// One step unit executed. The only per-step hook; everything else
    /// fires at much coarser events.
    pub fn tick(&mut self) {
        self.units += 1;
        match self.mode {
            ProfileMode::Off => {}
            ProfileMode::Counting => {
                self.paths[self.cur_path].1 += 1;
                if let Some(&top) = self.stack.last() {
                    self.funcs[top as usize].self_units += 1;
                }
            }
            ProfileMode::Sampling => {
                self.countdown -= 1;
                if self.countdown == 0 {
                    self.sample();
                    self.countdown = self.next_interval();
                }
            }
        }
    }

    /// Takes one sample: charges the units elapsed since the previous
    /// sample to the current stack, function, and line.
    fn sample(&mut self) {
        let elapsed = self.units - self.last_sample_units;
        self.last_sample_units = self.units;
        self.samples += 1;
        self.paths[self.cur_path].1 += elapsed;
        if let Some(&top) = self.stack.last() {
            self.funcs[top as usize].self_units += elapsed;
        }
        if self.cur_line != 0 {
            *self.lines.entry(self.cur_line).or_insert(0) += elapsed;
        }
    }

    /// Allocation-site hook: exact in both modes (allocations are rare
    /// next to steps).
    pub fn alloc(&mut self, line: u32, bytes: u64) {
        let e = self.allocs.entry(line).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    }

    /// Instruction-class hook (assembly engines): exact in both modes.
    pub fn inst_class(&mut self, class: &'static str) {
        *self.inst.entry(class).or_insert(0) += 1;
    }

    /// Builds the cumulative wire report. Functions still on the stack
    /// get their running total-units window included, so a paused
    /// program reports sensible totals mid-run.
    pub fn report(&self) -> ProfileReport {
        let mut functions: Vec<FuncProfile> = self
            .names
            .iter()
            .zip(&self.funcs)
            .map(|(name, f)| FuncProfile {
                name: name.clone(),
                calls: f.calls,
                self_units: f.self_units,
                total_units: f.total_units
                    + if f.live > 0 {
                        self.units - f.entry_units
                    } else {
                        0
                    },
            })
            .collect();
        functions.sort_by(|a, b| {
            b.self_units
                .cmp(&a.self_units)
                .then_with(|| a.name.cmp(&b.name))
        });
        let mut stacks: Vec<StackProfile> = self
            .paths
            .iter()
            .filter(|(frames, units)| *units > 0 && !frames.is_empty())
            .map(|(frames, units)| StackProfile {
                frames: frames
                    .iter()
                    .map(|&id| self.names[id as usize].clone())
                    .collect(),
                units: *units,
            })
            .collect();
        stacks.sort_by(|a, b| a.frames.cmp(&b.frames));
        ProfileReport {
            mode: self.mode,
            period: if self.mode == ProfileMode::Sampling {
                self.period
            } else {
                0
            },
            seed: self.seed,
            units: self.units,
            samples: self.samples,
            next: self.units,
            functions,
            lines: self
                .lines
                .iter()
                .map(|(&line, &units)| LineProfile { line, units })
                .collect(),
            alloc_sites: self
                .allocs
                .iter()
                .map(|(&line, &(count, bytes))| AllocSiteProfile { line, count, bytes })
                .collect(),
            inst_classes: self.inst.iter().map(|(&k, &v)| (k.to_owned(), v)).collect(),
            stacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates `main` calling `work` twice, 10 units each, with 5
    /// units of `main`'s own work in between.
    fn run(p: &mut Profiler) {
        let main = p.intern("main");
        let work = p.intern("work");
        p.enter(main);
        for line in [1u32, 2, 3, 4, 5] {
            p.line(line);
            p.tick();
        }
        for _ in 0..2 {
            p.enter(work);
            for _ in 0..10 {
                p.line(7);
                p.tick();
            }
            p.exit();
        }
        p.alloc(7, 64);
        p.exit();
    }

    #[test]
    fn counting_attributes_exactly() {
        let mut p = Profiler::new(ProfileMode::Counting, 0);
        run(&mut p);
        let r = p.report();
        assert_eq!(r.units, 25);
        let main = r.functions.iter().find(|f| f.name == "main").unwrap();
        let work = r.functions.iter().find(|f| f.name == "work").unwrap();
        assert_eq!((main.calls, main.self_units, main.total_units), (1, 5, 25));
        assert_eq!((work.calls, work.self_units, work.total_units), (2, 20, 20));
        // Hottest by self units first.
        assert_eq!(r.top_self(1), vec![("work", 20)]);
        assert_eq!(r.line_units(7), 20);
        assert_eq!(
            r.alloc_sites,
            vec![AllocSiteProfile {
                line: 7,
                count: 1,
                bytes: 64
            }]
        );
        let folded = r.folded_stacks();
        assert!(folded.contains(&(vec!["main".into()], 5)));
        assert!(folded.contains(&(vec!["main".into(), "work".into()], 20)));
    }

    #[test]
    fn recursion_counts_total_once() {
        let mut p = Profiler::new(ProfileMode::Counting, 0);
        let f = p.intern("f");
        p.enter(f);
        p.tick();
        p.enter(f);
        p.tick();
        p.exit();
        p.tick();
        p.exit();
        let r = p.report();
        let row = &r.functions[0];
        assert_eq!(row.calls, 2);
        assert_eq!(row.self_units, 3);
        assert_eq!(row.total_units, 3, "recursive frames counted once");
    }

    #[test]
    fn sampling_is_deterministic_and_conserves_units() {
        let run_once = || {
            let mut p = Profiler::new(ProfileMode::Sampling, 4);
            run(&mut p);
            p.report()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same seed + period → identical profile");
        assert!(a.samples > 0);
        // Sampled attribution never invents units: everything charged
        // is bounded by the units actually executed.
        let charged: u64 = a.stacks.iter().map(|s| s.units).sum();
        assert!(charged <= a.units);
        assert_eq!(a.next, a.units);
    }

    #[test]
    fn different_period_changes_the_sample_schedule() {
        let mut a = Profiler::new(ProfileMode::Sampling, 2);
        let mut b = Profiler::new(ProfileMode::Sampling, 16);
        run(&mut a);
        run(&mut b);
        assert!(a.report().samples > b.report().samples);
    }

    #[test]
    fn off_mode_measures_nothing() {
        let mut p = Profiler::new(ProfileMode::Off, 0);
        run(&mut p);
        let r = p.report();
        assert_eq!(r.units, 25, "the unit clock still advances");
        assert!(r.functions.iter().all(|f| f.self_units == 0));
        assert!(r.lines.is_empty());
        assert!(r.stacks.is_empty());
    }

    #[test]
    fn reports_roundtrip_over_serde() {
        let mut p = Profiler::new(ProfileMode::Counting, 0);
        p.inst_class("alu");
        p.inst_class("alu");
        p.inst_class("branch");
        run(&mut p);
        let r = p.report();
        let text = serde_json::to_string(&r).unwrap();
        let back: ProfileReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.inst_classes["alu"], 2);
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let mut p = Profiler::new(ProfileMode::Counting, 0);
        p.exit();
        p.tick();
        assert_eq!(p.report().units, 1);
    }
}
