//! `obs` — structured tracing and metrics for the EasyTracker suite.
//!
//! One [`Registry`] instance is shared (via cheap `Clone`) by every
//! instrumented layer: trackers time their control calls as [`Span`]s,
//! the MI client records per-command roundtrip [`Histogram`]s, engines
//! and VMs bump [`Counter`]s. Attached [`Sink`]s receive every finished
//! span as a Chrome trace event, so the same instrumentation yields
//! both aggregate statistics ([`Snapshot`]) and a loadable profile
//! timeline ([`ChromeTraceSink`]).
//!
//! Metric names follow `layer.component.metric[.detail]`, e.g.
//! `tracker.control.step`, `mi.client.roundtrip.GetState`,
//! `vm.minic.heap.allocs`. Dots group related series in reports.
//!
//! Everything is `std`-only: `Mutex`/atomics for sharing,
//! `Instant` for monotonic time.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

pub mod flight;
pub mod hist;
pub mod profile;
pub mod session;
pub mod sink;
pub mod telemetry;

pub use flight::{
    extract_last_gasp, FlightDump, FlightEntry, FlightLog, FlightRecorder, STDERR_MARKER,
};
pub use hist::{HistStats, Histogram};
pub use profile::{
    AllocSiteProfile, FuncProfile, LineProfile, ProfileMode, ProfileReport, Profiler, StackProfile,
};
pub use session::Session;
pub use sink::{ChromeTraceSink, ExportSink, JsonLinesSink, RingSink, Sink, TraceEvent};
pub use telemetry::{
    collect_frame, merge_chrome_trace, save_merged_trace, ClockSync, TelemetryFrame, WireHistogram,
    ENGINE_PID, TRACKER_PID,
};

/// A monotonically increasing event counter, cheap to clone and bump
/// from any thread.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An absolute reading, overwritten on every report (e.g. "VM executed
/// N ops total", "live heap bytes").
///
/// Gauges are deliberately a distinct type from [`Counter`]: a counter
/// only ever accumulates increments, so snapshot deltas and merged
/// cross-process metrics can sum counters freely, while a gauge's latest
/// value replaces the previous one and must never be added twice.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the reading.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct RegistryInner {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    sinks: Mutex<Vec<Arc<dyn Sink>>>,
    /// Lock-free mirror of `sinks.len()`, so the span hot path can skip
    /// trace-event construction entirely when nothing is listening.
    sink_count: AtomicUsize,
    tids: Mutex<HashMap<ThreadId, u64>>,
}

/// Shared hub for counters, histograms, spans, and sinks.
///
/// Cloning a `Registry` clones a handle to the same underlying data,
/// so one registry can be threaded through trackers, MI client/server
/// pairs, and VM engines while every layer reports to the same place.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.inner.counters.lock().unwrap().len())
            .field("histograms", &self.inner.histograms.lock().unwrap().len())
            .field("sinks", &self.inner.sinks.lock().unwrap().len())
            .finish()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                sinks: Mutex::new(Vec::new()),
                sink_count: AtomicUsize::new(0),
                tids: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Process-wide default registry, for tools (like the interactive
    /// debugger) that have no natural place to thread one through.
    pub fn global() -> Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new).clone()
    }

    /// Whether two handles share the same underlying registry.
    pub fn same_as(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    pub fn add_sink(&self, sink: Arc<dyn Sink>) {
        let mut sinks = self.inner.sinks.lock().unwrap();
        sinks.push(sink);
        self.inner.sink_count.store(sinks.len(), Ordering::Release);
    }

    /// Whether any sink is attached. Spans consult this before paying
    /// for trace-event construction, so a detached registry costs only
    /// the histogram update.
    pub fn has_sinks(&self) -> bool {
        self.inner.sink_count.load(Ordering::Acquire) != 0
    }

    /// Microseconds since this registry was created.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Small stable integer id for the calling thread.
    fn tid(&self) -> u64 {
        let mut tids = self.inner.tids.lock().unwrap();
        let next = tids.len() as u64 + 1;
        *tids.entry(std::thread::current().id()).or_insert(next)
    }

    // ---- counters ---------------------------------------------------------

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().unwrap();
        counters
            .entry(name.to_string())
            .or_insert_with(|| Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
            .clone()
    }

    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    // ---- gauges -----------------------------------------------------------

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Gauges hold absolute readings; see [`Gauge`].
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock().unwrap();
        gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge {
                cell: Arc::new(AtomicU64::new(0)),
            })
            .clone()
    }

    /// Overwrites the gauge reading under `name`.
    pub fn set_gauge(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }

    // ---- histograms -------------------------------------------------------

    pub fn record_value(&self, name: &str, value: u64) {
        let mut histograms = self.inner.histograms.lock().unwrap();
        histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records a duration in nanoseconds under `name`.
    pub fn record_duration(&self, name: &str, d: Duration) {
        self.record_value(name, d.as_nanos() as u64);
    }

    // ---- spans & events ---------------------------------------------------

    /// Opens a span. Dropping (or [`Span::finish`]ing) it records the
    /// elapsed time into the histogram of the same name and emits a
    /// complete (`ph: "X"`) trace event to every sink.
    ///
    /// Every span carries a [`TraceContext`]: a process-unique span id
    /// and the trace id it belongs to. The trace id is inherited from
    /// the enclosing span on this thread, or — when the thread has no
    /// open span but a remote context was installed with
    /// [`set_remote_context`] (the MI server does this from the frame
    /// envelope) — from the remote caller, making the new span a child
    /// of a span in another process. A span with neither starts a new
    /// trace rooted at itself.
    pub fn span(&self, name: impl Into<String>) -> Span {
        let name = name.into();
        let span_id = next_span_id();
        let (trace_id, parent) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let link = match stack.last() {
                Some(frame) => (
                    frame.trace_id,
                    Parent::Local(frame.name.clone(), frame.span_id),
                ),
                None => match remote_context() {
                    Some(ctx) => (ctx.trace_id, Parent::Remote(ctx.span_id)),
                    None => (span_id, Parent::Root),
                },
            };
            stack.push(StackFrame {
                name: name.clone(),
                trace_id: link.0,
                span_id,
            });
            link
        });
        Span {
            registry: self.clone(),
            name,
            cat: "span".into(),
            parent,
            trace_id,
            span_id,
            start: Instant::now(),
            start_us: self.now_us(),
            args: Vec::new(),
            finished: false,
        }
    }

    /// The context of the innermost span open on the calling thread, if
    /// any — what a cross-process caller should stamp onto an outgoing
    /// frame so remote spans join this trace.
    pub fn current_context(&self) -> Option<TraceContext> {
        SPAN_STACK.with(|stack| {
            stack.borrow().last().map(|f| TraceContext {
                trace_id: f.trace_id,
                span_id: f.span_id,
            })
        })
    }

    /// Emits an instant (`ph: "i"`) event.
    pub fn instant(&self, name: &str, args: &[(&str, &str)]) {
        if !self.has_sinks() {
            return;
        }
        self.emit(TraceEvent {
            name: name.to_string(),
            cat: "instant".into(),
            ph: 'i',
            ts_us: self.now_us(),
            dur_us: 0,
            pid: 1,
            tid: self.tid(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Emits a counter (`ph: "C"`) sample so the trace viewer can chart
    /// the series over time.
    pub fn counter_sample(&self, name: &str, value: u64) {
        if !self.has_sinks() {
            return;
        }
        self.emit(TraceEvent {
            name: name.to_string(),
            cat: "counter".into(),
            ph: 'C',
            ts_us: self.now_us(),
            dur_us: 0,
            pid: 1,
            tid: self.tid(),
            args: vec![("value".into(), value.to_string())],
        });
    }

    fn emit(&self, event: TraceEvent) {
        let sinks = self.inner.sinks.lock().unwrap();
        // Fan out by reference to all but the last sink, then hand the
        // event over by value: with one sink attached (the common case)
        // no clone happens at all.
        if let Some((last, rest)) = sinks.split_last() {
            for sink in rest {
                sink.record(&event);
            }
            last.record_owned(event);
        }
    }

    pub fn flush(&self) {
        let sinks = self.inner.sinks.lock().unwrap();
        for sink in sinks.iter() {
            let _ = sink.flush();
        }
    }

    // ---- reporting --------------------------------------------------------

    /// Copies out current counter values and histogram summaries.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Full-fidelity copies of every histogram (all buckets, not just
    /// the summary stats) — what the telemetry drain ships over the
    /// wire so the tracker side can merge distributions losslessly.
    pub fn export_histograms(&self) -> BTreeMap<String, Histogram> {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// The cross-process identity of a span: which trace it belongs to and
/// which span it is. Stamped onto MI command frames so engine-side
/// spans can link back to the tracker-side span that caused them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
}

/// Process-unique span id: the process id in the high 32 bits, a
/// monotonic sequence in the low 32. Two processes merging into one
/// trace therefore never collide.
fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let seq = NEXT.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    ((std::process::id() as u64) << 32) | (seq & 0xffff_ffff)
}

struct StackFrame {
    name: String,
    trace_id: u64,
    span_id: u64,
}

enum Parent {
    Root,
    Local(String, u64),
    Remote(u64),
}

thread_local! {
    /// Spans currently open on this thread, innermost last; used to tag
    /// children with their parent span and propagate the trace id.
    static SPAN_STACK: RefCell<Vec<StackFrame>> = const { RefCell::new(Vec::new()) };

    /// Trace context received from another process, adopted by root
    /// spans opened on this thread while it is set.
    static REMOTE_CTX: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
}

/// Installs (or clears) the remote trace context for the calling
/// thread. The MI server sets this from the command frame's `trace`
/// field before dispatching to the engine and clears it after, so VM
/// spans opened while handling the command join the caller's trace.
pub fn set_remote_context(ctx: Option<TraceContext>) {
    REMOTE_CTX.with(|c| *c.borrow_mut() = ctx);
}

/// The remote trace context currently installed on this thread.
pub fn remote_context() -> Option<TraceContext> {
    REMOTE_CTX.with(|c| *c.borrow())
}

/// An open timed region. Ends on drop or explicit [`Span::finish`].
pub struct Span {
    registry: Registry,
    name: String,
    cat: String,
    parent: Parent,
    trace_id: u64,
    span_id: u64,
    start: Instant,
    start_us: u64,
    args: Vec<(String, String)>,
    finished: bool,
}

impl Span {
    /// Attaches a key/value tag emitted with the trace event (e.g. the
    /// `PauseReason` a control call returned).
    pub fn tag(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.args.push((key.into(), value.into()));
    }

    /// Overrides the event category (defaults to `"span"`).
    pub fn category(&mut self, cat: impl Into<String>) {
        self.cat = cat.into();
    }

    pub fn finish(mut self) {
        self.close();
    }

    /// This span's cross-process identity, e.g. to stamp onto frames
    /// sent while it is open.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
        }
    }

    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last().is_some_and(|f| f.span_id == self.span_id) {
                stack.pop();
            }
        });
        let elapsed = self.start.elapsed();
        self.registry.record_duration(&self.name, elapsed);
        if !self.registry.has_sinks() {
            return;
        }
        let mut args = std::mem::take(&mut self.args);
        args.push(("trace_id".into(), self.trace_id.to_string()));
        args.push(("span_id".into(), self.span_id.to_string()));
        match std::mem::replace(&mut self.parent, Parent::Root) {
            Parent::Local(name, span) => {
                args.push(("parent".into(), name));
                args.push(("parent_span".into(), span.to_string()));
            }
            Parent::Remote(span) => {
                args.push(("parent_span".into(), span.to_string()));
            }
            Parent::Root => {}
        }
        let tid = self.registry.tid();
        self.registry.emit(TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: std::mem::take(&mut self.cat),
            ph: 'X',
            ts_us: self.start_us,
            dur_us: elapsed.as_micros() as u64,
            pid: 1,
            tid,
            args,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Point-in-time view of every metric in a registry.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistStats>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value, or 0 when the counter never fired.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge reading, or 0 when the gauge was never set.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    pub fn histogram(&self, name: &str) -> Option<&HistStats> {
        self.histograms.get(name)
    }

    /// Renders a fixed-width, three-section stats table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<44} {:>12}\n", "counter", "value"));
            out.push_str(&format!("{:-<44} {:->12}\n", "", ""));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<44} {value:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<44} {:>12}\n", "gauge", "value"));
            out.push_str(&format!("{:-<44} {:->12}\n", "", ""));
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<44} {value:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "histogram (ns)", "count", "mean", "p50", "p95", "p99", "max"
            ));
            out.push_str(&format!(
                "{:-<44} {:->8} {:->10} {:->10} {:->10} {:->10} {:->10}\n",
                "", "", "", "", "", "", ""
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    name, h.count, h.mean, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let reg = Registry::new();
        let other = reg.clone();
        reg.inc("a.b");
        other.add("a.b", 4);
        assert_eq!(reg.snapshot().counter("a.b"), 5);
        assert!(reg.same_as(&other));
    }

    #[test]
    fn spans_record_into_histograms_and_sinks() {
        let reg = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        reg.add_sink(ring.clone());
        {
            let mut outer = reg.span("outer");
            outer.tag("k", "v");
            let inner = reg.span("inner");
            inner.finish();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("outer").unwrap().count, 1);
        assert_eq!(snap.histogram("inner").unwrap().count, 1);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        // Inner finishes first and is tagged with its parent.
        assert_eq!(events[0].name, "inner");
        assert!(events[0]
            .args
            .iter()
            .any(|(k, v)| k == "parent" && v == "outer"));
        assert!(events[1].args.iter().any(|(k, v)| k == "k" && v == "v"));
    }

    #[test]
    fn snapshot_serializes_and_renders() {
        let reg = Registry::new();
        reg.add("x.count", 3);
        reg.record_value("y.lat", 128);
        let snap = reg.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.counter("x.count"), 3);
        assert_eq!(back.histogram("y.lat").unwrap().count, 1);
        let table = snap.render_table();
        assert!(table.contains("x.count"));
        assert!(table.contains("y.lat"));
    }

    #[test]
    fn threads_get_distinct_tids() {
        let reg = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        reg.add_sink(ring.clone());
        reg.instant("main-side", &[]);
        let reg2 = reg.clone();
        std::thread::spawn(move || reg2.instant("thread-side", &[]))
            .join()
            .unwrap();
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn counter_prefix_sum_groups_series() {
        let reg = Registry::new();
        reg.add("mi.server.cmd.Step", 2);
        reg.add("mi.server.cmd.Resume", 3);
        reg.add("vm.ops", 100);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_prefix_sum("mi.server.cmd."), 5);
    }

    #[test]
    fn gauges_overwrite_and_live_apart_from_counters() {
        let reg = Registry::new();
        reg.set_gauge("vm.ops", 10);
        reg.set_gauge("vm.ops", 7); // absolute reading: replaces, never adds
        reg.inc("vm.ops"); // same name as a counter is a distinct series
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("vm.ops"), 7);
        assert_eq!(snap.counter("vm.ops"), 1);
        let table = snap.render_table();
        assert!(table.contains("gauge"));
    }

    #[test]
    fn spans_carry_trace_context_and_children_inherit_it() {
        let reg = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        reg.add_sink(ring.clone());
        let outer = reg.span("outer");
        let outer_ctx = outer.context();
        assert_eq!(reg.current_context(), Some(outer_ctx));
        let inner = reg.span("inner");
        let inner_ctx = inner.context();
        assert_eq!(inner_ctx.trace_id, outer_ctx.trace_id);
        assert_ne!(inner_ctx.span_id, outer_ctx.span_id);
        inner.finish();
        outer.finish();
        assert_eq!(reg.current_context(), None);
        let events = ring.events();
        let find = |e: &TraceEvent, k: &str| -> String {
            e.args
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        assert_eq!(
            find(&events[0], "parent_span"),
            outer_ctx.span_id.to_string()
        );
        assert_eq!(find(&events[0], "trace_id"), outer_ctx.trace_id.to_string());
        // A root span starts a trace rooted at itself.
        assert_eq!(outer_ctx.trace_id, outer_ctx.span_id);
    }

    #[test]
    fn remote_context_adopts_root_spans_until_cleared() {
        let reg = Registry::new();
        let remote = TraceContext {
            trace_id: 777,
            span_id: 42,
        };
        set_remote_context(Some(remote));
        let span = reg.span("vm.exec");
        assert_eq!(span.context().trace_id, 777);
        span.finish();
        set_remote_context(None);
        let span = reg.span("vm.exec");
        assert_ne!(span.context().trace_id, 777);
        span.finish();
    }
}
