//! User-facing bundle: a registry with standard sinks pre-attached.

use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::sink::{ChromeTraceSink, RingSink, TraceEvent};
use crate::{Registry, Snapshot};

/// Convenience wrapper owning a [`Registry`] wired to a Chrome-trace
/// collector and an in-memory ring of recent events.
///
/// Typical profiling flow:
///
/// ```
/// let session = obs::Session::new();
/// let registry = session.registry();
/// // ... thread `registry` through trackers / engines / VMs ...
/// registry.span("tracker.control.start").finish();
/// println!("{}", session.snapshot().render_table());
/// # let dir = std::env::temp_dir().join("obs-doc-session");
/// # std::fs::create_dir_all(&dir).unwrap();
/// session.write_chrome_trace(&dir.join("profile.trace.json")).unwrap();
/// ```
pub struct Session {
    registry: Registry,
    ring: Arc<RingSink>,
    chrome: Arc<ChromeTraceSink>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Registry with a Chrome-trace sink and a 4096-event ring attached.
    pub fn new() -> Self {
        Self::with_capacity(4096)
    }

    pub fn with_capacity(ring_capacity: usize) -> Self {
        let registry = Registry::new();
        let ring = Arc::new(RingSink::new(ring_capacity));
        let chrome = Arc::new(ChromeTraceSink::new());
        registry.add_sink(ring.clone());
        registry.add_sink(chrome.clone());
        Session {
            registry,
            ring,
            chrome,
        }
    }

    /// A bare registry with no sinks: metrics still aggregate, but no
    /// per-event work happens. Baseline for overhead comparisons.
    pub fn without_sinks() -> Self {
        Session {
            registry: Registry::new(),
            ring: Arc::new(RingSink::new(1)),
            chrome: Arc::new(ChromeTraceSink::new()),
        }
    }

    /// Cheap shared handle; thread this through instrumented layers.
    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Most recent events, oldest first.
    pub fn recent_events(&self) -> Vec<TraceEvent> {
        self.ring.events()
    }

    /// Number of events captured for the Chrome trace so far.
    pub fn trace_len(&self) -> usize {
        self.chrome.len()
    }

    /// Writes the collected profile as Chrome trace-event JSON; open in
    /// `chrome://tracing`, Perfetto, or Speedscope.
    pub fn write_chrome_trace(&self, path: &Path) -> io::Result<()> {
        self.chrome.save(path)
    }

    /// Serializes the profile into any writer.
    pub fn write_chrome_trace_to<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        self.chrome.write_to(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_collects_spans_into_trace_and_ring() {
        let session = Session::new();
        let reg = session.registry();
        reg.span("a").finish();
        reg.span("b").finish();
        assert_eq!(session.trace_len(), 2);
        assert_eq!(session.recent_events().len(), 2);
        let mut out = Vec::new();
        session.write_chrome_trace_to(&mut out).unwrap();
        let doc: serde_json::Value = serde_json::from_slice(&out).unwrap();
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn sinkless_session_still_aggregates() {
        let session = Session::without_sinks();
        let reg = session.registry();
        reg.span("quiet").finish();
        reg.inc("n");
        assert_eq!(session.trace_len(), 0);
        let snap = session.snapshot();
        assert_eq!(snap.counter("n"), 1);
        assert_eq!(snap.histogram("quiet").unwrap().count, 1);
    }
}
