//! Regression tests for MI-boundary fault tolerance.
//!
//! Each test pins down a failure mode the conformance fault injector
//! exercises: truncated frames, corrupted bytes, duplicated frames, and
//! a link dropped mid-command. The client/server pair must surface every
//! one as a typed [`MiError`] or [`Response::Error`] — never a panic, a
//! hang, or a silent desync — and the session must recover when the
//! command is re-issued.

use mi::protocol::{Command, Response};
use mi::transport::{duplex, ChannelTransport, Transport};
use mi::{minic_engine::MinicEngine, Client, MiError, Server};
use state::PauseReason;

/// What the proxy does to the n-th received frame.
#[derive(Clone, Copy, Debug)]
enum Fault {
    /// Cut the frame's payload in half.
    Truncate,
    /// Flip bits in the middle of the payload.
    Corrupt,
    /// Deliver the frame, then deliver it again on the next receive.
    Duplicate,
    /// Report a dropped link for this receive; the frame is delivered
    /// (stale) on the next receive, as if the peer resent its buffer.
    DropLink,
    /// Surface a transport-level codec error (e.g. a corrupted length
    /// prefix caught by the framing layer).
    CodecError,
}

/// Deterministic single-fault proxy around any transport.
struct Proxy<T> {
    inner: T,
    recv_count: usize,
    fault_at: usize,
    fault: Fault,
    queued: Option<Vec<u8>>,
}

impl<T> Proxy<T> {
    fn new(inner: T, fault_at: usize, fault: Fault) -> Self {
        Proxy {
            inner,
            recv_count: 0,
            fault_at,
            fault,
            queued: None,
        }
    }
}

impl<T: Transport> Transport for Proxy<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        if let Some(frame) = self.queued.take() {
            return Ok(frame);
        }
        self.recv_count += 1;
        if self.recv_count != self.fault_at {
            return self.inner.recv();
        }
        match self.fault {
            Fault::CodecError => Err(MiError::Codec("injected framing fault".into())),
            Fault::Truncate => {
                let mut frame = self.inner.recv()?;
                frame.truncate(frame.len() / 2);
                Ok(frame)
            }
            Fault::Corrupt => {
                let mut frame = self.inner.recv()?;
                let mid = frame.len() / 2;
                if let Some(b) = frame.get_mut(mid) {
                    *b ^= 0xFF;
                }
                Ok(frame)
            }
            Fault::Duplicate => {
                let frame = self.inner.recv()?;
                self.queued = Some(frame.clone());
                Ok(frame)
            }
            Fault::DropLink => {
                let frame = self.inner.recv()?;
                self.queued = Some(frame);
                Err(MiError::Disconnected)
            }
        }
    }

    fn counters(&self) -> mi::transport::TransportCounters {
        self.inner.counters()
    }
}

const PROG: &str = "int main() {\nint x = 1;\nx = x + 1;\nreturn x;\n}";

fn spawn_engine<T: Transport + Send + 'static>(endpoint: T) -> std::thread::JoinHandle<()> {
    let program = minic::compile("f.c", PROG).unwrap();
    std::thread::spawn(move || {
        let _ = Server::new(MinicEngine::new(&program), endpoint).serve();
    })
}

/// Builds a client whose *receive* path injects `fault` on frame number
/// `fault_at`, backed by a real MiniC engine.
fn faulty_client(
    fault_at: usize,
    fault: Fault,
) -> (Client<Proxy<ChannelTransport>>, std::thread::JoinHandle<()>) {
    let (a, b) = duplex();
    let handle = spawn_engine(b);
    (Client::new(Proxy::new(a, fault_at, fault)), handle)
}

fn finish(mut client: Client<impl Transport>, handle: std::thread::JoinHandle<()>) {
    client.call(Command::Terminate).unwrap();
    handle.join().unwrap();
}

#[test]
fn truncated_response_is_a_typed_error_and_the_session_recovers() {
    let (mut client, handle) = faulty_client(2, Fault::Truncate);
    assert!(matches!(
        client.call(Command::Start),
        Ok(Response::Paused(_))
    ));
    match client.call(Command::GetState) {
        Err(MiError::Codec(_)) => {}
        other => panic!("expected codec error for the truncated frame, got {other:?}"),
    }
    // Re-issuing the command works: the mangled frame was consumed.
    assert!(matches!(
        client.call(Command::GetState),
        Ok(Response::State(_))
    ));
    finish(client, handle);
}

#[test]
fn corrupted_response_is_a_typed_error_and_the_session_recovers() {
    let (mut client, handle) = faulty_client(2, Fault::Corrupt);
    client.call(Command::Start).unwrap();
    match client.call(Command::GetState) {
        Err(MiError::Codec(_)) => {}
        other => panic!("expected codec error for the corrupted frame, got {other:?}"),
    }
    assert!(matches!(
        client.call(Command::GetState),
        Ok(Response::State(_))
    ));
    finish(client, handle);
}

#[test]
fn duplicated_response_is_discarded_by_sequence_number() {
    let reg = obs::Registry::new();
    let (a, b) = duplex();
    let handle = spawn_engine(b);
    let mut client = Client::with_registry(Proxy::new(a, 1, Fault::Duplicate), reg.clone());
    // The duplicated Start response must not be mistaken for the answer
    // to the next command.
    assert!(matches!(
        client.call(Command::Start),
        Ok(Response::Paused(PauseReason::Started))
    ));
    assert_eq!(
        client.call(Command::GetExitCode).unwrap(),
        Response::ExitCode(None)
    );
    finish(client, handle);
    assert_eq!(reg.snapshot().counter("mi.client.stale_frames"), 1);
}

#[test]
fn link_drop_mid_command_is_typed_and_the_resent_frame_is_skipped() {
    let (mut client, handle) = faulty_client(2, Fault::DropLink);
    client.call(Command::Start).unwrap();
    // The link "drops" while waiting for this response.
    assert_eq!(client.call(Command::Step), Err(MiError::Disconnected));
    // On reconnect the stale response for the failed command surfaces
    // first; the sequence number identifies and discards it, so the
    // re-issued command gets *its own* answer, not the stale one.
    match client.call(Command::GetVariable { name: "x".into() }) {
        Ok(Response::Variable(_)) => {}
        other => panic!("expected the re-issued command's response, got {other:?}"),
    }
    finish(client, handle);
}

#[test]
fn transport_codec_fault_on_the_server_side_keeps_it_serving() {
    // The *server's* receive path reports a framing fault (what a
    // corrupted length prefix produces). The server must answer with a
    // typed error and keep serving rather than tearing the session down.
    let (a, b) = duplex();
    let handle = spawn_engine(Proxy::new(b, 2, Fault::CodecError));
    let mut client = Client::new(a);
    client.call(Command::Start).unwrap();
    match client.call(Command::GetState) {
        Ok(Response::Error { message }) => {
            assert!(message.contains("unreadable frame"), "{message}")
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    assert!(matches!(
        client.call(Command::GetState),
        Ok(Response::State(_))
    ));
    finish(client, handle);
}

#[test]
fn corrupted_command_at_the_server_is_answered_not_fatal() {
    let (a, b) = duplex();
    let handle = spawn_engine(Proxy::new(b, 2, Fault::Corrupt));
    let mut client = Client::new(a);
    client.call(Command::Start).unwrap();
    match client.call(Command::Step) {
        Ok(Response::Error { message }) => {
            assert!(message.contains("malformed command"), "{message}")
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    // Re-issue: the engine is still alive and still paused at the start.
    assert!(matches!(
        client.call(Command::Step),
        Ok(Response::Paused(PauseReason::Step))
    ));
    finish(client, handle);
}

#[test]
fn bare_wire_mode_demonstrates_the_desync_the_envelope_prevents() {
    // A legacy client has no sequence numbers: after a duplicated frame
    // every later response is off by one. This documents the silent
    // desync that motivated the envelope (and is the behaviour the
    // conformance corpus reproducer pins down).
    let (a, b) = duplex();
    let handle = spawn_engine(b);
    let mut client = Client::new_bare(Proxy::new(a, 1, Fault::Duplicate));
    client.call(Command::Start).unwrap();
    // The duplicate of the Start response masquerades as the answer to
    // GetExitCode — the bare client cannot tell.
    assert_eq!(
        client.call(Command::GetExitCode).unwrap(),
        Response::Paused(PauseReason::Started)
    );
    finish(client, handle);
}
