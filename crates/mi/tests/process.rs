//! The real-subprocess deployment (paper Fig. 4, made literal): the
//! engine runs as a separate OS process (`mi-server`) and the tracker
//! talks to it over actual pipes.

use mi::protocol::{Command, Response};
use mi::transport::StreamTransport;
use mi::Client;
use state::{ExitStatus, PauseReason};
use std::process::{Child, Stdio};

fn spawn_server(
    path: &std::path::Path,
) -> (
    Child,
    Client<StreamTransport<std::process::ChildStdout, std::process::ChildStdin>>,
) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_mi_server"))
        .arg(path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn mi-server");
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    (child, Client::new(StreamTransport::new(stdout, stdin)))
}

#[test]
fn full_debug_session_across_a_process_boundary() {
    let dir = std::env::temp_dir().join(format!("easytracker-proc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inferior.c");
    std::fs::write(
        &path,
        "int square(int x) {\nreturn x * x;\n}\nint main() {\nint s = square(6);\nprintf(\"%d\\n\", s);\nreturn s;\n}",
    )
    .unwrap();

    let (mut child, mut client) = spawn_server(&path);
    // Control and inspect across the pipe.
    assert!(matches!(
        client.call(Command::Start).unwrap(),
        Response::Paused(PauseReason::Started)
    ));
    client
        .call(Command::TrackFunction {
            function: "square".into(),
            maxdepth: None,
        })
        .unwrap();
    let mut calls = 0;
    loop {
        match client.call(Command::Resume).unwrap() {
            Response::Paused(PauseReason::FunctionCall { .. }) => {
                calls += 1;
                // Inspect the live frame in the other process.
                match client.call(Command::GetState).unwrap() {
                    Response::State(st) => {
                        assert_eq!(st.frame.name(), "square");
                        assert!(st.frame.variable("x").is_some());
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            Response::Paused(PauseReason::FunctionReturn { .. }) => {}
            Response::Paused(PauseReason::Exited(ExitStatus::Exited(code))) => {
                assert_eq!(code, 36);
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(calls, 1);
    match client.call(Command::GetOutput).unwrap() {
        Response::Output(o) => assert_eq!(o, "36\n"),
        other => panic!("unexpected {other:?}"),
    }
    client.call(Command::Terminate).unwrap();
    let status = child.wait().expect("server exits");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn assembly_engine_as_a_process() {
    let dir = std::env::temp_dir().join(format!("easytracker-proc-asm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inferior.s");
    std::fs::write(&path, "main:\n    li a0, 9\n    li a7, 93\n    ecall\n").unwrap();
    let (mut child, mut client) = spawn_server(&path);
    client.call(Command::Start).unwrap();
    match client.call(Command::Resume).unwrap() {
        Response::Paused(PauseReason::Exited(ExitStatus::Exited(9))) => {}
        other => panic!("unexpected {other:?}"),
    }
    client.call(Command::Terminate).unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killing_the_tracker_side_ends_the_server() {
    let dir = std::env::temp_dir().join(format!("easytracker-proc-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inferior.c");
    std::fs::write(&path, "int main() { return 0; }").unwrap();
    let (mut child, client) = spawn_server(&path);
    drop(client); // closes the pipes
    let status = child.wait().expect("server exits after EOF");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_rejects_bad_programs() {
    let dir = std::env::temp_dir().join(format!("easytracker-proc-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.c");
    std::fs::write(&path, "int main() { return syntax error }").unwrap();
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_mi_server"))
        .arg(&path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}
