//! Client-side supervision of a machine-interface session.
//!
//! [`SupervisedClient`] wraps any [`CommandPort`] and adds the two
//! command-level robustness behaviours every supervisor needs:
//!
//! * **deadlines** — every call goes through
//!   [`CommandPort::call_deadline`] with the policy's per-command
//!   deadline, so no call blocks forever against a wedged engine;
//! * **bounded retries** — idempotent commands (see
//!   [`Command::is_idempotent`]) that fail with a timeout or a codec
//!   error are retried up to `max_retries` times with jittered
//!   exponential backoff. Sequence-numbered envelopes make the retry
//!   safe: a late response to the timed-out attempt is discarded as a
//!   stale frame by the next attempt.
//!
//! What this layer deliberately does *not* do is respawn a dead engine —
//! that needs the session manifest (program, control points, position),
//! which lives in the tracker. `easytracker`'s `MiTracker` composes its
//! recovery logic on top of this client.

use crate::protocol::{Command, Response};
use crate::server::CommandPort;
use crate::transport::TransportCounters;
use crate::MiError;
use std::time::Duration;

/// Knobs for [`SupervisedClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisePolicy {
    /// Per-command roundtrip deadline. `None` means unbounded (the
    /// wrapped port's plain `call` behaviour).
    pub deadline: Option<Duration>,
    /// Deadline for [`SupervisedClient::ping`] heartbeats — usually much
    /// shorter than `deadline`, since `Ping` never touches the engine.
    pub ping_deadline: Duration,
    /// Extra attempts after the first failure, for idempotent commands
    /// only. `0` disables retrying.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter; fixed so test runs are reproducible.
    pub jitter_seed: u64,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            deadline: Some(Duration::from_secs(30)),
            ping_deadline: Duration::from_secs(1),
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5eed_cafe_f00d_0001,
        }
    }
}

/// Jittered exponential backoff: `base * 2^attempt`, capped at `cap`,
/// then scaled by a factor in `[0.5, 1.0)` drawn from `rng` (an xorshift
/// state advanced in place). Jitter keeps a fleet of retrying clients
/// from hammering a recovering engine in lockstep.
pub fn jittered_backoff(base: Duration, cap: Duration, attempt: u32, rng: &mut u64) -> Duration {
    let exp = base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
    let full = exp.min(cap);
    // xorshift64
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    let frac = 0.5 + (x >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
    full.mul_f64(frac)
}

/// A [`CommandPort`] wrapper enforcing deadlines and retrying idempotent
/// commands, per a [`SupervisePolicy`]. See the module docs.
pub struct SupervisedClient<P> {
    inner: P,
    policy: SupervisePolicy,
    rng: u64,
    registry: Option<obs::Registry>,
    flight: Option<obs::FlightRecorder>,
}

impl<P: CommandPort> SupervisedClient<P> {
    /// Wraps `inner` with the given policy.
    pub fn new(inner: P, policy: SupervisePolicy) -> Self {
        let rng = policy.jitter_seed | 1;
        SupervisedClient {
            inner,
            policy,
            rng,
            registry: None,
            flight: None,
        }
    }

    /// Attaches a flight recorder: retries and heartbeat misses land in
    /// its ring, so a post-mortem shows the supervision churn that
    /// preceded a failure.
    pub fn set_flight_recorder(&mut self, flight: obs::FlightRecorder) {
        self.flight = Some(flight);
    }

    /// Like [`SupervisedClient::new`], but retries bump `mi.retries` and
    /// failed heartbeats bump `mi.heartbeat_misses` in `registry`.
    pub fn with_registry(inner: P, policy: SupervisePolicy, registry: obs::Registry) -> Self {
        let mut s = SupervisedClient::new(inner, policy);
        s.registry = Some(registry);
        s
    }

    /// The active policy.
    pub fn policy(&self) -> SupervisePolicy {
        self.policy
    }

    /// Replaces the policy (also reseeds the backoff jitter).
    pub fn set_policy(&mut self, policy: SupervisePolicy) {
        self.rng = policy.jitter_seed | 1;
        self.policy = policy;
    }

    /// Unwraps the inner port.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Heartbeat: one `Ping` roundtrip under the (short) ping deadline.
    /// The serve loop answers without involving the engine, so this
    /// probes the boundary — transport plus serve thread — not inferior
    /// progress. A miss bumps `mi.heartbeat_misses`.
    ///
    /// # Errors
    ///
    /// Whatever the roundtrip failed with, [`MiError::Timeout`] included.
    /// An unexpected (non-`Pong`) answer is a codec error.
    pub fn ping(&mut self) -> Result<(), MiError> {
        let deadline = Some(self.policy.ping_deadline);
        let res = match self.inner.call_deadline(Command::Ping, deadline) {
            Ok(Response::Pong { .. }) => Ok(()),
            Ok(other) => Err(MiError::Codec(format!(
                "heartbeat expected Pong, got {other:?}"
            ))),
            Err(e) => Err(e),
        };
        if res.is_err() {
            if let Some(reg) = &self.registry {
                reg.inc("mi.heartbeat_misses");
            }
            if let Some(flight) = &self.flight {
                flight.record("heartbeat-miss", "ping deadline expired");
            }
        }
        res
    }

    fn call_supervised(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        let deadline = deadline.or(self.policy.deadline);
        let retriable = command.is_idempotent();
        let mut attempt = 0u32;
        loop {
            match self.inner.call_deadline(command.clone(), deadline) {
                Ok(resp @ (Response::Overloaded { .. } | Response::QueueFull { .. })) => {
                    // Admission rejections happen *before* the command
                    // touches the engine, so re-sending is safe for any
                    // command, idempotent or not. Back off to let the
                    // host drain; past the retry bound, surface the
                    // typed rejection for the caller to map.
                    if attempt >= self.policy.max_retries {
                        return Ok(resp);
                    }
                    if let Some(reg) = &self.registry {
                        reg.inc("mi.retries");
                    }
                    if let Some(flight) = &self.flight {
                        flight.record(
                            "backpressure",
                            format!("{} got {}", command.kind(), resp.summary()),
                        );
                    }
                    let sleep = jittered_backoff(
                        self.policy.backoff_base,
                        self.policy.backoff_cap,
                        attempt,
                        &mut self.rng,
                    );
                    if !sleep.is_zero() {
                        std::thread::sleep(sleep);
                    }
                    attempt += 1;
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Only faults where the command may simply have been
                    // lost in transit are worth re-sending; a dead or
                    // disconnected engine needs a respawn, not a retry.
                    let transient = matches!(e, MiError::Timeout | MiError::Codec(_));
                    if !retriable || !transient || attempt >= self.policy.max_retries {
                        return Err(e);
                    }
                    if let Some(reg) = &self.registry {
                        reg.inc("mi.retries");
                    }
                    if let Some(flight) = &self.flight {
                        flight.record("retry", format!("{} after {e:?}", command.kind()));
                    }
                    let sleep = jittered_backoff(
                        self.policy.backoff_base,
                        self.policy.backoff_cap,
                        attempt,
                        &mut self.rng,
                    );
                    if !sleep.is_zero() {
                        std::thread::sleep(sleep);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

impl<P: CommandPort> CommandPort for SupervisedClient<P> {
    fn call(&mut self, command: Command) -> Result<Response, MiError> {
        self.call_supervised(command, None)
    }

    fn call_deadline(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        self.call_supervised(command, deadline)
    }

    fn counters(&self) -> TransportCounters {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted port: each entry is the outcome of one call.
    struct Scripted {
        outcomes: Vec<Result<Response, MiError>>,
        calls: Vec<Command>,
    }

    impl Scripted {
        fn new(mut outcomes: Vec<Result<Response, MiError>>) -> Self {
            outcomes.reverse();
            Scripted {
                outcomes,
                calls: Vec::new(),
            }
        }
    }

    impl CommandPort for Scripted {
        fn call(&mut self, command: Command) -> Result<Response, MiError> {
            self.calls.push(command);
            self.outcomes.pop().expect("script exhausted")
        }

        fn counters(&self) -> TransportCounters {
            TransportCounters::default()
        }
    }

    fn fast_policy() -> SupervisePolicy {
        SupervisePolicy {
            deadline: Some(Duration::from_millis(200)),
            ping_deadline: Duration::from_millis(50),
            max_retries: 2,
            backoff_base: Duration::from_micros(1),
            backoff_cap: Duration::from_micros(10),
            jitter_seed: 7,
        }
    }

    #[test]
    fn idempotent_timeouts_are_retried_and_counted() {
        let reg = obs::Registry::new();
        let port = Scripted::new(vec![
            Err(MiError::Timeout),
            Err(MiError::Timeout),
            Ok(Response::ExitCode(Some(0))),
        ]);
        let mut sup = SupervisedClient::with_registry(port, fast_policy(), reg.clone());
        assert_eq!(
            sup.call(Command::GetExitCode).unwrap(),
            Response::ExitCode(Some(0))
        );
        assert_eq!(reg.snapshot().counter("mi.retries"), 2);
        assert_eq!(sup.into_inner().calls.len(), 3);
    }

    #[test]
    fn non_idempotent_commands_never_retry() {
        let reg = obs::Registry::new();
        let port = Scripted::new(vec![Err(MiError::Timeout)]);
        let mut sup = SupervisedClient::with_registry(port, fast_policy(), reg.clone());
        assert!(matches!(sup.call(Command::Step), Err(MiError::Timeout)));
        assert_eq!(reg.snapshot().counter("mi.retries"), 0);
        assert_eq!(sup.into_inner().calls.len(), 1);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let port = Scripted::new(vec![
            Err(MiError::Timeout),
            Err(MiError::Timeout),
            Err(MiError::Timeout),
        ]);
        let mut sup = SupervisedClient::new(port, fast_policy());
        assert!(matches!(sup.call(Command::GetState), Err(MiError::Timeout)));
        // 1 initial + max_retries(2) attempts, then give up.
        assert_eq!(sup.into_inner().calls.len(), 3);
    }

    #[test]
    fn disconnects_are_not_retried() {
        let port = Scripted::new(vec![Err(MiError::Disconnected)]);
        let mut sup = SupervisedClient::new(port, fast_policy());
        assert!(matches!(
            sup.call(Command::GetState),
            Err(MiError::Disconnected)
        ));
        assert_eq!(sup.into_inner().calls.len(), 1);
    }

    #[test]
    fn heartbeat_miss_is_counted() {
        let reg = obs::Registry::new();
        let port = Scripted::new(vec![
            Err(MiError::Timeout),
            Ok(Response::Pong { now_us: 12 }),
        ]);
        let mut sup = SupervisedClient::with_registry(port, fast_policy(), reg.clone());
        assert!(matches!(sup.ping(), Err(MiError::Timeout)));
        assert!(sup.ping().is_ok());
        assert_eq!(reg.snapshot().counter("mi.heartbeat_misses"), 1);
    }

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(40);
        let mut rng1 = 42u64;
        let mut rng2 = 42u64;
        for attempt in 0..10 {
            let a = jittered_backoff(base, cap, attempt, &mut rng1);
            let b = jittered_backoff(base, cap, attempt, &mut rng2);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a <= cap);
            assert!(a >= base / 2);
        }
    }
}
