//! The machine-interface (MI) layer: the GDB/MI analogue of the
//! EasyTracker reproduction.
//!
//! The paper's GDB tracker (Fig. 4) runs GDB as a subprocess in MI mode and
//! exchanges serialized commands and state over a pipe. This crate
//! reproduces that architecture:
//!
//! * [`protocol`] — the command/response vocabulary, serde-serializable;
//! * [`transport`] — framed byte transports; [`transport::duplex`] builds
//!   the in-process analogue of the OS pipe (bytes really are serialized,
//!   framed, sent, and parsed on the other side);
//! * [`server`] — [`server::Server`] pumps commands into an [`Engine`],
//!   [`server::Client`] is the tracker-side stub;
//! * [`minic_engine`] — wraps the MiniC VM: breakpoints (line and
//!   function-with-`maxdepth`), function tracking with pause-before-return,
//!   watchpoints driven by store events, step/next/finish;
//! * [`asm_engine`] — the same contract over the RISC-V simulator, with a
//!   shadow call stack for function tracking and register/memory access.
//!
//! # Examples
//!
//! ```
//! use mi::{spawn_minic, protocol::{Command, Response}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = minic::compile("t.c", "int main() { return 40 + 2; }")?;
//! let mut session = spawn_minic(&program);
//! session.client.call(Command::Start)?;
//! let reply = session.client.call(Command::Resume)?;
//! match reply {
//!     Response::Paused(reason) => assert_eq!(reason.to_string(), "exited (42)"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! session.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod asm_engine;
pub mod minic_engine;
pub mod protocol;
pub mod server;
pub mod transport;

pub use protocol::{Command, CommandFrame, Response, ResponseFrame};
pub use server::{Client, CommandPort, Engine, Server};
pub use transport::MAX_FRAME_LEN;

use std::fmt;
use std::thread::JoinHandle;

/// Errors at the MI layer (transport failures, protocol violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiError {
    /// The peer hung up.
    Disconnected,
    /// A frame failed to encode/decode.
    Codec(String),
    /// The engine reported an error.
    Engine(String),
}

impl fmt::Display for MiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiError::Disconnected => write!(f, "machine-interface peer disconnected"),
            MiError::Codec(m) => write!(f, "machine-interface codec error: {m}"),
            MiError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for MiError {}

/// A running engine session: the client stub plus the server thread handle.
pub struct Session {
    /// Tracker-side stub; send commands through it.
    pub client: Client<transport::ChannelTransport>,
    handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Session {
    /// Sends `Terminate` (best effort) and joins the server thread.
    pub fn shutdown(mut self) {
        let _ = self.client.call(Command::Terminate);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Destructors must not fail or block indefinitely: fire Terminate
        // and detach if the user did not call `shutdown`.
        if self.handle.take().is_some() {
            let _ = self.client.call(Command::Terminate);
        }
    }
}

/// Spawns a MiniC engine on its own thread (the "GDB subprocess" analogue)
/// and returns the connected session.
pub fn spawn_minic(program: &minic::Program) -> Session {
    spawn_minic_inner(program, None)
}

/// Like [`spawn_minic`], but client, server, and engine all report into
/// `registry`: roundtrip latencies and byte gauges on the client side,
/// per-command counters on the server side, and `vm.minic.*` execution
/// stats from the engine.
pub fn spawn_minic_with_registry(program: &minic::Program, registry: obs::Registry) -> Session {
    spawn_minic_inner(program, Some(registry))
}

fn spawn_minic_inner(program: &minic::Program, registry: Option<obs::Registry>) -> Session {
    let (a, b) = transport::duplex();
    let mut engine = minic_engine::MinicEngine::new(program);
    if let Some(reg) = registry.clone() {
        engine.set_registry(reg);
    }
    let server_reg = registry.clone();
    let handle = std::thread::Builder::new()
        .name("mi-minic-engine".into())
        .spawn(move || {
            let mut server = match server_reg {
                Some(reg) => Server::with_registry(engine, b, reg),
                None => Server::new(engine, b),
            };
            server.serve();
        })
        .expect("spawn engine thread");
    let client = match registry {
        Some(reg) => Client::with_registry(a, reg),
        None => Client::new(a),
    };
    Session {
        client,
        handle: Some(handle),
    }
}

/// Spawns a RISC-V engine on its own thread and returns the session.
pub fn spawn_asm(program: &miniasm::asm::AsmProgram) -> Session {
    spawn_asm_inner(program, None)
}

/// Like [`spawn_asm`], but client, server, and engine all report into
/// `registry` (engine stats appear as `vm.miniasm.*`).
pub fn spawn_asm_with_registry(
    program: &miniasm::asm::AsmProgram,
    registry: obs::Registry,
) -> Session {
    spawn_asm_inner(program, Some(registry))
}

fn spawn_asm_inner(program: &miniasm::asm::AsmProgram, registry: Option<obs::Registry>) -> Session {
    let (a, b) = transport::duplex();
    let mut engine = asm_engine::AsmEngine::new(program);
    if let Some(reg) = registry.clone() {
        engine.set_registry(reg);
    }
    let server_reg = registry.clone();
    let handle = std::thread::Builder::new()
        .name("mi-asm-engine".into())
        .spawn(move || {
            let mut server = match server_reg {
                Some(reg) => Server::with_registry(engine, b, reg),
                None => Server::new(engine, b),
            };
            server.serve();
        })
        .expect("spawn engine thread");
    let client = match registry {
        Some(reg) => Client::with_registry(a, reg),
        None => Client::new(a),
    };
    Session {
        client,
        handle: Some(handle),
    }
}
