//! The machine-interface (MI) layer: the GDB/MI analogue of the
//! EasyTracker reproduction.
//!
//! The paper's GDB tracker (Fig. 4) runs GDB as a subprocess in MI mode and
//! exchanges serialized commands and state over a pipe. This crate
//! reproduces that architecture:
//!
//! * [`protocol`] — the command/response vocabulary, serde-serializable;
//! * [`transport`] — framed byte transports; [`transport::duplex`] builds
//!   the in-process analogue of the OS pipe (bytes really are serialized,
//!   framed, sent, and parsed on the other side);
//! * [`server`] — [`server::Server`] pumps commands into an [`Engine`],
//!   [`server::Client`] is the tracker-side stub;
//! * [`minic_engine`] — wraps the MiniC VM: breakpoints (line and
//!   function-with-`maxdepth`), function tracking with pause-before-return,
//!   watchpoints driven by store events, step/next/finish;
//! * [`asm_engine`] — the same contract over the RISC-V simulator, with a
//!   shadow call stack for function tracking and register/memory access.
//!
//! # Examples
//!
//! ```
//! use mi::{spawn_minic, protocol::{Command, Response}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = minic::compile("t.c", "int main() { return 40 + 2; }")?;
//! let mut session = spawn_minic(&program);
//! session.client.call(Command::Start)?;
//! let reply = session.client.call(Command::Resume)?;
//! match reply {
//!     Response::Paused(reason) => assert_eq!(reason.to_string(), "exited (42)"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! session.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod asm_engine;
pub mod host;
pub mod minic_engine;
pub mod protocol;
pub mod record;
pub mod server;
pub mod supervise;
pub mod transport;

pub use host::{HostConfig, HostHandle, SessionHandle, SessionHost, DEFAULT_SLICE_STEPS};
pub use protocol::{Command, CommandFrame, ResourceKind, Response, ResponseFrame};
pub use record::{RecordingEngine, ReplayEngine, TraceShelf};
pub use server::{Client, CommandPort, Engine, ServeEnd, Server, SliceOutcome};
pub use supervise::{SupervisePolicy, SupervisedClient};
pub use transport::MAX_FRAME_LEN;

use std::fmt;
use std::thread::JoinHandle;
use std::time::Duration;

/// Errors at the MI layer (transport failures, protocol violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiError {
    /// The peer hung up.
    Disconnected,
    /// No response arrived within the caller's deadline. The session
    /// itself may still be alive: the sequence-numbered envelope lets a
    /// later call discard whatever late answer eventually lands.
    Timeout,
    /// A frame failed to encode/decode.
    Codec(String),
    /// The engine reported an error.
    Engine(String),
    /// The engine *process* is gone: the supervisor confirmed the child
    /// exited (as opposed to a transport hiccup).
    EngineDied {
        /// The child's exit code, when the OS reported one.
        exit: Option<i32>,
        /// Whatever the child wrote to stderr before dying.
        stderr: String,
    },
}

impl fmt::Display for MiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiError::Disconnected => write!(f, "machine-interface peer disconnected"),
            MiError::Timeout => write!(f, "machine-interface call exceeded its deadline"),
            MiError::Codec(m) => write!(f, "machine-interface codec error: {m}"),
            MiError::Engine(m) => write!(f, "engine error: {m}"),
            MiError::EngineDied { exit, stderr } => {
                match exit {
                    Some(code) => write!(f, "engine process died (exit code {code})")?,
                    None => write!(f, "engine process died (killed by signal)")?,
                }
                if !stderr.trim().is_empty() {
                    write!(f, "; stderr: {}", stderr.trim())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for MiError {}

/// A running engine session: the client stub plus the server thread handle.
pub struct Session {
    /// Tracker-side stub; send commands through it.
    pub client: Client<transport::ChannelTransport>,
    handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Session {
    /// Sends `Terminate` (best effort, bounded) and joins the server
    /// thread — but only when Terminate was acknowledged; a wedged engine
    /// is detached instead of blocking the caller forever.
    pub fn shutdown(mut self) {
        let acked = self
            .client
            .call_deadline(Command::Terminate, Some(Duration::from_secs(2)))
            .is_ok();
        if let Some(h) = self.handle.take() {
            if acked {
                let _ = h.join();
            }
        }
    }

    /// Splits the session into its client stub and server thread handle,
    /// skipping the Drop-side Terminate. The supervisor uses this to own
    /// the two halves separately (the client goes behind a [`CommandPort`]
    /// chain, the handle into the backend bookkeeping).
    pub fn into_parts(mut self) -> (Client<transport::ChannelTransport>, Option<JoinHandle<()>>) {
        let handle = self.handle.take();
        let (dummy, _gone) = transport::duplex();
        let client = std::mem::replace(&mut self.client, Client::new(dummy));
        (client, handle)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Destructors must not fail or block indefinitely: fire Terminate
        // (bounded) and detach if the user did not call `shutdown`.
        if self.handle.take().is_some() {
            let _ = self
                .client
                .call_deadline(Command::Terminate, Some(Duration::from_secs(2)));
        }
    }
}

/// Spawns a MiniC engine on its own thread (the "GDB subprocess" analogue)
/// and returns the connected session.
pub fn spawn_minic(program: &minic::Program) -> Session {
    spawn_minic_inner(program, None)
}

/// Like [`spawn_minic`], but client, server, and engine all report into
/// `registry`: roundtrip latencies and byte gauges on the client side,
/// per-command counters on the server side, and `vm.minic.*` execution
/// stats from the engine.
pub fn spawn_minic_with_registry(program: &minic::Program, registry: obs::Registry) -> Session {
    spawn_minic_inner(program, Some(registry))
}

/// Like [`spawn_minic_with_registry`], running `program` optimized at
/// `opt` (0 = unchanged). The optimizer is observation-preserving, so the
/// session behaves identically through the MI surface at every level.
///
/// # Errors
///
/// Returns the verifier's findings when the program or any optimization
/// pass's output fails bytecode verification.
pub fn spawn_minic_opt_with_registry(
    program: &minic::Program,
    opt: u8,
    registry: obs::Registry,
) -> Result<Session, String> {
    let engine = minic_engine::MinicEngine::with_opt(program, opt)?;
    Ok(spawn_minic_engine(engine, Some(registry)))
}

fn spawn_minic_inner(program: &minic::Program, registry: Option<obs::Registry>) -> Session {
    spawn_minic_engine(minic_engine::MinicEngine::new(program), registry)
}

fn spawn_minic_engine(
    engine: minic_engine::MinicEngine,
    registry: Option<obs::Registry>,
) -> Session {
    let (a, b) = transport::duplex();
    let mut engine = engine;
    if let Some(reg) = registry.clone() {
        engine.set_registry(reg);
    }
    // Every session can record: the wrapper is inert until `Record`.
    let engine = record::RecordingEngine::new(engine);
    let server_reg = registry.clone();
    let handle = std::thread::Builder::new()
        .name("mi-minic-engine".into())
        .spawn(move || {
            let mut server = match server_reg {
                Some(reg) => Server::with_registry(engine, b, reg),
                None => Server::new(engine, b),
            };
            let _ = server.serve();
        })
        .expect("spawn engine thread");
    let client = match registry {
        Some(reg) => Client::with_registry(a, reg),
        None => Client::new(a),
    };
    Session {
        client,
        handle: Some(handle),
    }
}

/// Spawns a RISC-V engine on its own thread and returns the session.
pub fn spawn_asm(program: &miniasm::asm::AsmProgram) -> Session {
    spawn_asm_inner(program, None)
}

/// Like [`spawn_asm`], but client, server, and engine all report into
/// `registry` (engine stats appear as `vm.miniasm.*`).
pub fn spawn_asm_with_registry(
    program: &miniasm::asm::AsmProgram,
    registry: obs::Registry,
) -> Session {
    spawn_asm_inner(program, Some(registry))
}

fn spawn_asm_inner(program: &miniasm::asm::AsmProgram, registry: Option<obs::Registry>) -> Session {
    let (a, b) = transport::duplex();
    let mut engine = asm_engine::AsmEngine::new(program);
    if let Some(reg) = registry.clone() {
        engine.set_registry(reg);
    }
    let engine = record::RecordingEngine::new(engine);
    let server_reg = registry.clone();
    let handle = std::thread::Builder::new()
        .name("mi-asm-engine".into())
        .spawn(move || {
            let mut server = match server_reg {
                Some(reg) => Server::with_registry(engine, b, reg),
                None => Server::new(engine, b),
            };
            let _ = server.serve();
        })
        .expect("spawn engine thread");
    let client = match registry {
        Some(reg) => Client::with_registry(a, reg),
        None => Client::new(a),
    };
    Session {
        client,
        handle: Some(handle),
    }
}
