//! Recording and replay at the MI boundary.
//!
//! [`RecordingEngine`] wraps any [`Engine`] and teaches it the trace
//! vocabulary: [`Command::Record`] arms a [`trace::Store`] that captures
//! the full state snapshot and output delta after every pause the client
//! drives; [`Command::Seek`] positions a read-only inspection cursor
//! inside the recording; [`Command::QueryHistory`] and
//! [`Command::TraceStats`] answer from the store's indexes. The wrapper
//! is transparent while recording is off — every command forwards to the
//! inner engine unchanged — so all spawned sessions carry it.
//!
//! [`ReplayEngine`] is the other half: a session engine whose "inferior"
//! is a finished recording behind an `Arc<trace::Store>`. The session
//! host shelves recordings published with [`Command::PublishTrace`] and
//! opens any number of replay sessions over one shelved store with
//! [`Command::OpenReplay`] — record once, scrub many, each reader with
//! its own cursor, segment cache, and metrics.

use crate::protocol::{Command, Response};
use crate::server::{Engine, SliceOutcome};
use state::{ExitStatus, PauseReason, ProgramState, Variable};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The host's shared shelf of published recordings, keyed by the name
/// given to [`Command::PublishTrace`].
pub type TraceShelf = Arc<Mutex<HashMap<String, Arc<trace::Store>>>>;

/// Creates an empty trace shelf.
#[must_use]
pub fn new_shelf() -> TraceShelf {
    Arc::new(Mutex::new(HashMap::new()))
}

fn is_control(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Start | Command::Resume | Command::Step | Command::Next | Command::Finish
    )
}

/// Finds `name` (bare or `frame::var`-qualified) in a recorded snapshot,
/// innermost frame first, then globals — the same resolution order the
/// live engines use for `GetVariable`.
fn find_variable(st: &ProgramState, name: &str) -> Option<Variable> {
    let (frame_filter, bare) = match name.split_once("::") {
        Some((f, v)) => (Some(f), v),
        None => (None, name),
    };
    for frame in st.frame.chain() {
        if frame_filter.is_some_and(|f| f != frame.name()) {
            continue;
        }
        if let Some(var) = frame.variable(bare) {
            return Some(var.clone());
        }
    }
    if frame_filter.is_none() {
        return st.globals.iter().find(|v| v.name() == bare).cloned();
    }
    None
}

/// Serves an inspection command against a recorded snapshot.
fn inspect_recorded(st: &ProgramState, cmd: &Command) -> Response {
    match cmd {
        Command::GetState => Response::State(Box::new(st.clone())),
        Command::GetGlobals => Response::Globals(st.globals.clone()),
        Command::GetVariable { name } => Response::Variable(find_variable(st, name)),
        _ => Response::Error {
            message: format!("{} is not answerable from a recording", cmd.kind()),
        },
    }
}

/// An [`Engine`] wrapper that records every pause into a
/// [`trace::Store`] and serves the trace commands.
///
/// While recording is armed, the wrapper drains the inner engine's
/// output after each pause (the delta belongs to the recording), so it
/// buffers that output and serves `GetOutput` itself — the client still
/// sees exactly the bytes the inferior produced, in order, drained
/// exactly once.
pub struct RecordingEngine<E> {
    inner: E,
    shelf: Option<TraceShelf>,
    store: Option<trace::Store>,
    started: bool,
    finished: bool,
    /// Output captured from the inner engine but not yet drained by the
    /// client's own `GetOutput`.
    pending_out: String,
    /// Recorded pause the inspection cursor points at; `None` = live.
    cursor: Option<u64>,
}

impl<E: Engine> RecordingEngine<E> {
    /// Wraps `inner`; `PublishTrace` will be rejected (no shelf).
    pub fn new(inner: E) -> Self {
        Self::with_shelf(inner, None)
    }

    /// Wraps `inner` with a host trace shelf for `PublishTrace`.
    pub fn with_shelf(inner: E, shelf: Option<TraceShelf>) -> Self {
        RecordingEngine {
            inner,
            shelf,
            store: None,
            started: false,
            finished: false,
            pending_out: String::new(),
            cursor: None,
        }
    }

    /// The inner engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The recording built so far, if armed.
    pub fn store(&self) -> Option<&trace::Store> {
        self.store.as_ref()
    }

    /// Captures the pause a control command just produced (or the exit
    /// that ended the run) into the armed store.
    fn after_control(&mut self, resp: &Response) {
        if self.store.is_none() {
            return;
        }
        let Response::Paused(reason) = resp else {
            return;
        };
        if reason.is_alive() {
            let Response::State(st) = self.inner.handle(Command::GetState) else {
                return;
            };
            let delta = match self.inner.handle(Command::GetOutput) {
                Response::Output(s) => s,
                _ => String::new(),
            };
            self.pending_out.push_str(&delta);
            if let Some(store) = self.store.as_mut() {
                store.push(&st, &delta);
            }
        } else if !self.finished {
            self.finished = true;
            // Output produced by the very last step, plus the exit code.
            if let Response::Output(tail) = self.inner.handle(Command::GetOutput) {
                if !tail.is_empty() {
                    self.pending_out.push_str(&tail);
                    if let Some(store) = self.store.as_mut() {
                        store.append_output_to_last(&tail);
                    }
                }
            }
            let code = match self.inner.handle(Command::GetExitCode) {
                Response::ExitCode(code) => code,
                _ => None,
            };
            if let Some(store) = self.store.as_mut() {
                store.set_exit_code(code);
                store.freeze();
            }
        }
    }

    fn serve_trace_cmd(&mut self, cmd: &Command) -> Option<Response> {
        match cmd {
            Command::Record { keyframe_every } => Some(self.arm(*keyframe_every)),
            Command::Seek { pause } => Some(self.seek(*pause)),
            Command::QueryHistory {
                variable,
                from,
                to,
                last_only,
            } => Some(self.query_history(variable, *from, *to, *last_only)),
            Command::TraceStats => Some(match &self.store {
                Some(store) => Response::TraceStats {
                    pauses: store.len(),
                    keyframes: store.keyframes(),
                    bytes: store.to_bytes().len() as u64,
                },
                None => no_recording(),
            }),
            Command::PublishTrace { name } => Some(self.publish(name)),
            _ => None,
        }
    }

    fn arm(&mut self, keyframe_every: u32) -> Response {
        if self.started {
            return Response::Error {
                message: "Record must precede Start: the store captures from the first pause"
                    .into(),
            };
        }
        let (file, source) = match self.inner.handle(Command::GetSource) {
            Response::Source { file, text } => (file, text),
            other => {
                return Response::Error {
                    message: format!("engine cannot report its source: {}", other.summary()),
                }
            }
        };
        self.store = Some(trace::Store::new(file, source, keyframe_every.max(1)));
        Response::Ok
    }

    fn seek(&mut self, pause: u64) -> Response {
        let Some(store) = &self.store else {
            return no_recording();
        };
        match store.state_at(pause) {
            Ok(st) => {
                self.cursor = Some(pause);
                Response::Paused(st.reason)
            }
            Err(e) => Response::Error { message: e },
        }
    }

    fn query_history(
        &self,
        variable: &str,
        from: Option<u64>,
        to: Option<u64>,
        last_only: bool,
    ) -> Response {
        let Some(store) = &self.store else {
            return no_recording();
        };
        Response::History {
            hits: history_hits(store, variable, from, to, last_only),
        }
    }

    fn publish(&mut self, name: &str) -> Response {
        let Some(shelf) = &self.shelf else {
            return Response::Error {
                message: "no trace shelf here: PublishTrace needs a session host".into(),
            };
        };
        let Some(store) = &self.store else {
            return no_recording();
        };
        let mut frozen = store.clone();
        frozen.freeze();
        shelf
            .lock()
            .unwrap()
            .insert(name.to_string(), Arc::new(frozen));
        Response::Ok
    }
}

fn no_recording() -> Response {
    Response::Error {
        message: "no recording: arm one with Record before Start".into(),
    }
}

/// Answers a `QueryHistory` against a store.
fn history_hits(
    store: &trace::Store,
    variable: &str,
    from: Option<u64>,
    to: Option<u64>,
    last_only: bool,
) -> Vec<trace::HistoryHit> {
    let to = to.unwrap_or_else(|| store.len().saturating_sub(1));
    if last_only {
        return store
            .last_change(variable, Some(to))
            .into_iter()
            .filter(|h| h.pause >= from.unwrap_or(0))
            .collect();
    }
    store.writes_in(variable, from.unwrap_or(0), to)
}

impl<E: Engine> Engine for RecordingEngine<E> {
    fn handle(&mut self, cmd: Command) -> Response {
        if let Some(resp) = self.serve_trace_cmd(&cmd) {
            return resp;
        }
        if is_control(&cmd) {
            // Control always acts on the live inferior: snap back.
            self.cursor = None;
            if cmd == Command::Start {
                self.started = true;
            }
            let resp = self.inner.handle(cmd);
            self.after_control(&resp);
            return resp;
        }
        if let Some(n) = self.cursor {
            if matches!(
                cmd,
                Command::GetState | Command::GetGlobals | Command::GetVariable { .. }
            ) {
                let store = self.store.as_ref().expect("cursor implies a store");
                return match store.state_at(n) {
                    Ok(st) => inspect_recorded(&st, &cmd),
                    Err(e) => Response::Error { message: e },
                };
            }
        }
        if cmd == Command::GetOutput && self.store.is_some() {
            // The recording drains the inner buffer at every pause; the
            // client's drain is served from what was captured.
            return Response::Output(std::mem::take(&mut self.pending_out));
        }
        self.inner.handle(cmd)
    }

    fn handle_sliced(&mut self, cmd: Command, fuel: u64) -> SliceOutcome {
        if is_control(&cmd) {
            self.cursor = None;
            if cmd == Command::Start {
                self.started = true;
            }
            let outcome = self.inner.handle_sliced(cmd, fuel);
            if let SliceOutcome::Done(resp) = &outcome {
                self.after_control(resp);
            }
            return outcome;
        }
        SliceOutcome::Done(self.handle(cmd))
    }

    fn resume_sliced(&mut self, fuel: u64) -> SliceOutcome {
        let outcome = self.inner.resume_sliced(fuel);
        if let SliceOutcome::Done(resp) = &outcome {
            self.after_control(resp);
        }
        outcome
    }
}

/// A session engine whose inferior is a finished recording.
///
/// Control commands move a cursor over the recorded pauses (`Next` and
/// `Finish` use the store's depth column, so they do not even decode
/// skipped states); `Seek` jumps anywhere in O(log n); inspections are
/// served through a per-reader segment cache. Mutating commands
/// (breakpoints, sanitizer, limits) are rejected: a replay session is a
/// read-only view, shared with every other reader of the same store.
pub struct ReplayEngine {
    reader: trace::TraceReader,
    shelf: Option<TraceShelf>,
    /// Current pause; `None` before `Start`.
    cursor: Option<u64>,
    finished: bool,
    /// Pauses whose output has been released to the client (high-water
    /// mark of forward progress — seeking backwards never re-releases).
    out_released: u64,
    /// Pauses whose output the client has already drained.
    out_drained: u64,
    /// Serialized size, computed once (the store is frozen).
    disk_bytes: u64,
}

impl ReplayEngine {
    /// Opens a reader over a shared store; metrics go to `registry`.
    #[must_use]
    pub fn new(store: Arc<trace::Store>, registry: obs::Registry) -> Self {
        let disk_bytes = store.to_bytes().len() as u64;
        ReplayEngine {
            reader: trace::TraceReader::new(store, registry),
            shelf: None,
            cursor: None,
            finished: false,
            out_released: 0,
            out_drained: 0,
            disk_bytes,
        }
    }

    /// Attaches the host shelf so the replay session can re-publish its
    /// store under another name.
    #[must_use]
    pub fn with_shelf(mut self, shelf: TraceShelf) -> Self {
        self.shelf = Some(shelf);
        self
    }

    fn store(&self) -> &Arc<trace::Store> {
        self.reader.store()
    }

    fn exit_reason(&self) -> PauseReason {
        PauseReason::Exited(ExitStatus::Exited(self.store().exit_code().unwrap_or(0)))
    }

    /// Lands on pause `n` (or exits past the end) and answers like a
    /// live engine's pause report.
    fn land(&mut self, n: u64) -> Response {
        let len = self.store().len();
        if n >= len {
            self.cursor = len.checked_sub(1);
            self.finished = true;
            self.out_released = len;
            return Response::Paused(self.exit_reason());
        }
        self.cursor = Some(n);
        self.finished = false;
        self.out_released = self.out_released.max(n + 1);
        match self.reader.state_at(n) {
            Ok(st) => Response::Paused(st.reason.clone()),
            Err(e) => Response::Error { message: e },
        }
    }

    /// First pause after `from` whose depth satisfies `keep`; exits when
    /// none does. Drives `Next`/`Finish` off the depth column alone.
    fn advance_until(&mut self, from: u64, keep: impl Fn(u32) -> bool) -> Response {
        let mut n = from;
        while let Some(d) = self.store().depth_at(n) {
            if keep(d) {
                return self.land(n);
            }
            n += 1;
        }
        self.land(n)
    }

    fn current_state(&self) -> Result<Arc<ProgramState>, String> {
        match self.cursor {
            Some(n) => self.reader.state_at(n),
            None => Err("inferior not started".into()),
        }
    }
}

impl Engine for ReplayEngine {
    fn handle(&mut self, cmd: Command) -> Response {
        match cmd {
            Command::Start => {
                self.out_released = 0;
                self.out_drained = 0;
                self.finished = false;
                self.cursor = None;
                self.land(0)
            }
            Command::Step => match self.cursor {
                Some(n) if !self.finished => self.land(n + 1),
                _ => Response::Error {
                    message: "inferior not running".into(),
                },
            },
            Command::Next => match self.cursor {
                Some(n) if !self.finished => {
                    let depth = self.store().depth_at(n).unwrap_or(0);
                    self.advance_until(n + 1, |d| d <= depth)
                }
                _ => Response::Error {
                    message: "inferior not running".into(),
                },
            },
            Command::Finish => match self.cursor {
                Some(n) if !self.finished => {
                    let depth = self.store().depth_at(n).unwrap_or(0);
                    self.advance_until(n + 1, |d| d < depth)
                }
                _ => Response::Error {
                    message: "inferior not running".into(),
                },
            },
            Command::Resume => match self.cursor {
                Some(_) if !self.finished => self.land(self.store().len()),
                _ => Response::Error {
                    message: "inferior not running".into(),
                },
            },
            Command::Seek { pause } => {
                if pause >= self.store().len() {
                    return Response::Error {
                        message: format!("pause {pause} out of range (len {})", self.store().len()),
                    };
                }
                self.land(pause)
            }
            Command::GetState | Command::GetGlobals | Command::GetVariable { .. } => {
                match self.current_state() {
                    Ok(st) => inspect_recorded(&st, &cmd),
                    Err(e) => Response::Error { message: e },
                }
            }
            Command::GetOutput => {
                let out = self
                    .store()
                    .output_range(self.out_drained, self.out_released)
                    .to_string();
                self.out_drained = self.out_released;
                Response::Output(out)
            }
            Command::GetExitCode => Response::ExitCode(if self.finished {
                self.store().exit_code()
            } else {
                None
            }),
            Command::GetSource => Response::Source {
                file: self.store().file().to_string(),
                text: self.store().source().to_string(),
            },
            Command::GetBreakableLines => Response::Lines(self.store().breakable_lines()),
            Command::QueryHistory {
                variable,
                from,
                to,
                last_only,
            } => Response::History {
                hits: history_hits(self.store(), &variable, from, to, last_only),
            },
            Command::TraceStats => Response::TraceStats {
                pauses: self.store().len(),
                keyframes: self.store().keyframes(),
                bytes: self.disk_bytes,
            },
            Command::PublishTrace { name } => match &self.shelf {
                Some(shelf) => {
                    shelf
                        .lock()
                        .unwrap()
                        .insert(name, self.store().as_ref().clone().into());
                    Response::Ok
                }
                None => Response::Error {
                    message: "no trace shelf here: PublishTrace needs a session host".into(),
                },
            },
            Command::Terminate => Response::Ok,
            other => Response::Error {
                message: format!("{} is not available in a replay session", other.kind()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::{Frame, Prim, Scope, SourceLocation, Value};

    fn mk_store(n: u64) -> trace::Store {
        let mut store = trace::Store::new("r.c", "int main() { return 7; }", 8);
        for i in 0..n {
            let mut frame = Frame::new("main", 0, SourceLocation::new("r.c", (i + 1) as u32));
            frame.insert_variable(Variable::new(
                "x",
                Scope::Local,
                Value::primitive(Prim::Int(i as i64), "int"),
            ));
            let reason = if i == 0 {
                PauseReason::Started
            } else {
                PauseReason::Step
            };
            store.push(&ProgramState::new(frame, vec![], reason), &format!("{i};"));
        }
        store.set_exit_code(Some(7));
        store.freeze();
        store
    }

    #[test]
    fn replay_engine_scrubs_and_drains_output_once() {
        let mut eng = ReplayEngine::new(Arc::new(mk_store(10)), obs::Registry::new());
        assert_eq!(
            eng.handle(Command::Start),
            Response::Paused(PauseReason::Started)
        );
        assert_eq!(
            eng.handle(Command::GetOutput),
            Response::Output("0;".into())
        );
        assert_eq!(
            eng.handle(Command::Step),
            Response::Paused(PauseReason::Step)
        );
        assert_eq!(
            eng.handle(Command::Step),
            Response::Paused(PauseReason::Step)
        );
        assert_eq!(
            eng.handle(Command::GetOutput),
            Response::Output("1;2;".into())
        );
        // Seek back: inspections answer from the recording, output does
        // not rewind or repeat.
        assert_eq!(
            eng.handle(Command::Seek { pause: 0 }),
            Response::Paused(PauseReason::Started)
        );
        match eng.handle(Command::GetVariable { name: "x".into() }) {
            Response::Variable(Some(v)) => assert_eq!(state::render_value(v.value()), "0"),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(
            eng.handle(Command::GetOutput),
            Response::Output(String::new())
        );
        // Run off the end: exit surfaces like a live engine.
        assert_eq!(
            eng.handle(Command::Resume),
            Response::Paused(PauseReason::Exited(ExitStatus::Exited(7)))
        );
        assert_eq!(
            eng.handle(Command::GetExitCode),
            Response::ExitCode(Some(7))
        );
        assert_eq!(
            eng.handle(Command::GetOutput),
            Response::Output("3;4;5;6;7;8;9;".into())
        );
        // Mutation is refused.
        assert!(matches!(
            eng.handle(Command::SetBreakLine { line: 3 }),
            Response::Error { .. }
        ));
    }

    #[test]
    fn replay_engine_answers_history_and_stats() {
        let mut eng = ReplayEngine::new(Arc::new(mk_store(20)), obs::Registry::new());
        match eng.handle(Command::QueryHistory {
            variable: "x".into(),
            from: Some(3),
            to: Some(5),
            last_only: false,
        }) {
            Response::History { hits } => {
                assert_eq!(hits.iter().map(|h| h.pause).collect::<Vec<_>>(), [3, 4, 5]);
            }
            other => panic!("unexpected: {other:?}"),
        }
        match eng.handle(Command::TraceStats) {
            Response::TraceStats {
                pauses,
                keyframes,
                bytes,
            } => {
                assert_eq!(pauses, 20);
                assert_eq!(keyframes, 3);
                assert!(bytes > 0);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
