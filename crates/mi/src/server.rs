//! The MI server (engine side) and client (tracker side).

use crate::protocol::{Command, Response};
use crate::transport::Transport;
use crate::MiError;

/// A debugger engine: executes one command against its inferior.
pub trait Engine {
    /// Handles one command. Engines never panic on bad input; they return
    /// [`Response::Error`].
    fn handle(&mut self, command: Command) -> Response;
}

/// Pumps commands from a transport into an engine until `Terminate`.
#[derive(Debug)]
pub struct Server<E, T> {
    engine: E,
    transport: T,
}

impl<E: Engine, T: Transport> Server<E, T> {
    /// Creates a server from an engine and its transport endpoint.
    pub fn new(engine: E, transport: T) -> Self {
        Server { engine, transport }
    }

    /// Serves until `Terminate` arrives or the peer disconnects.
    pub fn serve(&mut self) {
        loop {
            let Ok(frame) = self.transport.recv() else {
                return;
            };
            let response = match serde_json::from_slice::<Command>(&frame) {
                Ok(cmd) => {
                    let stop = cmd == Command::Terminate;
                    let resp = self.engine.handle(cmd);
                    let bytes =
                        serde_json::to_vec(&resp).expect("responses always serialize");
                    let _ = self.transport.send(&bytes);
                    if stop {
                        return;
                    }
                    continue;
                }
                Err(e) => Response::Error {
                    message: format!("malformed command: {e}"),
                },
            };
            let bytes = serde_json::to_vec(&response).expect("responses always serialize");
            if self.transport.send(&bytes).is_err() {
                return;
            }
        }
    }
}

/// Tracker-side stub: sends a command, waits for the response.
#[derive(Debug)]
pub struct Client<T> {
    transport: T,
}

impl<T: Transport> Client<T> {
    /// Creates a client over a transport endpoint.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// Sends `command` and blocks for the engine's response.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`MiError`]; engine-level failures
    /// come back as [`Response::Error`].
    pub fn call(&mut self, command: Command) -> Result<Response, MiError> {
        let bytes = serde_json::to_vec(&command)
            .map_err(|e| MiError::Codec(e.to_string()))?;
        self.transport.send(&bytes)?;
        let frame = self.transport.recv()?;
        serde_json::from_slice(&frame).map_err(|e| MiError::Codec(e.to_string()))
    }

    /// Access to the underlying transport (byte counters for benches).
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex;

    /// An engine that echoes command names.
    struct Echo;

    impl Engine for Echo {
        fn handle(&mut self, command: Command) -> Response {
            match command {
                Command::Terminate => Response::Ok,
                Command::GetOutput => Response::Output("echo".into()),
                _ => Response::Error {
                    message: "unsupported".into(),
                },
            }
        }
    }

    #[test]
    fn request_response_over_thread() {
        let (a, b) = duplex();
        let handle = std::thread::spawn(move || {
            Server::new(Echo, b).serve();
        });
        let mut client = Client::new(a);
        assert_eq!(
            client.call(Command::GetOutput).unwrap(),
            Response::Output("echo".into())
        );
        assert!(matches!(
            client.call(Command::Start).unwrap(),
            Response::Error { .. }
        ));
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
    }

    #[test]
    fn server_survives_malformed_frames() {
        let (mut a, b) = duplex();
        let handle = std::thread::spawn(move || {
            Server::new(Echo, b).serve();
        });
        a.send(b"not json").unwrap();
        let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
        // Still alive afterwards.
        let mut client = Client::new(a);
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
    }
}
