//! The MI server (engine side) and client (tracker side).

use crate::protocol::{Command, CommandFrame, Response, ResponseFrame};
use crate::transport::{Transport, TransportCounters};
use crate::MiError;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a serve loop ended *normally*. Abnormal ends (the transport
/// failing mid-session in a way that is neither a codec hiccup nor a
/// peer hang-up) are the `Err` side of [`Server::serve`] — the
/// `mi-server` binary exits nonzero on those so a supervisor can tell a
/// crashed boundary from a finished session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEnd {
    /// A `Terminate` command was served.
    Terminated,
    /// The peer closed its end of the transport (EOF / disconnect) —
    /// the normal end when a tracker simply drops its client.
    PeerClosed,
}

/// Outcome of one fuel-bounded slice of a command (see
/// [`Engine::handle_sliced`]).
#[derive(Debug)]
pub enum SliceOutcome {
    /// The command finished within the slice; this is the response —
    /// byte-identical to what an unsliced [`Engine::handle`] of the same
    /// command would have produced.
    Done(Response),
    /// The fuel ran out mid-command. Nothing is reported to the peer:
    /// the caller owns the yield (the session host re-queues the session
    /// and later calls [`Engine::resume_sliced`]). The inferior's state
    /// is exactly as if execution had merely progressed — a yield is
    /// never observable through the protocol.
    Yielded,
}

/// A debugger engine: executes one command against its inferior.
pub trait Engine {
    /// Handles one command. Engines never panic on bad input; they return
    /// [`Response::Error`].
    fn handle(&mut self, command: Command) -> Response;

    /// Handles one command, executing at most `fuel` VM steps before
    /// yielding. Control commands that would run longer return
    /// [`SliceOutcome::Yielded`] and are continued by
    /// [`Engine::resume_sliced`]; non-control commands always complete.
    /// The default ignores the fuel and completes the command — engines
    /// that cannot slice (test doubles, single-session servers) stay
    /// correct, they just cannot be preempted.
    fn handle_sliced(&mut self, command: Command, fuel: u64) -> SliceOutcome {
        let _ = fuel;
        SliceOutcome::Done(self.handle(command))
    }

    /// Continues the command that last yielded, with a fresh `fuel`
    /// allowance. Calling it with no yield pending is a caller bug and
    /// answered with a typed [`Response::Error`].
    fn resume_sliced(&mut self, fuel: u64) -> SliceOutcome {
        let _ = fuel;
        SliceOutcome::Done(Response::Error {
            message: "no sliced command pending".into(),
        })
    }
}

/// Pumps commands from a transport into an engine until `Terminate`.
pub struct Server<E, T> {
    engine: E,
    transport: T,
    registry: Option<obs::Registry>,
    /// Export ring answering `Command::Telemetry` event drains. Only
    /// attached by [`Server::with_telemetry`]: when client and server
    /// share one in-process registry there is nothing to drain, and an
    /// export ring would duplicate every event into the drain.
    export: Option<Arc<obs::ExportSink>>,
    flight: Option<obs::FlightRecorder>,
}

impl<E: Engine, T: Transport> Server<E, T> {
    /// Creates a server from an engine and its transport endpoint.
    pub fn new(engine: E, transport: T) -> Self {
        Server {
            engine,
            transport,
            registry: None,
            export: None,
            flight: None,
        }
    }

    /// Like [`Server::new`], but every served command bumps a
    /// `mi.server.cmd.<kind>` counter in `registry` (and undecodable
    /// frames bump `mi.server.cmd.Malformed`).
    pub fn with_registry(engine: E, transport: T, registry: obs::Registry) -> Self {
        Server {
            engine,
            transport,
            registry: Some(registry),
            export: None,
            flight: None,
        }
    }

    /// Like [`Server::with_registry`], but also attaches an export ring
    /// to the registry so `Command::Telemetry` can drain trace events
    /// (not just metrics) back over the wire. Used by the out-of-process
    /// `mi-server`, whose registry the tracker cannot see directly.
    pub fn with_telemetry(engine: E, transport: T, registry: obs::Registry) -> Self {
        let export = Arc::new(obs::ExportSink::new(4096));
        registry.add_sink(export.clone());
        Server {
            engine,
            transport,
            registry: Some(registry),
            export: Some(export),
            flight: None,
        }
    }

    /// Attaches the engine-side flight recorder: every served command
    /// and response summary lands in its bounded ring, so a post-mortem
    /// of a dead engine can name what it was doing last.
    pub fn set_flight_recorder(&mut self, flight: obs::FlightRecorder) {
        self.flight = Some(flight);
    }

    /// Serves until `Terminate` arrives or the peer disconnects.
    ///
    /// The loop accepts both wire forms: sequence-numbered
    /// [`CommandFrame`]s (answered with a [`ResponseFrame`] echoing the
    /// `seq`) and bare [`Command`]s from older peers (answered bare).
    /// Malformed frames — undecodable commands as well as transport-level
    /// codec failures like a corrupted length prefix — are answered with
    /// a bare [`Response::Error`] and the server keeps serving.
    /// [`Command::Ping`] is answered [`Response::Pong`] by the loop
    /// itself, without involving the engine, so the probe measures the
    /// boundary's liveness rather than the engine's.
    ///
    /// # Errors
    ///
    /// `Ok` for the two normal session ends (see [`ServeEnd`]); `Err`
    /// when the transport failed in a way the loop could not report back
    /// to the peer — a send failure, or a non-codec receive failure that
    /// is not a plain disconnect. The `mi-server` binary turns `Err` into
    /// a nonzero exit with a stderr diagnostic.
    pub fn serve(&mut self) -> Result<ServeEnd, MiError> {
        loop {
            let frame = match self.transport.recv() {
                Ok(frame) => frame,
                Err(MiError::Codec(m)) => {
                    // Framing-level garbage: the bytes never reached the
                    // command decoder. Report and keep the session alive;
                    // if even the report cannot be sent, the boundary is
                    // gone and the caller must know.
                    self.count_malformed();
                    let resp = Response::Error {
                        message: format!("unreadable frame: {m}"),
                    };
                    if let Some(end) = self.reply_bare(&resp)? {
                        return Ok(end);
                    }
                    continue;
                }
                Err(MiError::Disconnected) => return Ok(ServeEnd::PeerClosed),
                Err(e) => return Err(e),
            };
            let (seq, trace, decoded) = match serde_json::from_slice::<CommandFrame>(&frame) {
                Ok(cf) => (Some(cf.seq), cf.trace, Ok(cf.cmd)),
                Err(_) => (
                    None,
                    None,
                    serde_json::from_slice::<Command>(&frame).map_err(|e| e.to_string()),
                ),
            };
            match decoded {
                Ok(cmd) => {
                    if let Some(reg) = &self.registry {
                        reg.inc(&format!("mi.server.cmd.{}", cmd.kind()));
                    }
                    if let Some(flight) = &self.flight {
                        flight.record("cmd", cmd.kind());
                    }
                    let stop = cmd == Command::Terminate;
                    let resp = match cmd {
                        Command::Ping => Response::Pong {
                            now_us: self.registry.as_ref().map_or(0, obs::Registry::now_us),
                        },
                        Command::Telemetry { since } => self.drain_telemetry(since),
                        cmd => {
                            // Spans the engine opens while handling this
                            // command join the caller's trace.
                            obs::set_remote_context(trace);
                            let resp = self.engine.handle(cmd);
                            obs::set_remote_context(None);
                            resp
                        }
                    };
                    if let Some(flight) = &self.flight {
                        flight.record("resp", resp.summary());
                    }
                    let bytes = match seq {
                        Some(seq) => serde_json::to_vec(&ResponseFrame {
                            seq,
                            resp,
                            session: None,
                        }),
                        None => serde_json::to_vec(&resp),
                    }
                    .expect("responses always serialize");
                    if stop {
                        // The peer may already be gone when Terminate was
                        // a best-effort farewell; that is still a normal
                        // end.
                        let _ = self.transport.send(&bytes);
                        return Ok(ServeEnd::Terminated);
                    }
                    if let Some(end) = self.ship(&bytes)? {
                        return Ok(end);
                    }
                }
                Err(e) => {
                    self.count_malformed();
                    let resp = Response::Error {
                        message: format!("malformed command: {e}"),
                    };
                    if let Some(end) = self.reply_bare(&resp)? {
                        return Ok(end);
                    }
                }
            }
        }
    }

    /// Answers a telemetry drain from the server's own registry; a
    /// registry-less server answers an empty frame rather than erroring,
    /// so tracing stays strictly optional.
    fn drain_telemetry(&self, since: u64) -> Response {
        let frame = match &self.registry {
            Some(reg) => obs::telemetry::collect_frame(reg, self.export.as_deref(), since),
            // Echo the cursor back unchanged so a registry-less server
            // never rewinds the client's drain position.
            None => obs::TelemetryFrame {
                next_event: since,
                ..obs::TelemetryFrame::default()
            },
        };
        Response::Telemetry(Box::new(frame))
    }

    fn count_malformed(&self) {
        if let Some(reg) = &self.registry {
            reg.inc("mi.server.cmd.Malformed");
        }
    }

    fn reply_bare(&mut self, resp: &Response) -> Result<Option<ServeEnd>, MiError> {
        let bytes = serde_json::to_vec(resp).expect("responses always serialize");
        self.ship(&bytes)
    }

    /// Sends a reply; a peer that hung up while we were answering is a
    /// normal session end, any other send failure is abnormal.
    fn ship(&mut self, bytes: &[u8]) -> Result<Option<ServeEnd>, MiError> {
        match self.transport.send(bytes) {
            Ok(()) => Ok(None),
            Err(MiError::Disconnected) => Ok(Some(ServeEnd::PeerClosed)),
            Err(e) => Err(e),
        }
    }
}

/// Tracker-side stub: sends a command, waits for the response.
///
/// Commands are wrapped in sequence-numbered [`CommandFrame`]s. While
/// waiting for a response the client discards [`ResponseFrame`]s whose
/// `seq` is older than the command in flight — those are duplicated or
/// stale frames left over from a transport fault — so one faulty frame
/// never silently desynchronizes the whole session. Bare [`Response`]
/// frames (from servers predating the envelope) are accepted as-is.
#[derive(Debug)]
pub struct Client<T> {
    transport: T,
    registry: Option<obs::Registry>,
    next_seq: u64,
    envelope: bool,
}

impl<T: Transport> Client<T> {
    /// Creates a client over a transport endpoint.
    pub fn new(transport: T) -> Self {
        Client {
            transport,
            registry: None,
            next_seq: 0,
            envelope: true,
        }
    }

    /// Like [`Client::new`], but every roundtrip is timed into a
    /// `mi.client.roundtrip.<kind>` histogram and the transport's byte
    /// counters are mirrored into `mi.client.bytes_{sent,received}`
    /// gauges in `registry`. Discarded stale frames bump
    /// `mi.client.stale_frames`.
    pub fn with_registry(transport: T, registry: obs::Registry) -> Self {
        let mut c = Client::new(transport);
        c.registry = Some(registry);
        c
    }

    /// Creates a client speaking the legacy bare-frame wire form (no
    /// sequence numbers). Only useful against pre-envelope servers — a
    /// bare client cannot tell a duplicated response frame from the one
    /// it is waiting for, which is exactly the silent-desync failure the
    /// envelope exists to prevent. The conformance suite keeps this mode
    /// alive to demonstrate that failure.
    pub fn new_bare(transport: T) -> Self {
        let mut c = Client::new(transport);
        c.envelope = false;
        c
    }

    /// Sends `command` and blocks for the engine's response.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`MiError`]; engine-level failures
    /// come back as [`Response::Error`]. After an error the session
    /// stays usable: re-issuing a command allocates a fresh sequence
    /// number and any late response to the failed command is discarded.
    pub fn call(&mut self, command: Command) -> Result<Response, MiError> {
        self.call_deadline(command, None)
    }

    /// Like [`Client::call`], but gives up with [`MiError::Timeout`] once
    /// `deadline` has elapsed without the matching response arriving.
    ///
    /// The deadline covers the whole roundtrip, including any stale
    /// frames discarded along the way. On timeout nothing is torn down:
    /// the command may still reach the engine and its late response will
    /// be discarded as stale by the next call, so retrying an idempotent
    /// command after a timeout is safe.
    ///
    /// # Errors
    ///
    /// [`MiError::Timeout`] when the deadline expires; otherwise as
    /// [`Client::call`].
    pub fn call_deadline(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        let span = self
            .registry
            .as_ref()
            .map(|reg| reg.span(format!("mi.client.roundtrip.{}", command.kind())));
        // Stamp the roundtrip span's context onto the frame: engine-side
        // spans caused by this command become its (remote) children.
        let trace = span.as_ref().map(obs::Span::context);
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = if self.envelope {
            serde_json::to_vec(&CommandFrame {
                seq,
                cmd: command,
                trace,
                session: None,
            })
        } else {
            serde_json::to_vec(&command)
        }
        .map_err(|e| MiError::Codec(e.to_string()))?;
        self.transport.send(&bytes)?;
        let start = Instant::now();
        let resp = loop {
            let frame = match deadline {
                None => self.transport.recv()?,
                Some(d) => {
                    let remaining = d.checked_sub(start.elapsed()).ok_or(MiError::Timeout)?;
                    self.transport.recv_deadline(remaining)?
                }
            };
            if self.envelope {
                if let Ok(rf) = serde_json::from_slice::<ResponseFrame>(&frame) {
                    match rf.seq.cmp(&seq) {
                        std::cmp::Ordering::Equal => break rf.resp,
                        std::cmp::Ordering::Less => {
                            // Duplicate or stale frame from an earlier
                            // command (possibly one whose reply we never
                            // saw because of a fault): drop it and keep
                            // waiting for ours.
                            if let Some(reg) = &self.registry {
                                reg.inc("mi.client.stale_frames");
                            }
                            continue;
                        }
                        std::cmp::Ordering::Greater => {
                            return Err(MiError::Codec(format!(
                                "response seq {} is ahead of the command in flight ({seq})",
                                rf.seq
                            )));
                        }
                    }
                }
            }
            // Bare response: a legacy server, or this server reporting a
            // frame it could not attribute to a sequence number.
            break serde_json::from_slice::<Response>(&frame)
                .map_err(|e| MiError::Codec(e.to_string()))?;
        };
        drop(span);
        if let Some(reg) = &self.registry {
            let c = self.transport.counters();
            reg.set_gauge("mi.client.bytes_sent", c.bytes_sent);
            reg.set_gauge("mi.client.bytes_received", c.bytes_received);
            reg.set_gauge("mi.client.frames_sent", c.frames_sent);
            reg.set_gauge("mi.client.frames_received", c.frames_received);
        }
        Ok(resp)
    }

    /// Access to the underlying transport (byte counters for benches).
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

/// An object-safe handle to "somewhere commands can be sent": any
/// [`Client`], over any [`Transport`]. Trackers hold one of these so the
/// same tracker code drives an engine thread over in-process channels, a
/// fault-injection proxy, or an `mi-server` child process over real
/// pipes.
pub trait CommandPort: Send {
    /// Sends one command and blocks for its response.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`MiError`].
    fn call(&mut self, command: Command) -> Result<Response, MiError>;

    /// Like [`CommandPort::call`] but bounded: gives up with
    /// [`MiError::Timeout`] once `deadline` elapses. The default simply
    /// delegates to `call` (unbounded) so simple ports keep working;
    /// real clients override it.
    ///
    /// # Errors
    ///
    /// [`MiError::Timeout`] on deadline expiry; otherwise as `call`.
    fn call_deadline(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        let _ = deadline;
        self.call(command)
    }

    /// Traffic shipped through the underlying transport so far.
    fn counters(&self) -> TransportCounters;
}

impl<T: Transport + Send> CommandPort for Client<T> {
    fn call(&mut self, command: Command) -> Result<Response, MiError> {
        Client::call(self, command)
    }

    fn call_deadline(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        Client::call_deadline(self, command, deadline)
    }

    fn counters(&self) -> TransportCounters {
        self.transport.counters()
    }
}

impl<P: CommandPort + ?Sized> CommandPort for Box<P> {
    fn call(&mut self, command: Command) -> Result<Response, MiError> {
        (**self).call(command)
    }

    fn call_deadline(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        (**self).call_deadline(command, deadline)
    }

    fn counters(&self) -> TransportCounters {
        (**self).counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex;

    /// An engine that echoes command names.
    struct Echo;

    impl Engine for Echo {
        fn handle(&mut self, command: Command) -> Response {
            match command {
                Command::Terminate => Response::Ok,
                Command::GetOutput => Response::Output("echo".into()),
                _ => Response::Error {
                    message: "unsupported".into(),
                },
            }
        }
    }

    #[test]
    fn request_response_over_thread() {
        let (a, b) = duplex();
        let handle = std::thread::spawn(move || Server::new(Echo, b).serve());
        let mut client = Client::new(a);
        assert_eq!(
            client.call(Command::GetOutput).unwrap(),
            Response::Output("echo".into())
        );
        assert!(matches!(
            client.call(Command::Start).unwrap(),
            Response::Error { .. }
        ));
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        assert_eq!(handle.join().unwrap().unwrap(), ServeEnd::Terminated);
    }

    #[test]
    fn ping_answered_by_serve_loop_without_engine() {
        // Echo's handle() would answer Error for Ping; Pong proves the
        // serve loop intercepted it.
        let (a, b) = duplex();
        let handle = std::thread::spawn(move || Server::new(Echo, b).serve());
        let mut client = Client::new(a);
        assert!(matches!(
            client.call(Command::Ping).unwrap(),
            Response::Pong { .. }
        ));
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        assert_eq!(handle.join().unwrap().unwrap(), ServeEnd::Terminated);
    }

    #[test]
    fn telemetry_drains_idempotently_from_the_server_registry() {
        let reg = obs::Registry::new();
        let (a, b) = duplex();
        let server_reg = reg.clone();
        let handle = std::thread::spawn(move || {
            let mut server = Server::with_telemetry(Echo, b, server_reg);
            server.serve()
        });
        let mut client = Client::new(a);
        // Generate some server-side telemetry: spans land in the export
        // ring, the command counter accumulates.
        assert_eq!(
            client.call(Command::GetOutput).unwrap(),
            Response::Output("echo".into())
        );
        reg.span("vm.fake.exec").finish();
        let drain = |client: &mut Client<_>, since| match client
            .call(Command::Telemetry { since })
            .unwrap()
        {
            Response::Telemetry(frame) => *frame,
            other => panic!("expected Telemetry, got {other:?}"),
        };
        let first = drain(&mut client, 0);
        assert!(first.counters.contains_key("mi.server.cmd.GetOutput"));
        assert!(first.events.iter().any(|e| e.name == "vm.fake.exec"));
        assert!(first.now_us > 0 || first.next_event > 0);
        // Same cursor → same frame (retry safety); new cursor → empty.
        let again = drain(&mut client, 0);
        assert_eq!(again.events.len(), first.events.len());
        assert_eq!(again.next_event, first.next_event);
        let rest = drain(&mut client, first.next_event);
        assert!(rest.events.iter().all(|e| e.name != "vm.fake.exec"));
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn telemetry_without_a_registry_answers_an_empty_frame() {
        let (a, b) = duplex();
        let handle = std::thread::spawn(move || Server::new(Echo, b).serve());
        let mut client = Client::new(a);
        match client.call(Command::Telemetry { since: 9 }).unwrap() {
            Response::Telemetry(frame) => {
                assert!(frame.counters.is_empty());
                assert!(frame.events.is_empty());
                assert_eq!(frame.next_event, 9);
            }
            other => panic!("expected Telemetry, got {other:?}"),
        }
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn server_flight_recorder_captures_commands_and_responses() {
        let flight = obs::FlightRecorder::new(16);
        let (a, b) = duplex();
        let server_flight = flight.clone();
        let handle = std::thread::spawn(move || {
            let mut server = Server::new(Echo, b);
            server.set_flight_recorder(server_flight);
            server.serve()
        });
        let mut client = Client::new(a);
        client.call(Command::GetOutput).unwrap();
        client.call(Command::Terminate).unwrap();
        handle.join().unwrap().unwrap();
        let log = flight.log();
        assert_eq!(log.last_of("cmd").unwrap().detail, "Terminate");
        assert!(log
            .entries
            .iter()
            .any(|e| e.kind == "resp" && e.detail.contains("Output")));
    }

    #[test]
    fn dropped_client_ends_serve_with_peer_closed() {
        let (a, b) = duplex();
        let handle = std::thread::spawn(move || Server::new(Echo, b).serve());
        drop(a);
        assert_eq!(handle.join().unwrap().unwrap(), ServeEnd::PeerClosed);
    }

    #[test]
    fn unknown_command_variant_rejected_and_counted() {
        // A peer speaking a newer (or broken) protocol revision sends a
        // command id this server does not know: decode fails, the server
        // answers Error, counts it as Malformed, and keeps serving.
        let reg = obs::Registry::new();
        let (mut a, b) = duplex();
        let server_reg = reg.clone();
        let handle = std::thread::spawn(move || {
            let _ = Server::with_registry(Echo, b, server_reg).serve();
        });
        a.send(br#"{"SelfDestruct":{"countdown":3}}"#).unwrap();
        let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
        let Response::Error { message } = resp else {
            panic!("expected error for unknown command id");
        };
        assert!(message.contains("malformed command"), "{message}");
        let mut client = Client::new(a);
        assert_eq!(
            client.call(Command::GetOutput).unwrap(),
            Response::Output("echo".into())
        );
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mi.server.cmd.Malformed"), 1);
        assert_eq!(snap.counter("mi.server.cmd.GetOutput"), 1);
        assert_eq!(snap.counter("mi.server.cmd.Terminate"), 1);
    }

    #[test]
    fn malformed_json_frame_answered_with_error_and_counted() {
        let reg = obs::Registry::new();
        let (mut a, b) = duplex();
        let server_reg = reg.clone();
        let handle = std::thread::spawn(move || {
            let _ = Server::with_registry(Echo, b, server_reg).serve();
        });
        // Three flavours of garbage: truncated JSON, binary noise, valid
        // JSON of the wrong shape.
        for garbage in [
            &br#"{"GetOutput"#[..],
            &b"\x00\xff\xfe"[..],
            &b"[1,2,3]"[..],
        ] {
            a.send(garbage).unwrap();
            let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
            assert!(matches!(resp, Response::Error { .. }));
        }
        let mut client = Client::new(a);
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
        assert_eq!(reg.snapshot().counter("mi.server.cmd.Malformed"), 3);
    }

    #[test]
    fn server_survives_malformed_frames() {
        let (mut a, b) = duplex();
        let handle = std::thread::spawn(move || {
            let _ = Server::new(Echo, b).serve();
        });
        a.send(b"not json").unwrap();
        let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
        // Still alive afterwards.
        let mut client = Client::new(a);
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
    }
}
