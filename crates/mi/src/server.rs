//! The MI server (engine side) and client (tracker side).

use crate::protocol::{Command, Response};
use crate::transport::Transport;
use crate::MiError;

/// A debugger engine: executes one command against its inferior.
pub trait Engine {
    /// Handles one command. Engines never panic on bad input; they return
    /// [`Response::Error`].
    fn handle(&mut self, command: Command) -> Response;
}

/// Pumps commands from a transport into an engine until `Terminate`.
#[derive(Debug)]
pub struct Server<E, T> {
    engine: E,
    transport: T,
    registry: Option<obs::Registry>,
}

impl<E: Engine, T: Transport> Server<E, T> {
    /// Creates a server from an engine and its transport endpoint.
    pub fn new(engine: E, transport: T) -> Self {
        Server {
            engine,
            transport,
            registry: None,
        }
    }

    /// Like [`Server::new`], but every served command bumps a
    /// `mi.server.cmd.<kind>` counter in `registry` (and undecodable
    /// frames bump `mi.server.cmd.Malformed`).
    pub fn with_registry(engine: E, transport: T, registry: obs::Registry) -> Self {
        Server {
            engine,
            transport,
            registry: Some(registry),
        }
    }

    /// Serves until `Terminate` arrives or the peer disconnects.
    pub fn serve(&mut self) {
        loop {
            let Ok(frame) = self.transport.recv() else {
                return;
            };
            let response = match serde_json::from_slice::<Command>(&frame) {
                Ok(cmd) => {
                    if let Some(reg) = &self.registry {
                        reg.inc(&format!("mi.server.cmd.{}", cmd.kind()));
                    }
                    let stop = cmd == Command::Terminate;
                    let resp = self.engine.handle(cmd);
                    let bytes = serde_json::to_vec(&resp).expect("responses always serialize");
                    let _ = self.transport.send(&bytes);
                    if stop {
                        return;
                    }
                    continue;
                }
                Err(e) => {
                    if let Some(reg) = &self.registry {
                        reg.inc("mi.server.cmd.Malformed");
                    }
                    Response::Error {
                        message: format!("malformed command: {e}"),
                    }
                }
            };
            let bytes = serde_json::to_vec(&response).expect("responses always serialize");
            if self.transport.send(&bytes).is_err() {
                return;
            }
        }
    }
}

/// Tracker-side stub: sends a command, waits for the response.
#[derive(Debug)]
pub struct Client<T> {
    transport: T,
    registry: Option<obs::Registry>,
}

impl<T: Transport> Client<T> {
    /// Creates a client over a transport endpoint.
    pub fn new(transport: T) -> Self {
        Client {
            transport,
            registry: None,
        }
    }

    /// Like [`Client::new`], but every roundtrip is timed into a
    /// `mi.client.roundtrip.<kind>` histogram and the transport's byte
    /// counters are mirrored into `mi.client.bytes_{sent,received}`
    /// gauges in `registry`.
    pub fn with_registry(transport: T, registry: obs::Registry) -> Self {
        Client {
            transport,
            registry: Some(registry),
        }
    }

    /// Sends `command` and blocks for the engine's response.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`MiError`]; engine-level failures
    /// come back as [`Response::Error`].
    pub fn call(&mut self, command: Command) -> Result<Response, MiError> {
        let span = self
            .registry
            .as_ref()
            .map(|reg| reg.span(format!("mi.client.roundtrip.{}", command.kind())));
        let bytes = serde_json::to_vec(&command).map_err(|e| MiError::Codec(e.to_string()))?;
        self.transport.send(&bytes)?;
        let frame = self.transport.recv()?;
        let resp: Response =
            serde_json::from_slice(&frame).map_err(|e| MiError::Codec(e.to_string()))?;
        drop(span);
        if let Some(reg) = &self.registry {
            let c = self.transport.counters();
            reg.set("mi.client.bytes_sent", c.bytes_sent);
            reg.set("mi.client.bytes_received", c.bytes_received);
            reg.set("mi.client.frames_sent", c.frames_sent);
            reg.set("mi.client.frames_received", c.frames_received);
        }
        Ok(resp)
    }

    /// Access to the underlying transport (byte counters for benches).
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex;

    /// An engine that echoes command names.
    struct Echo;

    impl Engine for Echo {
        fn handle(&mut self, command: Command) -> Response {
            match command {
                Command::Terminate => Response::Ok,
                Command::GetOutput => Response::Output("echo".into()),
                _ => Response::Error {
                    message: "unsupported".into(),
                },
            }
        }
    }

    #[test]
    fn request_response_over_thread() {
        let (a, b) = duplex();
        let handle = std::thread::spawn(move || {
            Server::new(Echo, b).serve();
        });
        let mut client = Client::new(a);
        assert_eq!(
            client.call(Command::GetOutput).unwrap(),
            Response::Output("echo".into())
        );
        assert!(matches!(
            client.call(Command::Start).unwrap(),
            Response::Error { .. }
        ));
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
    }

    #[test]
    fn unknown_command_variant_rejected_and_counted() {
        // A peer speaking a newer (or broken) protocol revision sends a
        // command id this server does not know: decode fails, the server
        // answers Error, counts it as Malformed, and keeps serving.
        let reg = obs::Registry::new();
        let (mut a, b) = duplex();
        let server_reg = reg.clone();
        let handle = std::thread::spawn(move || {
            Server::with_registry(Echo, b, server_reg).serve();
        });
        a.send(br#"{"SelfDestruct":{"countdown":3}}"#).unwrap();
        let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
        let Response::Error { message } = resp else {
            panic!("expected error for unknown command id");
        };
        assert!(message.contains("malformed command"), "{message}");
        let mut client = Client::new(a);
        assert_eq!(
            client.call(Command::GetOutput).unwrap(),
            Response::Output("echo".into())
        );
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mi.server.cmd.Malformed"), 1);
        assert_eq!(snap.counter("mi.server.cmd.GetOutput"), 1);
        assert_eq!(snap.counter("mi.server.cmd.Terminate"), 1);
    }

    #[test]
    fn malformed_json_frame_answered_with_error_and_counted() {
        let reg = obs::Registry::new();
        let (mut a, b) = duplex();
        let server_reg = reg.clone();
        let handle = std::thread::spawn(move || {
            Server::with_registry(Echo, b, server_reg).serve();
        });
        // Three flavours of garbage: truncated JSON, binary noise, valid
        // JSON of the wrong shape.
        for garbage in [
            &br#"{"GetOutput"#[..],
            &b"\x00\xff\xfe"[..],
            &b"[1,2,3]"[..],
        ] {
            a.send(garbage).unwrap();
            let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
            assert!(matches!(resp, Response::Error { .. }));
        }
        let mut client = Client::new(a);
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
        assert_eq!(reg.snapshot().counter("mi.server.cmd.Malformed"), 3);
    }

    #[test]
    fn server_survives_malformed_frames() {
        let (mut a, b) = duplex();
        let handle = std::thread::spawn(move || {
            Server::new(Echo, b).serve();
        });
        a.send(b"not json").unwrap();
        let resp: Response = serde_json::from_slice(&a.recv().unwrap()).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
        // Still alive afterwards.
        let mut client = Client::new(a);
        assert_eq!(client.call(Command::Terminate).unwrap(), Response::Ok);
        handle.join().unwrap();
    }
}
