//! Byte transports with length-delimited framing.
//!
//! The paper's tracker talks to GDB through an OS pipe. [`duplex`] builds
//! the in-process analogue: two [`ChannelTransport`] endpoints connected by
//! byte channels. Frames are serialized JSON preceded by a 4-byte
//! little-endian length — the content truly leaves the sender as bytes and
//! is re-parsed by the receiver, so nothing structural can sneak across.

use crate::MiError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Upper bound on a single frame's payload size, in bytes.
///
/// A corrupted length prefix (or a peer gone haywire) must not make the
/// receiver trust an absurd header and attempt a multi-gigabyte read:
/// both transports reject frames whose claimed or actual size exceeds
/// this cap with a typed [`MiError::Codec`] instead.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Traffic accounting every transport keeps, regardless of medium.
///
/// `bytes_*` include framing overhead (length prefixes, newline
/// delimiters): they measure what actually crosses the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Bytes shipped to the peer, framing included.
    pub bytes_sent: u64,
    /// Bytes received from the peer, framing included.
    pub bytes_received: u64,
    /// Frames shipped to the peer.
    pub frames_sent: u64,
    /// Frames received from the peer.
    pub frames_received: u64,
}

impl TransportCounters {
    /// Total bytes in both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// A bidirectional byte-frame transport.
pub trait Transport {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`MiError::Disconnected`] when the peer is gone.
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError>;

    /// Receives one frame, blocking.
    ///
    /// # Errors
    ///
    /// [`MiError::Disconnected`] when the peer is gone.
    fn recv(&mut self) -> Result<Vec<u8>, MiError>;

    /// Receives one frame, waiting at most `deadline`.
    ///
    /// The default implementation ignores the deadline and blocks — a
    /// transport that cannot interrupt its read (e.g. a borrowed byte
    /// stream) keeps its old behaviour. Deadline-capable transports
    /// ([`ChannelTransport`], [`PumpedTransport`]) override this; they
    /// are what the supervision layer builds on.
    ///
    /// # Errors
    ///
    /// [`MiError::Timeout`] when the deadline expires with no frame;
    /// [`MiError::Disconnected`] when the peer is gone.
    fn recv_deadline(&mut self, deadline: Duration) -> Result<Vec<u8>, MiError> {
        let _ = deadline;
        self.recv()
    }

    /// Traffic shipped through this endpoint so far.
    fn counters(&self) -> TransportCounters;
}

/// Transport over in-process byte channels (the pipe analogue).
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    counters: TransportCounters,
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        if frame.len() > MAX_FRAME_LEN {
            return Err(MiError::Codec(format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                frame.len()
            )));
        }
        // Length-prefix framing: mimic a real byte stream even though the
        // channel already preserves message boundaries.
        let mut wire = Vec::with_capacity(frame.len() + 4);
        wire.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        wire.extend_from_slice(frame);
        self.counters.bytes_sent += wire.len() as u64;
        self.counters.frames_sent += 1;
        self.tx.send(wire).map_err(|_| MiError::Disconnected)
    }

    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        let wire = self.rx.recv().map_err(|_| MiError::Disconnected)?;
        self.decode_wire(wire)
    }

    fn recv_deadline(&mut self, deadline: Duration) -> Result<Vec<u8>, MiError> {
        let wire = self.rx.recv_timeout(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => MiError::Timeout,
            RecvTimeoutError::Disconnected => MiError::Disconnected,
        })?;
        self.decode_wire(wire)
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}

impl ChannelTransport {
    fn decode_wire(&mut self, wire: Vec<u8>) -> Result<Vec<u8>, MiError> {
        self.counters.bytes_received += wire.len() as u64;
        self.counters.frames_received += 1;
        decode_channel_wire(wire)
    }

    /// Splits the transport into independently-owned send and receive
    /// halves, so one side can live on a reader thread while another
    /// thread writes — the shape a [`crate::host::SessionHost`]
    /// connection needs. Counters stay with whichever half moved them.
    pub fn split(self) -> (ChannelFrameTx, ChannelFrameRx) {
        (
            ChannelFrameTx { tx: self.tx },
            ChannelFrameRx { rx: self.rx },
        )
    }
}

/// Validates one length-prefixed channel message and strips the prefix.
fn decode_channel_wire(wire: Vec<u8>) -> Result<Vec<u8>, MiError> {
    if wire.len() < 4 {
        return Err(MiError::Codec("short frame".into()));
    }
    let len = u32::from_le_bytes(wire[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        // A corrupted header claiming a huge body must be refused
        // before any size arithmetic trusts it.
        return Err(MiError::Codec(format!(
            "frame header claims {len} bytes, beyond the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    if wire.len() - 4 != len {
        return Err(MiError::Codec(format!(
            "frame length mismatch: header {len}, body {}",
            wire.len() - 4
        )));
    }
    Ok(wire[4..].to_vec())
}

/// The send half of a connection: one frame out per call.
///
/// A [`Transport`] is a single `&mut self` object, which forces send and
/// receive onto one thread. The session host multiplexes many sessions
/// over one connection, so it needs the two directions in different
/// hands: a reader thread blocks on a [`FrameRx`] while worker threads
/// share the [`FrameTx`] behind a mutex.
pub trait FrameTx: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`MiError::Disconnected`] when the peer is gone.
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError>;
}

/// The receive half of a connection: one frame in per call, blocking.
pub trait FrameRx: Send {
    /// Receives one frame.
    ///
    /// # Errors
    ///
    /// [`MiError::Disconnected`] when the peer is gone;
    /// [`MiError::Codec`] for a frame that arrived but could not be
    /// framed (the connection stays usable).
    fn recv(&mut self) -> Result<Vec<u8>, MiError>;
}

impl<T: FrameTx + ?Sized> FrameTx for Box<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        (**self).send(frame)
    }
}

impl<T: FrameRx + ?Sized> FrameRx for Box<T> {
    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        (**self).recv()
    }
}

/// Send half of a split [`ChannelTransport`].
#[derive(Debug)]
pub struct ChannelFrameTx {
    tx: Sender<Vec<u8>>,
}

/// Receive half of a split [`ChannelTransport`].
#[derive(Debug)]
pub struct ChannelFrameRx {
    rx: Receiver<Vec<u8>>,
}

impl FrameTx for ChannelFrameTx {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        if frame.len() > MAX_FRAME_LEN {
            return Err(MiError::Codec(format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                frame.len()
            )));
        }
        let mut wire = Vec::with_capacity(frame.len() + 4);
        wire.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        wire.extend_from_slice(frame);
        self.tx.send(wire).map_err(|_| MiError::Disconnected)
    }
}

impl FrameRx for ChannelFrameRx {
    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        let wire = self.rx.recv().map_err(|_| MiError::Disconnected)?;
        decode_channel_wire(wire)
    }
}

/// Send half of a newline-delimited byte stream (e.g. a child's stdin).
#[derive(Debug)]
pub struct StreamFrameTx<W> {
    writer: W,
}

impl<W: std::io::Write + Send> StreamFrameTx<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        StreamFrameTx { writer }
    }
}

impl<W: std::io::Write + Send> FrameTx for StreamFrameTx<W> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        write_newline_frame(&mut self.writer, frame).map(|_| ())
    }
}

/// Receive half of a newline-delimited byte stream (e.g. a child's
/// stdout).
#[derive(Debug)]
pub struct StreamFrameRx<R> {
    reader: std::io::BufReader<R>,
}

impl<R: std::io::Read + Send> StreamFrameRx<R> {
    /// Wraps a reader.
    pub fn new(reader: R) -> Self {
        StreamFrameRx {
            reader: std::io::BufReader::new(reader),
        }
    }
}

impl<R: std::io::Read + Send> FrameRx for StreamFrameRx<R> {
    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        read_newline_frame(&mut self.reader).1
    }
}

/// Creates a connected pair of transports (like `pipe(2)` both ways).
pub fn duplex() -> (ChannelTransport, ChannelTransport) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    (
        ChannelTransport {
            tx: tx_ab,
            rx: rx_ba,
            counters: TransportCounters::default(),
        },
        ChannelTransport {
            tx: tx_ba,
            rx: rx_ab,
            counters: TransportCounters::default(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_cross_both_directions() {
        let (mut a, mut b) = duplex();
        a.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        b.send(b"world").unwrap();
        assert_eq!(a.recv().unwrap(), b"world");
    }

    #[test]
    fn byte_counters_track_traffic() {
        let (mut a, mut b) = duplex();
        a.send(&[0u8; 100]).unwrap();
        assert_eq!(a.counters().bytes_sent, 104);
        assert_eq!(a.counters().frames_sent, 1);
        b.recv().unwrap();
        assert_eq!(b.counters().bytes_received, 104);
        assert_eq!(b.counters().frames_received, 1);
        assert_eq!(b.counters().bytes_total(), 104);
    }

    #[test]
    fn disconnect_detected() {
        let (mut a, b) = duplex();
        drop(b);
        assert_eq!(a.send(b"x"), Err(MiError::Disconnected));
        assert_eq!(a.recv(), Err(MiError::Disconnected));
    }

    #[test]
    fn empty_frames_allowed() {
        let (mut a, mut b) = duplex();
        a.send(b"").unwrap();
        assert_eq!(b.recv().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn frame_length_mismatch_detected() {
        // Hand-build wire bytes whose length header lies about the body
        // size — recv must refuse them instead of mis-slicing.
        let (a, mut b) = duplex();
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_le_bytes()); // claims 10 bytes
        wire.extend_from_slice(b"ab"); // delivers 2
        a.tx.send(wire).unwrap();
        match b.recv() {
            Err(MiError::Codec(msg)) => {
                assert!(msg.contains("frame length mismatch"), "{msg}");
                assert!(msg.contains("10") && msg.contains('2'), "{msg}");
            }
            other => panic!("expected codec error, got {other:?}"),
        }
        // The bad frame still counts as received traffic…
        assert_eq!(b.counters().bytes_received, 6);
        // …and the endpoint keeps working for well-formed successors.
        drop(a);
        assert_eq!(b.recv(), Err(MiError::Disconnected));
    }

    #[test]
    fn truncated_header_detected() {
        let (a, mut b) = duplex();
        a.tx.send(vec![1, 2]).unwrap(); // shorter than the 4-byte header
        match b.recv() {
            Err(MiError::Codec(msg)) => assert!(msg.contains("short frame"), "{msg}"),
            other => panic!("expected codec error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_length_prefix_rejected_not_trusted() {
        // A flipped bit in the length prefix can claim gigabytes; recv
        // must refuse the header instead of trusting its arithmetic.
        let (a, mut b) = duplex();
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(b"tiny");
        a.tx.send(wire).unwrap();
        match b.recv() {
            Err(MiError::Codec(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected codec error, got {other:?}"),
        }
        // The endpoint survives for well-formed successors.
        let mut a = a;
        a.send(b"ok").unwrap();
        assert_eq!(b.recv().unwrap(), b"ok");
    }

    #[test]
    fn oversized_send_rejected() {
        let (mut a, _b) = duplex();
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(a.send(&huge), Err(MiError::Codec(_))));
        assert_eq!(a.counters().frames_sent, 0);
    }

    #[test]
    fn channel_recv_deadline_times_out_then_delivers() {
        let (mut a, mut b) = duplex();
        let start = std::time::Instant::now();
        assert_eq!(
            a.recv_deadline(Duration::from_millis(20)),
            Err(MiError::Timeout)
        );
        assert!(start.elapsed() < Duration::from_secs(5));
        // The timeout consumed nothing: a frame sent afterwards arrives.
        b.send(b"late").unwrap();
        assert_eq!(a.recv_deadline(Duration::from_secs(5)).unwrap(), b"late");
        drop(b);
        assert_eq!(
            a.recv_deadline(Duration::from_millis(20)),
            Err(MiError::Disconnected)
        );
    }

    #[test]
    fn split_halves_interoperate_with_a_whole_transport() {
        let (a, mut b) = duplex();
        let (mut tx, mut rx) = a.split();
        tx.send(b"from-half").unwrap();
        assert_eq!(b.recv().unwrap(), b"from-half");
        b.send(b"to-half").unwrap();
        assert_eq!(rx.recv().unwrap(), b"to-half");
        drop(b);
        assert_eq!(tx.send(b"x"), Err(MiError::Disconnected));
        assert_eq!(rx.recv(), Err(MiError::Disconnected));
    }

    #[test]
    fn stream_halves_speak_the_stream_wire_format() {
        let mut wire = Vec::new();
        StreamFrameTx::new(&mut wire).send(b"{\"a\":1}").unwrap();
        let mut t = StreamTransport::new(wire.as_slice(), std::io::sink());
        assert_eq!(t.recv().unwrap(), b"{\"a\":1}");
        let mut rx = StreamFrameRx::new(&b"{\"b\":2}\n"[..]);
        assert_eq!(rx.recv().unwrap(), b"{\"b\":2}");
        assert_eq!(rx.recv(), Err(MiError::Disconnected));
    }

    #[test]
    fn order_preserved() {
        let (mut a, mut b) = duplex();
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }
}

/// Transport over arbitrary byte streams using newline-delimited JSON
/// frames — the wire format for running an engine as a *separate OS
/// process* connected by real pipes, like the paper's `gdb
/// --interpreter=mi` subprocess. Frames must not contain raw newlines;
/// JSON guarantees that.
#[derive(Debug)]
pub struct StreamTransport<R, W> {
    reader: std::io::BufReader<R>,
    writer: W,
    counters: TransportCounters,
}

impl<R: std::io::Read, W: std::io::Write> StreamTransport<R, W> {
    /// Wraps a reader/writer pair (e.g. a child process's stdout/stdin).
    pub fn new(reader: R, writer: W) -> Self {
        StreamTransport {
            reader: std::io::BufReader::new(reader),
            writer,
            counters: TransportCounters::default(),
        }
    }
}

/// Writes one newline-delimited frame, returning the wire bytes written.
/// Shared by [`StreamTransport`] and [`PumpedTransport`].
fn write_newline_frame<W: std::io::Write>(writer: &mut W, frame: &[u8]) -> Result<u64, MiError> {
    if frame.contains(&b'\n') {
        return Err(MiError::Codec("frame contains a newline".into()));
    }
    if frame.len() > MAX_FRAME_LEN {
        return Err(MiError::Codec(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
            frame.len()
        )));
    }
    writer
        .write_all(frame)
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|_| MiError::Disconnected)?;
    Ok(frame.len() as u64 + 1)
}

/// Reads one newline-delimited frame, returning the wire bytes consumed
/// alongside the decoded payload (or error). Shared by
/// [`StreamTransport`] and [`PumpedTransport`]'s reader thread.
fn read_newline_frame<R: std::io::Read>(
    reader: &mut std::io::BufReader<R>,
) -> (u64, Result<Vec<u8>, MiError>) {
    use std::io::{BufRead as _, Read as _};
    // Raw bytes, not `read_line`: corrupted (non-UTF-8) traffic must
    // surface as a codec error on this frame, not kill the stream.
    // The `take` bounds how much one frame may buffer, so a peer that
    // stops sending newlines cannot balloon memory.
    let mut line = Vec::new();
    let mut limited = reader.take(MAX_FRAME_LEN as u64 + 1);
    match limited.read_until(b'\n', &mut line) {
        Ok(0) => (0, Err(MiError::Disconnected)),
        Ok(n) => {
            let result = if line.len() > MAX_FRAME_LEN {
                Err(MiError::Codec(format!(
                    "frame exceeds the {MAX_FRAME_LEN}-byte cap"
                )))
            } else if line.last() != Some(&b'\n') {
                // The stream ended (or a fault cut it) in the middle
                // of a frame. Treating the fragment as a complete
                // frame would hand garbage to the codec; report the
                // truncation itself.
                Err(MiError::Codec(
                    "mid-frame EOF: stream ended before the frame delimiter".into(),
                ))
            } else {
                while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                    line.pop();
                }
                Ok(line)
            };
            (n as u64, result)
        }
        Err(_) => (0, Err(MiError::Disconnected)),
    }
}

impl<R: std::io::Read, W: std::io::Write> Transport for StreamTransport<R, W> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        let wire = write_newline_frame(&mut self.writer, frame)?;
        self.counters.bytes_sent += wire;
        self.counters.frames_sent += 1;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        let (n, result) = read_newline_frame(&mut self.reader);
        if n > 0 {
            self.counters.bytes_received += n;
            self.counters.frames_received += 1;
        }
        result
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}

/// A [`StreamTransport`] whose *receive* side runs on a dedicated reader
/// thread: the thread blocks on the byte stream and forwards complete
/// frames through an in-process channel, so `recv_deadline` can give up
/// waiting without abandoning a half-read frame. This is the transport
/// the supervised process backend uses — a wedged or killed `mi-server`
/// child surfaces as [`MiError::Timeout`] / [`MiError::Disconnected`]
/// within the deadline instead of blocking the tracker forever.
///
/// The reader thread exits on EOF or stream error; it holds only the
/// reader half, so dropping the transport (closing the writer) lets a
/// well-behaved peer close the stream and the thread unwind.
#[derive(Debug)]
pub struct PumpedTransport<W> {
    frames: Receiver<(u64, Result<Vec<u8>, MiError>)>,
    writer: W,
    counters: TransportCounters,
}

impl<W: std::io::Write> PumpedTransport<W> {
    /// Spawns the reader thread over `reader` and wraps `writer`.
    pub fn spawn<R: std::io::Read + Send + 'static>(reader: R, writer: W) -> Self {
        let (tx, rx) = unbounded();
        std::thread::Builder::new()
            .name("mi-recv-pump".into())
            .spawn(move || {
                let mut reader = std::io::BufReader::new(reader);
                loop {
                    let (n, result) = read_newline_frame(&mut reader);
                    let stop = matches!(result, Err(MiError::Disconnected));
                    if tx.send((n, result)).is_err() || stop {
                        return;
                    }
                }
            })
            .expect("spawn mi receive pump");
        PumpedTransport {
            frames: rx,
            writer,
            counters: TransportCounters::default(),
        }
    }

    fn account(&mut self, item: (u64, Result<Vec<u8>, MiError>)) -> Result<Vec<u8>, MiError> {
        let (n, result) = item;
        if n > 0 {
            self.counters.bytes_received += n;
            self.counters.frames_received += 1;
        }
        result
    }
}

impl<W: std::io::Write + Send> Transport for PumpedTransport<W> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        let wire = write_newline_frame(&mut self.writer, frame)?;
        self.counters.bytes_sent += wire;
        self.counters.frames_sent += 1;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        let item = self.frames.recv().map_err(|_| MiError::Disconnected)?;
        self.account(item)
    }

    fn recv_deadline(&mut self, deadline: Duration) -> Result<Vec<u8>, MiError> {
        let item = self.frames.recv_timeout(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => MiError::Timeout,
            RecvTimeoutError::Disconnected => MiError::Disconnected,
        })?;
        self.account(item)
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;

    #[test]
    fn stream_frames_roundtrip_through_a_buffer() {
        let mut wire = Vec::new();
        {
            let mut t = StreamTransport::new(std::io::empty(), &mut wire);
            t.send(b"{\"a\":1}").unwrap();
            t.send(b"{\"b\":2}").unwrap();
        }
        let mut t = StreamTransport::new(wire.as_slice(), std::io::sink());
        assert_eq!(t.recv().unwrap(), b"{\"a\":1}");
        assert_eq!(t.recv().unwrap(), b"{\"b\":2}");
        assert_eq!(t.recv(), Err(MiError::Disconnected));
    }

    #[test]
    fn newlines_in_frames_rejected() {
        let mut t = StreamTransport::new(std::io::empty(), std::io::sink());
        assert!(matches!(t.send(b"a\nb"), Err(MiError::Codec(_))));
        // A rejected frame never hits the wire, so it is not counted.
        assert_eq!(t.counters(), TransportCounters::default());
    }

    #[test]
    fn crlf_line_endings_accepted() {
        // An engine subprocess on Windows (or behind a tty filter) ends
        // lines with \r\n; the payload must come back without either.
        let wire = b"{\"a\":1}\r\n{\"b\":2}\r\n";
        let mut t = StreamTransport::new(&wire[..], std::io::sink());
        assert_eq!(t.recv().unwrap(), b"{\"a\":1}");
        assert_eq!(t.recv().unwrap(), b"{\"b\":2}");
        // Counters measure the wire, CR and LF included.
        assert_eq!(t.counters().bytes_received, wire.len() as u64);
        assert_eq!(t.counters().frames_received, 2);
    }

    #[test]
    fn mid_frame_eof_is_a_codec_error_not_a_frame() {
        // The stream dies after half a frame: the fragment must not be
        // handed to the codec as if it were complete.
        let wire = b"{\"a\":1}\n{\"b\":";
        let mut t = StreamTransport::new(&wire[..], std::io::sink());
        assert_eq!(t.recv().unwrap(), b"{\"a\":1}");
        match t.recv() {
            Err(MiError::Codec(msg)) => assert!(msg.contains("mid-frame EOF"), "{msg}"),
            other => panic!("expected codec error, got {other:?}"),
        }
    }

    #[test]
    fn non_utf8_frames_pass_through_as_bytes() {
        // Corruption often produces invalid UTF-8. The transport is a
        // byte pipe: it must deliver the bytes (the codec above reports
        // the JSON error), not misreport a disconnect.
        let wire = b"\xff\xfe\x00garbage\nok\n";
        let mut t = StreamTransport::new(&wire[..], std::io::sink());
        assert_eq!(t.recv().unwrap(), b"\xff\xfe\x00garbage");
        assert_eq!(t.recv().unwrap(), b"ok");
    }

    #[test]
    fn stream_counters_include_framing() {
        let mut wire = Vec::new();
        {
            let mut t = StreamTransport::new(std::io::empty(), &mut wire);
            t.send(b"{\"a\":1}").unwrap();
            assert_eq!(t.counters().bytes_sent, 8); // 7 payload + '\n'
            assert_eq!(t.counters().frames_sent, 1);
        }
        let mut t = StreamTransport::new(wire.as_slice(), std::io::sink());
        t.recv().unwrap();
        assert_eq!(t.counters().bytes_received, 8);
        assert_eq!(t.counters().frames_received, 1);
    }
}

#[cfg(test)]
mod pumped_tests {
    use super::*;
    use std::io::Read;

    /// A byte stream fed through a channel: `read` blocks until bytes
    /// arrive and reports EOF when the sender is dropped — the test
    /// stand-in for a child process's stdout pipe.
    struct ChanReader {
        rx: Receiver<Vec<u8>>,
        buf: Vec<u8>,
    }

    impl ChanReader {
        fn pair() -> (Sender<Vec<u8>>, ChanReader) {
            let (tx, rx) = unbounded();
            (
                tx,
                ChanReader {
                    rx,
                    buf: Vec::new(),
                },
            )
        }
    }

    impl Read for ChanReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            while self.buf.is_empty() {
                match self.rx.recv() {
                    Ok(bytes) => self.buf = bytes,
                    Err(_) => return Ok(0),
                }
            }
            let n = out.len().min(self.buf.len());
            out[..n].copy_from_slice(&self.buf[..n]);
            self.buf.drain(..n);
            Ok(n)
        }
    }

    #[test]
    fn deadline_expiry_is_a_timeout_not_a_hang() {
        let (tx, reader) = ChanReader::pair();
        let mut t = PumpedTransport::spawn(reader, std::io::sink());
        let start = std::time::Instant::now();
        assert_eq!(
            t.recv_deadline(Duration::from_millis(50)),
            Err(MiError::Timeout)
        );
        assert!(start.elapsed() < Duration::from_secs(5));
        // A frame arriving after the timeout is delivered, not lost.
        tx.send(b"{\"late\":1}\n".to_vec()).unwrap();
        assert_eq!(
            t.recv_deadline(Duration::from_secs(5)).unwrap(),
            b"{\"late\":1}"
        );
        drop(tx);
        assert_eq!(t.recv(), Err(MiError::Disconnected));
    }

    #[test]
    fn pumped_frames_and_counters_match_stream_semantics() {
        let (tx, reader) = ChanReader::pair();
        let mut t = PumpedTransport::spawn(reader, Vec::new());
        tx.send(b"{\"a\":1}\r\n".to_vec()).unwrap();
        assert_eq!(t.recv().unwrap(), b"{\"a\":1}");
        assert_eq!(t.counters().frames_received, 1);
        assert_eq!(t.counters().bytes_received, 9); // CR and LF included
        t.send(b"{\"b\":2}").unwrap();
        assert_eq!(t.counters().bytes_sent, 8);
        assert_eq!(t.counters().frames_sent, 1);
    }

    #[test]
    fn mid_frame_eof_surfaces_then_disconnect() {
        let (tx, reader) = ChanReader::pair();
        let mut t = PumpedTransport::spawn(reader, std::io::sink());
        tx.send(b"{\"cut".to_vec()).unwrap();
        drop(tx);
        match t.recv() {
            Err(MiError::Codec(msg)) => assert!(msg.contains("mid-frame EOF"), "{msg}"),
            other => panic!("expected codec error, got {other:?}"),
        }
        assert_eq!(t.recv(), Err(MiError::Disconnected));
    }
}
