//! The RISC-V debugger engine: the MI command set over the simulator.
//!
//! Breakpoints are checked *before* executing the instruction at the
//! paused pc (like a hardware debugger), function tracking keeps a shadow
//! call stack keyed by `jal ra` / `jalr zero, 0(ra)` control transfers,
//! and the pause-before-return check decodes the instruction at the pc —
//! the direct analogue of the paper's scan-for-`retq` trick, applied to
//! `ret`.
//!
//! Watchable things: registers by name (`a0`, `sp`, ...) and raw memory
//! ranges written `*0xADDR:LEN`.

use crate::protocol::{Command, ResourceKind, Response};
use crate::server::{Engine, SliceOutcome};
use miniasm::asm::AsmProgram;
use miniasm::isa::{decode, parse_reg, reg_name, Inst};
use miniasm::sim::{Control, Cpu};
use state::{
    ExitStatus, Frame, PauseReason, Prim, ProgramState, Scope, SourceLocation, Value, Variable,
};

#[derive(Debug, Clone)]
enum BpKind {
    Line(u32),
    FuncEntry { addr: u32, maxdepth: Option<u32> },
}

#[derive(Debug, Clone)]
struct Breakpoint {
    id: u64,
    kind: BpKind,
}

#[derive(Debug, Clone)]
struct Track {
    addr: u32,
    name: String,
    maxdepth: Option<u32>,
}

#[derive(Debug, Clone)]
enum WatchKind {
    Reg(u8),
    Mem { addr: u32, len: u32 },
}

#[derive(Debug, Clone)]
struct Watch {
    id: u64,
    name: String,
    kind: WatchKind,
    last: Option<String>,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Resume,
    Step { line: u32 },
    Next { line: u32, depth: usize },
    Finish { depth: usize },
}

/// One shadow-stack entry.
#[derive(Debug, Clone)]
struct ShadowFrame {
    name: String,
    call_line: u32,
}

/// A control command's in-flight progress, stashed when its slice runs
/// out of fuel. Unlike MiniC, `first` and `finish_fired` live in the
/// run loop here, so a yield must carry them across to the resume.
#[derive(Debug, Clone, Copy)]
struct SliceState {
    mode: Mode,
    /// Pre-execution checks are skipped at the command's first paused
    /// pc; false once anything has executed.
    first: bool,
    /// Set when the `finish` target frame has returned.
    finish_fired: bool,
}

impl SliceState {
    fn fresh(mode: Mode) -> Self {
        SliceState {
            mode,
            first: true,
            finish_fired: false,
        }
    }
}

/// How one fuel-bounded run burst ended (internal to the engine; the
/// protocol never sees `OutOfFuel`).
enum RunOutcome {
    Paused(PauseReason),
    /// Fuel ran out mid-command; progress is stashed in `pending_slice`.
    OutOfFuel,
    /// A hard budget tripped: terminal, reported typed.
    Exhausted {
        which: ResourceKind,
        used: u64,
        limit: u64,
    },
}

/// The RISC-V engine (see the [module docs](self)).
#[derive(Debug)]
pub struct AsmEngine {
    cpu: Cpu,
    started: bool,
    bps: Vec<Breakpoint>,
    tracked: Vec<Track>,
    watches: Vec<Watch>,
    next_id: u64,
    shadow: Vec<ShadowFrame>,
    last_reason: PauseReason,
    output_cursor: usize,
    crashed: Option<String>,
    crash_reported: bool,
    registry: Option<obs::Registry>,
    /// In-engine profiler; lives here (not in the CPU) because function
    /// identity comes from the shadow call stack.
    prof: Option<Box<obs::Profiler>>,
    /// A control command that yielded on fuel, waiting for
    /// [`Engine::resume_sliced`].
    pending_slice: Option<SliceState>,
    /// Hard step budget ([`Command::SetLimits`] `max_steps`), measured
    /// against retired instructions. The heap budget does not apply:
    /// the simulator has no allocator.
    max_steps: Option<u64>,
    /// Set once a hard budget trips; terminal — later control commands
    /// repeat the same typed verdict instead of running the inferior.
    exhausted: Option<(ResourceKind, u64, u64)>,
}

/// Coarse instruction class for per-class retirement counts.
fn inst_class(inst: &Inst) -> &'static str {
    match inst {
        Inst::R { .. } | Inst::I { .. } | Inst::Lui { .. } | Inst::Auipc { .. } => "alu",
        Inst::Load { .. } => "load",
        Inst::Store { .. } => "store",
        Inst::Branch { .. } => "branch",
        Inst::Jal { .. } | Inst::Jalr { .. } => "jump",
        Inst::Ecall => "ecall",
    }
}

impl AsmEngine {
    /// Creates an engine with the program loaded, paused at the entry.
    pub fn new(program: &AsmProgram) -> Self {
        let cpu = Cpu::new(program);
        let entry_name = program.label_at(program.entry).unwrap_or("main").to_owned();
        AsmEngine {
            cpu,
            started: false,
            bps: Vec::new(),
            tracked: Vec::new(),
            watches: Vec::new(),
            next_id: 1,
            shadow: vec![ShadowFrame {
                name: entry_name,
                call_line: 0,
            }],
            last_reason: PauseReason::NotStarted,
            output_cursor: 0,
            crashed: None,
            crash_reported: false,
            registry: None,
            prof: None,
            pending_slice: None,
            max_steps: None,
            exhausted: None,
        }
    }

    /// Publishes `vm.miniasm.*` execution stats into `registry` after
    /// every control command: retired instructions and shadow-stack depth.
    pub fn set_registry(&mut self, registry: obs::Registry) {
        self.registry = Some(registry);
    }

    fn publish_stats(&self) {
        let Some(reg) = &self.registry else {
            return;
        };
        // Absolute readings: gauges, so merged snapshots never double-add.
        reg.set_gauge("vm.miniasm.instret", self.cpu.instret());
        reg.set_gauge("vm.miniasm.shadow_depth", self.shadow.len() as u64);
    }

    /// Read access to the CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn location(&self, line: u32) -> SourceLocation {
        SourceLocation::new(self.cpu.program().file.clone(), line)
    }

    /// Whether `pc` is the first instruction word of its source line
    /// (multi-word pseudo-instructions only trigger line breakpoints once).
    fn is_line_start(&self, pc: u32) -> bool {
        let p = self.cpu.program();
        match p.line_at(pc) {
            Some(line) => pc < 4 || p.line_at(pc - 4) != Some(line),
            None => false,
        }
    }

    fn eval_watch(&self, kind: &WatchKind) -> Option<String> {
        match kind {
            WatchKind::Reg(r) => Some((self.cpu.reg(*r) as i32).to_string()),
            WatchKind::Mem { addr, len } => self
                .cpu
                .read_mem(*addr, *len)
                .map(|bytes| format!("{bytes:02x?}")),
        }
    }

    fn check_watches(&mut self) -> Option<PauseReason> {
        let evals: Vec<Option<String>> = self
            .watches
            .iter()
            .map(|w| self.eval_watch(&w.kind))
            .collect();
        let mut hit = None;
        for (w, current) in self.watches.iter_mut().zip(evals) {
            let changed = current.is_some() && w.last != current;
            if changed && hit.is_none() {
                hit = Some(PauseReason::Watchpoint {
                    id: w.id,
                    variable: w.name.clone(),
                    old: w.last.clone(),
                    new: current.clone().expect("changed implies Some"),
                });
            }
            if current.is_some() {
                w.last = current;
            }
        }
        hit
    }

    /// The decoded instruction about to execute, if decodable.
    fn pending_inst(&self) -> Option<Inst> {
        self.cpu.read_word(self.cpu.pc()).and_then(decode)
    }

    /// Runs the CPU from `slice` until a pause condition is met, the
    /// slice's `fuel` (in retired instructions) runs out, or a hard
    /// budget trips. The fuel check sits before the pre-execution
    /// checks, so each paused pc is inspected exactly once whether or
    /// not a yield lands on it — slicing stays invisible.
    fn run(&mut self, slice: SliceState, fuel: Option<u64>) -> RunOutcome {
        if let Some(code) = self.cpu.exit_code() {
            return RunOutcome::Paused(PauseReason::Exited(ExitStatus::Exited(code)));
        }
        if self.crashed.is_some() {
            return RunOutcome::Paused(PauseReason::Exited(ExitStatus::Crashed));
        }
        let SliceState {
            mode,
            mut first,
            mut finish_fired,
        } = slice;
        let mut spent = 0u64;
        loop {
            if let Some(f) = fuel {
                if spent >= f {
                    self.pending_slice = Some(SliceState {
                        mode,
                        first,
                        finish_fired,
                    });
                    return RunOutcome::OutOfFuel;
                }
            }
            // ---- pre-execution checks (we are paused *before* pc) ------
            if !first {
                let pc = self.cpu.pc();
                let line = self.cpu.current_line();
                if let Some(bp) = self.bps.iter().find(|bp| match bp.kind {
                    BpKind::Line(l) => l == line && self.is_line_start(pc),
                    BpKind::FuncEntry { addr, maxdepth } => {
                        addr == pc && maxdepth.is_none_or(|m| self.shadow.len() as u32 <= m + 1)
                    }
                }) {
                    return RunOutcome::Paused(PauseReason::Breakpoint {
                        id: bp.id,
                        location: self.location(line),
                    });
                }
                // Tracked function entry: paused at its first instruction.
                let depth = (self.shadow.len() - 1) as u32;
                if let Some(t) = self
                    .tracked
                    .iter()
                    .find(|t| t.addr == pc && t.maxdepth.is_none_or(|m| depth <= m))
                {
                    // Only when we *just* entered (previous instruction was
                    // the call) — the shadow top carries the name.
                    if self.shadow.last().map(|f| f.name.as_str()) == Some(t.name.as_str()) {
                        return RunOutcome::Paused(PauseReason::FunctionCall {
                            function: t.name.clone(),
                            depth,
                        });
                    }
                }
                // Tracked function about to return (paper's retq scan).
                if matches!(
                    self.pending_inst(),
                    Some(Inst::Jalr {
                        rd: 0,
                        rs1: 1,
                        imm: 0
                    })
                ) {
                    if let Some(top) = self.shadow.last() {
                        let depth = (self.shadow.len() - 1) as u32;
                        if self
                            .tracked
                            .iter()
                            .any(|t| t.name == top.name && t.maxdepth.is_none_or(|m| depth <= m))
                        {
                            return RunOutcome::Paused(PauseReason::FunctionReturn {
                                function: top.name.clone(),
                                depth,
                                return_value: Some((self.cpu.reg(10) as i32).to_string()),
                            });
                        }
                    }
                }
                if finish_fired {
                    return RunOutcome::Paused(PauseReason::Step);
                }
                match mode {
                    Mode::Step { line: from } => {
                        if line != from && line != 0 {
                            return RunOutcome::Paused(PauseReason::Step);
                        }
                    }
                    Mode::Next { line: from, depth } => {
                        if self.shadow.len() <= depth && line != from && line != 0 {
                            return RunOutcome::Paused(PauseReason::Step);
                        }
                    }
                    Mode::Resume | Mode::Finish { .. } => {}
                }
            }
            first = false;

            // ---- execute one instruction -------------------------------
            let info = match self.cpu.step() {
                Ok(i) => i,
                Err(e) => {
                    self.crashed = Some(e.to_string());
                    return RunOutcome::Paused(PauseReason::Exited(ExitStatus::Crashed));
                }
            };
            spent += 1;
            if let Some(limit) = self.max_steps {
                let used = self.cpu.instret();
                if used > limit {
                    return RunOutcome::Exhausted {
                        which: ResourceKind::Steps,
                        used,
                        limit,
                    };
                }
            }
            // Retired-instruction hooks, before the control transfer is
            // applied: a `jal` is charged to its caller.
            if let Some(p) = self.prof.as_deref_mut() {
                p.tick();
                p.line(info.line);
                p.inst_class(inst_class(&info.inst));
            }
            if let Some(code) = info.exit {
                return RunOutcome::Paused(PauseReason::Exited(ExitStatus::Exited(code)));
            }
            match info.control {
                Some(Control::Call { target }) => {
                    let name = self
                        .cpu
                        .program()
                        .label_at(target)
                        .unwrap_or("<anonymous>")
                        .to_owned();
                    if let Some(p) = self.prof.as_deref_mut() {
                        let id = p.intern(&name);
                        p.enter(id);
                    }
                    self.shadow.push(ShadowFrame {
                        name,
                        call_line: info.line,
                    });
                }
                Some(Control::Return) => {
                    if self.shadow.len() > 1 {
                        self.shadow.pop();
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.exit();
                        }
                    }
                    if let Mode::Finish { depth } = mode {
                        if self.shadow.len() < depth {
                            finish_fired = true;
                        }
                    }
                }
                None => {}
            }
            if !self.watches.is_empty() {
                if let Some(reason) = self.check_watches() {
                    return RunOutcome::Paused(reason);
                }
            }
        }
    }

    /// Starts a *fresh* control command, optionally fuel-bounded.
    fn control_sliced(&mut self, mode: Mode, fuel: Option<u64>) -> SliceOutcome {
        if !self.started {
            return SliceOutcome::Done(Response::Error {
                message: "inferior not started (call start first)".into(),
            });
        }
        self.burst(SliceState::fresh(mode), fuel)
    }

    fn control(&mut self, mode: Mode) -> Response {
        match self.control_sliced(mode, None) {
            SliceOutcome::Done(resp) => resp,
            SliceOutcome::Yielded => unreachable!("unfueled run cannot yield"),
        }
    }

    /// One fuel-bounded run burst: shared by fresh commands and slice
    /// resumes. The per-burst span is telemetry only, so slicing stays
    /// invisible on the protocol.
    fn burst(&mut self, slice: SliceState, fuel: Option<u64>) -> SliceOutcome {
        if let Some((which, used, limit)) = self.exhausted {
            // Terminal: every later control command repeats the verdict.
            return SliceOutcome::Done(Response::ResourceExhausted { which, used, limit });
        }
        self.pending_slice = None;
        // Times the CPU burst this control command caused; joins the
        // tracker's trace when the command frame carried a context.
        let span = self.registry.as_ref().map(|reg| {
            let mut span = reg.span("vm.miniasm.exec");
            span.category("vm");
            span
        });
        let outcome = self.run(slice, fuel);
        if let Some(mut span) = span {
            let tag = match &outcome {
                RunOutcome::Paused(reason) => reason.to_string(),
                RunOutcome::OutOfFuel => "slice".to_owned(),
                RunOutcome::Exhausted { which, .. } => format!("exhausted:{which}"),
            };
            span.tag("pause_reason", tag);
            span.finish();
        }
        self.publish_stats();
        match outcome {
            RunOutcome::Paused(reason) => {
                self.last_reason = reason.clone();
                SliceOutcome::Done(Response::Paused(reason))
            }
            RunOutcome::OutOfFuel => SliceOutcome::Yielded,
            RunOutcome::Exhausted { which, used, limit } => {
                self.exhausted = Some((which, used, limit));
                SliceOutcome::Done(Response::ResourceExhausted { which, used, limit })
            }
        }
    }

    /// Maps a control command to its run mode, with the same pre-flight
    /// checks for the plain and sliced paths. `None` for non-control
    /// commands (including `Start`, which executes nothing here: the
    /// CPU is already paused before the entry instruction).
    fn prepare(&mut self, command: &Command) -> Option<Result<Mode, Response>> {
        match command {
            Command::Resume => Some(Ok(Mode::Resume)),
            Command::Step => {
                let line = self.cpu.current_line();
                Some(Ok(Mode::Step { line }))
            }
            Command::Next => {
                let line = self.cpu.current_line();
                let depth = self.shadow.len();
                Some(Ok(Mode::Next { line, depth }))
            }
            Command::Finish => {
                let depth = self.shadow.len();
                Some(if depth <= 1 {
                    Err(Response::Error {
                        message: "cannot finish the outermost frame".into(),
                    })
                } else {
                    Ok(Mode::Finish { depth })
                })
            }
            _ => None,
        }
    }

    /// Builds the frame chain from the shadow stack; the innermost frame
    /// carries the register file as its variables.
    fn build_state(&self) -> ProgramState {
        let mut result: Option<Frame> = None;
        let n = self.shadow.len();
        for (depth, sf) in self.shadow.iter().enumerate() {
            let line = if depth + 1 == n {
                self.cpu.current_line()
            } else {
                // Parent frames show their call site.
                self.shadow
                    .get(depth + 1)
                    .map(|child| child.call_line)
                    .unwrap_or(0)
            };
            let mut frame = Frame::new(sf.name.clone(), depth as u32, self.location(line));
            if depth + 1 == n {
                for var in self.cpu.register_variables() {
                    frame.insert_variable(var);
                }
            }
            if let Some(parent) = result.take() {
                frame.set_parent(parent);
            }
            result = Some(frame);
        }
        ProgramState::new(
            result.expect("shadow stack never empty"),
            self.data_globals(),
            self.last_reason.clone(),
        )
    }

    /// Data-segment labels as global variables (word values).
    fn data_globals(&self) -> Vec<Variable> {
        let p = self.cpu.program();
        p.labels
            .iter()
            .filter(|(_, a)| *a >= p.data_base)
            .map(|(name, addr)| {
                let word = self.cpu.read_word(*addr).unwrap_or(0);
                Variable::new(
                    name.clone(),
                    Scope::Global,
                    Value::primitive(Prim::Int(word as i32 as i64), "word")
                        .with_location(state::Location::Global)
                        .with_address(*addr as u64),
                )
            })
            .collect()
    }
}

impl Engine for AsmEngine {
    fn handle(&mut self, command: Command) -> Response {
        match self.prepare(&command) {
            Some(Err(resp)) => return resp,
            Some(Ok(mode)) => return self.control(mode),
            None => {}
        }
        match command {
            Command::Start => {
                if self.started {
                    return Response::Error {
                        message: "inferior already started".into(),
                    };
                }
                self.started = true;
                self.last_reason = PauseReason::Started;
                // Paused before the entry instruction; nothing executed.
                Response::Paused(PauseReason::Started)
            }
            Command::Resume | Command::Step | Command::Next | Command::Finish => {
                unreachable!("control commands are routed through prepare")
            }
            Command::SetBreakLine { line } => {
                let lines = self.cpu.program().breakable_lines();
                let Some(&actual) = lines.iter().find(|&&l| l >= line) else {
                    return Response::Error {
                        message: format!("no code at or after line {line}"),
                    };
                };
                let id = self.alloc_id();
                self.bps.push(Breakpoint {
                    id,
                    kind: BpKind::Line(actual),
                });
                Response::Created { id }
            }
            Command::SetBreakFunc { function, maxdepth } => {
                let Some(addr) = self.cpu.program().label(&function) else {
                    return Response::Error {
                        message: format!("unknown label `{function}`"),
                    };
                };
                let id = self.alloc_id();
                self.bps.push(Breakpoint {
                    id,
                    kind: BpKind::FuncEntry { addr, maxdepth },
                });
                Response::Created { id }
            }
            Command::TrackFunction { function, maxdepth } => {
                let Some(addr) = self.cpu.program().label(&function) else {
                    return Response::Error {
                        message: format!("unknown label `{function}`"),
                    };
                };
                self.tracked.push(Track {
                    addr,
                    name: function,
                    maxdepth,
                });
                let id = self.alloc_id();
                Response::Created { id }
            }
            Command::Watch { variable } => {
                let kind = if let Some(r) = parse_reg(&variable) {
                    WatchKind::Reg(r)
                } else if let Some(spec) = variable.strip_prefix('*') {
                    let (addr_s, len_s) = spec.split_once(':').unwrap_or((spec, "4"));
                    let addr = parse_u32(addr_s);
                    let len = parse_u32(len_s);
                    match (addr, len) {
                        (Some(addr), Some(len)) if len > 0 && len <= 256 => {
                            WatchKind::Mem { addr, len }
                        }
                        _ => {
                            return Response::Error {
                                message: format!("bad memory watch `{variable}`"),
                            }
                        }
                    }
                } else if let Some(addr) = self.cpu.program().label(&variable) {
                    WatchKind::Mem { addr, len: 4 }
                } else {
                    return Response::Error {
                        message: format!(
                            "cannot watch `{variable}` (register, label or *0xADDR:LEN)"
                        ),
                    };
                };
                let last = self.eval_watch(&kind);
                let id = self.alloc_id();
                self.watches.push(Watch {
                    id,
                    name: variable,
                    kind,
                    last,
                });
                Response::Created { id }
            }
            Command::Delete { id } => {
                let before = self.bps.len() + self.watches.len();
                self.bps.retain(|b| b.id != id);
                self.watches.retain(|w| w.id != id);
                if self.bps.len() + self.watches.len() == before {
                    Response::Error {
                        message: format!("no breakpoint or watchpoint {id}"),
                    }
                } else {
                    Response::Ok
                }
            }
            Command::GetState => {
                if !self.started {
                    return Response::Error {
                        message: "inferior not started".into(),
                    };
                }
                Response::State(Box::new(self.build_state()))
            }
            Command::GetGlobals => Response::Globals(self.data_globals()),
            Command::GetVariable { name } => {
                // Registers by name, then data labels as words, then text
                // labels as FUNCTION values.
                let var = if let Some(r) = parse_reg(&name) {
                    Some(Variable::new(
                        reg_name(r),
                        Scope::Register,
                        Value::primitive(Prim::Int(self.cpu.reg(r) as i32 as i64), "u32")
                            .with_location(state::Location::Register),
                    ))
                } else if let Some(addr) = self.cpu.program().label(&name) {
                    if addr >= self.cpu.program().data_base {
                        let word = self.cpu.read_word(addr).unwrap_or(0);
                        Some(Variable::new(
                            name,
                            Scope::Global,
                            Value::primitive(Prim::Int(word as i32 as i64), "word")
                                .with_location(state::Location::Global)
                                .with_address(addr as u64),
                        ))
                    } else {
                        Some(Variable::new(
                            name.clone(),
                            Scope::Global,
                            Value::function(name, "label")
                                .with_location(state::Location::Global)
                                .with_address(addr as u64),
                        ))
                    }
                } else {
                    None
                };
                Response::Variable(var)
            }
            Command::GetRegisters => Response::Registers(self.cpu.register_variables()),
            Command::ReadMemory { addr, len } => {
                match self.cpu.read_mem(addr as u32, len.min(64 * 1024) as u32) {
                    Some(bytes) => Response::Memory(bytes.to_vec()),
                    None => Response::Error {
                        message: format!("memory range {addr:#x}+{len} out of bounds"),
                    },
                }
            }
            Command::GetOutput => {
                let all = self.cpu.output();
                let new = all[self.output_cursor.min(all.len())..].to_owned();
                self.output_cursor = all.len();
                let with_crash = match &self.crashed {
                    Some(msg) if !self.crash_reported => {
                        self.crash_reported = true;
                        format!("{new}{msg}\n")
                    }
                    _ => new,
                };
                Response::Output(with_crash)
            }
            Command::GetExitCode => Response::ExitCode(if self.crashed.is_some() {
                Some(-1)
            } else {
                self.cpu.exit_code()
            }),
            Command::GetSource => Response::Source {
                file: self.cpu.program().file.clone(),
                text: self.cpu.program().source.clone(),
            },
            Command::GetBreakableLines => Response::Lines(self.cpu.program().breakable_lines()),
            // The dataflow analysis and the sanitizer are defined over
            // MiniC bytecode; assembly programs have neither.
            Command::Analyze => Response::Error {
                message: "static analysis is not supported for assembly programs".into(),
            },
            Command::Verify => Response::Error {
                message: "bytecode verification is not supported for assembly programs".into(),
            },
            Command::SetSanitizer { .. } => Response::Error {
                message: "sanitizer mode is not supported for assembly programs".into(),
            },
            Command::SetProfile { mode, period } => {
                if self.started && mode != obs::ProfileMode::Off {
                    return Response::Error {
                        message: "profiling must be armed before start".into(),
                    };
                }
                if mode == obs::ProfileMode::Off {
                    self.prof = None;
                } else {
                    let mut p = Box::new(obs::Profiler::new(mode, period));
                    // Frames alive at arm time (the entry label) enter the
                    // profile now, like the MiniC VM's seeding.
                    for sf in &self.shadow {
                        let id = p.intern(&sf.name);
                        p.enter(id);
                    }
                    self.prof = Some(p);
                }
                Response::Ok
            }
            Command::ProfileReport { .. } => Response::Profile(Box::new(
                self.prof
                    .as_deref()
                    .map(obs::Profiler::report)
                    .unwrap_or_default(),
            )),
            // The serve loop normally answers Ping and Telemetry itself;
            // answering here too keeps `handle` total for engines driven
            // directly.
            Command::Ping => Response::Pong {
                now_us: self.registry.as_ref().map_or(0, obs::Registry::now_us),
            },
            Command::Telemetry { since } => {
                // No export ring at this layer: metrics only.
                let frame = match &self.registry {
                    Some(reg) => obs::telemetry::collect_frame(reg, None, since),
                    None => obs::TelemetryFrame::default(),
                };
                Response::Telemetry(Box::new(frame))
            }
            Command::Terminate => Response::Ok,
            Command::SetLimits { max_steps, .. } => {
                // Steps are enforced here against retired instructions;
                // the heap budget has nothing to bind to (no allocator)
                // and wall time / queue depth are the host's job.
                self.max_steps = max_steps;
                Response::Ok
            }
            // Session management is the host's job, not an engine's.
            Command::OpenSession { .. }
            | Command::CloseSession { .. }
            | Command::OpenReplay { .. } => Response::Error {
                message: "session commands are handled by the host, not an engine".into(),
            },
            // The trace vocabulary is served by the RecordingEngine
            // wrapper every spawned session carries, never by a bare
            // engine.
            Command::Record { .. }
            | Command::Seek { .. }
            | Command::QueryHistory { .. }
            | Command::TraceStats
            | Command::PublishTrace { .. } => Response::Error {
                message: "trace commands are handled by the recording wrapper".into(),
            },
        }
    }

    fn handle_sliced(&mut self, command: Command, fuel: u64) -> SliceOutcome {
        match self.prepare(&command) {
            Some(Err(resp)) => SliceOutcome::Done(resp),
            Some(Ok(mode)) => self.control_sliced(mode, Some(fuel)),
            None => SliceOutcome::Done(self.handle(command)),
        }
    }

    fn resume_sliced(&mut self, fuel: u64) -> SliceOutcome {
        match self.pending_slice {
            // Resume, not restart: the stashed `first`/`finish_fired`
            // are the command's progress and survive the yield.
            Some(slice) => self.burst(slice, Some(fuel)),
            None => SliceOutcome::Done(Response::Error {
                message: "no sliced command pending".into(),
            }),
        }
    }
}

fn parse_u32(s: &str) -> Option<u32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniasm::asm::assemble;

    fn engine(src: &str) -> AsmEngine {
        AsmEngine::new(&assemble("t.s", src).unwrap())
    }

    fn paused(r: Response) -> PauseReason {
        match r {
            Response::Paused(p) => p,
            other => panic!("expected Paused, got {other:?}"),
        }
    }

    const SUM: &str = "main:\n    li t0, 0\n    li t1, 1\nloop:\n    li t2, 5\n    bgt t1, t2, done\n    add t0, t0, t1\n    addi t1, t1, 1\n    j loop\ndone:\n    mv a0, t0\n    li a7, 93\n    ecall";

    #[test]
    fn resume_runs_to_exit() {
        let mut e = engine(SUM);
        assert_eq!(paused(e.handle(Command::Start)), PauseReason::Started);
        let r = paused(e.handle(Command::Resume));
        assert_eq!(r, PauseReason::Exited(ExitStatus::Exited(15)));
        assert_eq!(e.handle(Command::GetExitCode), Response::ExitCode(Some(15)));
    }

    #[test]
    fn stepping_by_source_line() {
        let mut e = engine(SUM);
        e.handle(Command::Start);
        paused(e.handle(Command::Step)); // past li t0
        paused(e.handle(Command::Step));
        match e.handle(Command::GetRegisters) {
            Response::Registers(regs) => {
                let t0 = regs.iter().find(|r| r.name() == "t0").unwrap();
                assert_eq!(state::render_value(t0.value()), "0");
                let t1 = regs.iter().find(|r| r.name() == "t1").unwrap();
                assert_eq!(state::render_value(t1.value()), "1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn line_breakpoint_hits_once_per_pass() {
        let mut e = engine(SUM);
        e.handle(Command::SetBreakLine { line: 7 }); // the add
        e.handle(Command::Start);
        let mut hits = 0;
        loop {
            match paused(e.handle(Command::Resume)) {
                PauseReason::Breakpoint { location, .. } => {
                    assert_eq!(location.line(), 7);
                    hits += 1;
                }
                PauseReason::Exited(_) => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(hits, 5);
    }

    const CALLPROG: &str = "main:\n    li a0, 3\n    call double\n    li a7, 93\n    ecall\ndouble:\n    add a0, a0, a0\n    ret";

    #[test]
    fn function_breakpoint_and_tracking() {
        let mut e = engine(CALLPROG);
        e.handle(Command::TrackFunction {
            function: "double".into(),
            maxdepth: None,
        });
        e.handle(Command::Start);
        let r = paused(e.handle(Command::Resume));
        match r {
            PauseReason::FunctionCall { function, depth } => {
                assert_eq!(function, "double");
                assert_eq!(depth, 1);
            }
            other => panic!("unexpected {other}"),
        }
        // a0 holds the argument at entry.
        match e.handle(Command::GetVariable { name: "a0".into() }) {
            Response::Variable(Some(v)) => assert_eq!(state::render_value(v.value()), "3"),
            other => panic!("unexpected {other:?}"),
        }
        let r = paused(e.handle(Command::Resume));
        match r {
            PauseReason::FunctionReturn {
                function,
                return_value,
                ..
            } => {
                assert_eq!(function, "double");
                assert_eq!(return_value.as_deref(), Some("6"));
            }
            other => panic!("unexpected {other}"),
        }
        let r = paused(e.handle(Command::Resume));
        assert_eq!(r, PauseReason::Exited(ExitStatus::Exited(6)));
    }

    #[test]
    fn shadow_stack_frames_in_state() {
        let mut e = engine(CALLPROG);
        e.handle(Command::SetBreakFunc {
            function: "double".into(),
            maxdepth: None,
        });
        e.handle(Command::Start);
        paused(e.handle(Command::Resume));
        match e.handle(Command::GetState) {
            Response::State(st) => {
                let names: Vec<_> = st.frame.chain().map(|f| f.name().to_owned()).collect();
                assert_eq!(names, ["double", "main"]);
                assert!(st.frame.variable("a0").is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_watchpoint() {
        let mut e = engine(SUM);
        e.handle(Command::Start);
        e.handle(Command::Watch {
            variable: "t1".into(),
        });
        let mut changes = Vec::new();
        for _ in 0..3 {
            match paused(e.handle(Command::Resume)) {
                PauseReason::Watchpoint { variable, new, .. } => {
                    assert_eq!(variable, "t1");
                    changes.push(new);
                }
                PauseReason::Exited(_) => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(changes, ["1", "2", "3"]);
    }

    #[test]
    fn memory_watch_on_data_label() {
        let src = ".data\ncounter: .word 0\n.text\nmain:\n    la t0, counter\n    li t1, 7\n    sw t1, 0(t0)\n    li a7, 10\n    ecall";
        let mut e = engine(src);
        e.handle(Command::Start);
        e.handle(Command::Watch {
            variable: "counter".into(),
        });
        let r = paused(e.handle(Command::Resume));
        assert!(matches!(r, PauseReason::Watchpoint { .. }));
    }

    #[test]
    fn next_steps_over_call() {
        let mut e = engine(CALLPROG);
        e.handle(Command::Start);
        paused(e.handle(Command::Step)); // li a0 done, at call line
        let r = paused(e.handle(Command::Next)); // steps over double
        assert_eq!(r, PauseReason::Step);
        match e.handle(Command::GetState) {
            Response::State(st) => {
                assert_eq!(st.frame.name(), "main");
                assert_eq!(st.frame.location().line(), 4); // li a7, 93
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_memory_and_globals() {
        let src = ".data\nvalue: .word 1234\n.text\nmain:\n    li a7, 10\n    ecall";
        let mut e = engine(src);
        e.handle(Command::Start);
        match e.handle(Command::GetGlobals) {
            Response::Globals(gs) => {
                let v = gs.iter().find(|g| g.name() == "value").unwrap();
                assert_eq!(state::render_value(v.value()), "1234");
            }
            other => panic!("unexpected {other:?}"),
        }
        let addr = e.cpu().program().label("value").unwrap();
        match e.handle(Command::ReadMemory {
            addr: addr as u64,
            len: 4,
        }) {
            Response::Memory(bytes) => assert_eq!(bytes, 1234i32.to_le_bytes()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn output_collected() {
        let src = ".data\nmsg: .asciz \"ok\"\n.text\nmain:\n    la a0, msg\n    li a7, 4\n    ecall\n    li a7, 10\n    ecall";
        let mut e = engine(src);
        e.handle(Command::Start);
        paused(e.handle(Command::Resume));
        assert_eq!(e.handle(Command::GetOutput), Response::Output("ok".into()));
    }

    #[test]
    fn crash_reported() {
        let src = "main:\n    li t0, 0x20000\n    lw t1, 0(t0)";
        let mut e = engine(src);
        e.handle(Command::Start);
        let r = paused(e.handle(Command::Resume));
        assert_eq!(r, PauseReason::Exited(ExitStatus::Crashed));
        match e.handle(Command::GetOutput) {
            Response::Output(o) => assert!(o.contains("out of range")),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod label_lookup_tests {
    use super::*;
    use miniasm::asm::assemble;

    #[test]
    fn labels_resolve_as_variables() {
        let src = ".data\ncount: .word 7\n.text\nmain:\n    li a7, 10\n    ecall\nhelper:\n    ret";
        let mut e = AsmEngine::new(&assemble("t.s", src).unwrap());
        e.handle(Command::Start);
        match e.handle(Command::GetVariable {
            name: "count".into(),
        }) {
            Response::Variable(Some(v)) => {
                assert_eq!(state::render_value(v.value()), "7");
            }
            other => panic!("unexpected {other:?}"),
        }
        match e.handle(Command::GetVariable {
            name: "helper".into(),
        }) {
            Response::Variable(Some(v)) => {
                assert_eq!(v.value().abstract_type(), state::AbstractType::Function);
            }
            other => panic!("unexpected {other:?}"),
        }
        match e.handle(Command::GetVariable {
            name: "nonesuch".into(),
        }) {
            Response::Variable(None) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
