//! The MiniC debugger engine: implements the MI command set over the
//! MiniC VM's event stream.
//!
//! This is where GDB's control features are reproduced:
//!
//! * **line breakpoints** pause at `Line` events;
//! * **function breakpoints with `maxdepth`** pause at `Call` events (the
//!   paper implements `maxdepth` as a GDB extension that silently resumes
//!   when the frame is too deep — the same filter lives in
//!   [`MinicEngine`]);
//! * **function tracking** pauses at `Call` events *and* at `Return`
//!   events, which the VM emits while the returning frame is still intact
//!   (reproducing the paper's breakpoint-on-`retq` trick);
//! * **watchpoints** re-evaluate watched variables at every store event —
//!   store events are only enabled while watchpoints exist, so the
//!   paper's "watchpoints slow execution down a lot" behaviour is
//!   measurable;
//! * **step / next / finish** with GDB's line-change semantics.

use crate::protocol::{Command, ResourceKind, Response};
use crate::server::{Engine, SliceOutcome};
use minic::inspect::{self, InspectOptions};
use minic::vm::{Event, Vm};
use minic::Program;
use state::{ExitStatus, PauseReason, Prim, ProgramState, SourceLocation, Value, Variable};

#[derive(Debug, Clone)]
enum BpKind {
    Line(u32),
    FuncEntry {
        function: String,
        maxdepth: Option<u32>,
    },
}

#[derive(Debug, Clone)]
struct Breakpoint {
    id: u64,
    kind: BpKind,
}

#[derive(Debug, Clone)]
struct Track {
    function: String,
    maxdepth: Option<u32>,
}

#[derive(Debug, Clone)]
struct Watch {
    id: u64,
    name: String,
    last: Option<String>,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Start,
    Resume,
    Step { line: u32, depth: usize },
    Next { line: u32, depth: usize },
    Finish { depth: usize },
}

/// How one fuel-bounded run burst ended (internal to the engine; the
/// protocol never sees `OutOfFuel`).
enum RunOutcome {
    /// A real pause condition — what the protocol reports.
    Paused(PauseReason),
    /// The slice's fuel ran out mid-command; the mode is stashed in
    /// `pending_slice` and `resume_sliced` continues it.
    OutOfFuel,
    /// A hard budget tripped: terminal, reported typed.
    Exhausted {
        which: ResourceKind,
        used: u64,
        limit: u64,
    },
}

/// The MiniC engine (see the [module docs](self)).
#[derive(Debug)]
pub struct MinicEngine {
    vm: Vm,
    started: bool,
    bps: Vec<Breakpoint>,
    tracked: Vec<Track>,
    watches: Vec<Watch>,
    next_id: u64,
    last_reason: PauseReason,
    output_cursor: usize,
    crashed: Option<String>,
    crash_reported: bool,
    /// Set while a `finish` waits for the target frame's return event.
    finish_fired: bool,
    registry: Option<obs::Registry>,
    /// VM events seen by the control loop (published as `vm.minic.events`).
    events_seen: u64,
    /// A control command that yielded on fuel, waiting for
    /// [`Engine::resume_sliced`]. `finish_fired` is deliberately *not*
    /// reset on resume — it is part of the command's progress.
    pending_slice: Option<Mode>,
    /// Hard step budget ([`Command::SetLimits`] `max_steps`), measured
    /// against the VM's cumulative op count.
    max_steps: Option<u64>,
    /// Hard live-heap budget (`max_heap_bytes`), measured against the
    /// allocator's live-byte gauge after every event.
    max_heap_bytes: Option<u64>,
    /// Set once a hard budget trips; terminal — later control commands
    /// repeat the same typed verdict instead of running the inferior.
    exhausted: Option<(ResourceKind, u64, u64)>,
    /// When the VM runs an *optimized* program, the original unoptimized
    /// one, kept for `Analyze`: static diagnostics are part of the
    /// observable surface and must not shift when dead code is deleted.
    /// `None` when the VM's program is the compiler's output unchanged.
    analysis_program: Option<Box<Program>>,
}

impl MinicEngine {
    /// Creates an engine with the program loaded but not started.
    pub fn new(program: &Program) -> Self {
        analysis::verify::debug_verify(program);
        MinicEngine {
            vm: Vm::new(program),
            started: false,
            bps: Vec::new(),
            tracked: Vec::new(),
            watches: Vec::new(),
            next_id: 1,
            last_reason: PauseReason::NotStarted,
            output_cursor: 0,
            crashed: None,
            crash_reported: false,
            finish_fired: false,
            registry: None,
            events_seen: 0,
            pending_slice: None,
            max_steps: None,
            max_heap_bytes: None,
            exhausted: None,
            analysis_program: None,
        }
    }

    /// Creates an engine running `program` optimized at `opt` (0 = run it
    /// unchanged). The optimizer verifies before and after every pass;
    /// any failure surfaces here instead of producing a VM panic later.
    /// `Analyze` keeps answering from the unoptimized program, so the
    /// static-diagnostic surface is identical at every level.
    ///
    /// # Errors
    ///
    /// Returns the verifier's findings when the program (or any pass's
    /// output) fails verification.
    pub fn with_opt(program: &Program, opt: u8) -> Result<Self, String> {
        if opt == 0 {
            return Ok(Self::new(program));
        }
        let (optimized, _report) = analysis::opt::optimize(program, opt)?;
        let mut engine = Self::new(&optimized);
        engine.analysis_program = Some(Box::new(program.clone()));
        Ok(engine)
    }

    /// Publishes `vm.minic.*` execution stats into `registry` after every
    /// control command: ops executed, events seen, heap allocs/frees, and
    /// live heap bytes.
    pub fn set_registry(&mut self, registry: obs::Registry) {
        self.registry = Some(registry);
    }

    /// Read access to the VM (used by in-process tools and benches).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    fn publish_stats(&self) {
        let Some(reg) = &self.registry else {
            return;
        };
        // Absolute readings of cumulative VM totals: gauges, not
        // counters, so a merged cross-process snapshot never adds two
        // reports of the same total.
        reg.set_gauge("vm.minic.ops", self.vm.ops_executed());
        reg.set_gauge("vm.minic.events", self.events_seen);
        let alloc = self.vm.allocator();
        reg.set_gauge("vm.minic.heap.allocs", alloc.total_allocs());
        reg.set_gauge("vm.minic.heap.frees", alloc.total_frees());
        reg.set_gauge("vm.minic.heap.live_bytes", alloc.live_bytes());
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn location(&self, line: u32) -> SourceLocation {
        SourceLocation::new(self.vm.program().file.clone(), line)
    }

    /// Renders the current value of a watched variable, `None` when it is
    /// not in scope.
    fn eval_watch(&self, name: &str) -> Option<String> {
        self.lookup_variable(name)
            .map(|v| state::render_value(v.value()))
    }

    /// Resolves `var` / `function::var` against the live frames, then the
    /// globals.
    fn lookup_variable(&self, name: &str) -> Option<Variable> {
        if self.vm.frames().is_empty() {
            return None;
        }
        let opts = InspectOptions::default();
        let program = self.vm.program();
        let (func_filter, var) = match name.split_once("::") {
            Some((f, v)) => (Some(f), v),
            None => (None, name),
        };
        // Innermost matching frame first.
        for fi in self.vm.frames().iter().rev() {
            let meta = &program.functions[fi.function];
            if let Some(f) = func_filter {
                if meta.name != f {
                    continue;
                }
            }
            if let Some(local) = meta
                .locals
                .iter()
                .find(|l| l.name == var && (l.is_param || l.decl_line <= fi.line))
            {
                let addr = fi.base + local.offset;
                let value = inspect::read_value(&self.vm, addr, &local.ty, opts)
                    .with_location(state::Location::Stack)
                    .with_address(addr);
                let scope = if local.is_param {
                    state::Scope::Parameter
                } else {
                    state::Scope::Local
                };
                return Some(Variable::new(local.name.clone(), scope, value));
            }
            if func_filter.is_none() {
                // Unqualified names only look at the innermost frame
                // before falling back to globals, like a debugger.
                break;
            }
        }
        if func_filter.is_none() {
            if let Some(g) = program.globals.iter().find(|g| g.name == var) {
                let value = inspect::read_value(&self.vm, g.addr, &g.ty, opts)
                    .with_location(state::Location::Global)
                    .with_address(g.addr);
                return Some(Variable::new(g.name.clone(), state::Scope::Global, value));
            }
            // Function symbols are inspectable as FUNCTION values (the
            // paper's abstract type for C function designators).
            if let Some((idx, f)) = program.function(var) {
                let value = Value::function(f.name.clone(), "function")
                    .with_location(state::Location::Global)
                    .with_address(idx as u64);
                return Some(Variable::new(f.name.clone(), state::Scope::Global, value));
            }
        }
        None
    }

    /// Checks all watchpoints; returns the pause reason for the first
    /// changed one.
    fn check_watches(&mut self) -> Option<PauseReason> {
        let mut hit = None;
        // Evaluate first (immutable), then update (mutable).
        let evals: Vec<Option<String>> = self
            .watches
            .iter()
            .map(|w| self.eval_watch(&w.name))
            .collect();
        for (w, current) in self.watches.iter_mut().zip(evals) {
            // A C variable becoming *visible* (entering scope) is not a
            // modification — prime silently; only value changes trigger.
            let changed = current.is_some() && w.last.is_some() && w.last != current;
            if changed && hit.is_none() {
                hit = Some(PauseReason::Watchpoint {
                    id: w.id,
                    variable: w.name.clone(),
                    old: w.last.clone(),
                    new: current.clone().expect("changed implies Some"),
                });
            }
            if current.is_some() {
                w.last = current;
            }
        }
        hit
    }

    /// Runs the VM until a pause condition for `mode` is met, the slice's
    /// `fuel` (in VM events) runs out, or a hard budget trips. Callers
    /// starting a *fresh* command must clear `finish_fired` first; a
    /// slice resume must not (it is the command's progress).
    fn run(&mut self, mode: Mode, fuel: Option<u64>) -> RunOutcome {
        if let Some(code) = self.vm.exit_code() {
            return RunOutcome::Paused(PauseReason::Exited(ExitStatus::Exited(code)));
        }
        if self.crashed.is_some() {
            return RunOutcome::Paused(PauseReason::Exited(ExitStatus::Crashed));
        }
        let mut spent = 0u64;
        loop {
            if let Some(f) = fuel {
                if spent >= f {
                    self.pending_slice = Some(mode);
                    return RunOutcome::OutOfFuel;
                }
            }
            let event = match self.vm.step() {
                Ok(ev) => ev,
                Err(e) => {
                    self.crashed = Some(e.to_string());
                    return RunOutcome::Paused(PauseReason::Exited(ExitStatus::Crashed));
                }
            };
            spent += 1;
            self.events_seen += 1;
            if let Some(limit) = self.max_steps {
                let used = self.vm.ops_executed();
                if used > limit {
                    return RunOutcome::Exhausted {
                        which: ResourceKind::Steps,
                        used,
                        limit,
                    };
                }
            }
            if let Some(limit) = self.max_heap_bytes {
                let used = self.vm.allocator().live_bytes();
                if used > limit {
                    return RunOutcome::Exhausted {
                        which: ResourceKind::HeapBytes,
                        used,
                        limit,
                    };
                }
            }
            match event {
                Event::Line(n) => {
                    if !self.watches.is_empty() {
                        if let Some(reason) = self.check_watches() {
                            return RunOutcome::Paused(reason);
                        }
                    }
                    if let Some(bp) = self
                        .bps
                        .iter()
                        .find(|bp| matches!(bp.kind, BpKind::Line(l) if l == n))
                    {
                        return RunOutcome::Paused(PauseReason::Breakpoint {
                            id: bp.id,
                            location: self.location(n),
                        });
                    }
                    if self.finish_fired {
                        return RunOutcome::Paused(PauseReason::Step);
                    }
                    let depth = self.vm.frames().len();
                    match mode {
                        Mode::Start => return RunOutcome::Paused(PauseReason::Started),
                        Mode::Step { line, depth: d } => {
                            if n != line || depth != d {
                                return RunOutcome::Paused(PauseReason::Step);
                            }
                        }
                        Mode::Next { line, depth: d } => {
                            if depth < d || (depth == d && n != line) {
                                return RunOutcome::Paused(PauseReason::Step);
                            }
                        }
                        Mode::Resume | Mode::Finish { .. } => {}
                    }
                }
                Event::Call { function, depth } => {
                    let name = &self.vm.program().functions[function].name;
                    if let Some(bp) = self.bps.iter().find(|bp| match &bp.kind {
                        BpKind::FuncEntry {
                            function: f,
                            maxdepth,
                        } => f == name && maxdepth.is_none_or(|m| depth <= m),
                        BpKind::Line(_) => false,
                    }) {
                        let line = self.vm.program().functions[function].line;
                        return RunOutcome::Paused(PauseReason::Breakpoint {
                            id: bp.id,
                            location: self.location(line),
                        });
                    }
                    if self
                        .tracked
                        .iter()
                        .any(|t| t.function == *name && t.maxdepth.is_none_or(|m| depth <= m))
                    {
                        return RunOutcome::Paused(PauseReason::FunctionCall {
                            function: name.clone(),
                            depth,
                        });
                    }
                }
                Event::Return {
                    function,
                    depth,
                    value,
                } => {
                    let name = self.vm.program().functions[function].name.clone();
                    if self
                        .tracked
                        .iter()
                        .any(|t| t.function == name && t.maxdepth.is_none_or(|m| depth <= m))
                    {
                        return RunOutcome::Paused(PauseReason::FunctionReturn {
                            function: name,
                            depth,
                            return_value: value.map(|v| v.to_string()),
                        });
                    }
                    if let Mode::Finish { depth: d } = mode {
                        if depth as usize == d {
                            self.finish_fired = true;
                        }
                    }
                }
                Event::Store { .. } => {
                    if let Some(reason) = self.check_watches() {
                        return RunOutcome::Paused(reason);
                    }
                }
                Event::Output(_) => {}
                Event::SanitizerTrap(diagnostic) => {
                    if let Some(reg) = &self.registry {
                        reg.add("sanitizer.traps", 1);
                    }
                    return RunOutcome::Paused(PauseReason::Sanitizer { diagnostic });
                }
                Event::Exited(code) => {
                    return RunOutcome::Paused(PauseReason::Exited(ExitStatus::Exited(code)));
                }
            }
        }
    }

    /// Starts a *fresh* control command, optionally fuel-bounded.
    /// Clears per-command progress (`finish_fired`, any stale pending
    /// slice) before running — the one thing a slice resume must not do.
    fn control_sliced(&mut self, mode: Mode, fuel: Option<u64>) -> SliceOutcome {
        if !self.started && !matches!(mode, Mode::Start) {
            return SliceOutcome::Done(Response::Error {
                message: "inferior not started (call start first)".into(),
            });
        }
        self.finish_fired = false;
        self.burst(mode, fuel)
    }

    fn control(&mut self, mode: Mode) -> Response {
        match self.control_sliced(mode, None) {
            SliceOutcome::Done(resp) => resp,
            SliceOutcome::Yielded => unreachable!("unfueled run cannot yield"),
        }
    }

    /// One fuel-bounded run burst: shared by fresh commands and slice
    /// resumes. The per-burst span is telemetry only, so slicing stays
    /// invisible on the protocol.
    fn burst(&mut self, mode: Mode, fuel: Option<u64>) -> SliceOutcome {
        if let Some((which, used, limit)) = self.exhausted {
            // Budget exhaustion is terminal: every later control command
            // repeats the verdict instead of running the inferior.
            return SliceOutcome::Done(Response::ResourceExhausted { which, used, limit });
        }
        self.pending_slice = None;
        // Times the VM burst this control command caused; joins the
        // tracker's trace when the command frame carried a context.
        let span = self.registry.as_ref().map(|reg| {
            let mut span = reg.span("vm.minic.exec");
            span.category("vm");
            span
        });
        let outcome = self.run(mode, fuel);
        if let Some(mut span) = span {
            let tag = match &outcome {
                RunOutcome::Paused(reason) => reason.to_string(),
                RunOutcome::OutOfFuel => "slice".to_owned(),
                RunOutcome::Exhausted { which, .. } => format!("exhausted:{which}"),
            };
            span.tag("pause_reason", tag);
            span.finish();
        }
        self.publish_stats();
        match outcome {
            RunOutcome::Paused(reason) => {
                self.last_reason = reason.clone();
                SliceOutcome::Done(Response::Paused(reason))
            }
            RunOutcome::OutOfFuel => SliceOutcome::Yielded,
            RunOutcome::Exhausted { which, used, limit } => {
                self.exhausted = Some((which, used, limit));
                SliceOutcome::Done(Response::ResourceExhausted { which, used, limit })
            }
        }
    }

    /// Maps a control command to its run mode, performing the same
    /// pre-flight checks for the plain and sliced paths. `None` for
    /// non-control commands.
    fn prepare(&mut self, command: &Command) -> Option<Result<Mode, Response>> {
        match command {
            Command::Start => Some(if self.started {
                Err(Response::Error {
                    message: "inferior already started".into(),
                })
            } else {
                self.started = true;
                Ok(Mode::Start)
            }),
            Command::Resume => Some(Ok(Mode::Resume)),
            Command::Step => {
                let (line, depth) = self.current_position();
                Some(Ok(Mode::Step { line, depth }))
            }
            Command::Next => {
                let (line, depth) = self.current_position();
                Some(Ok(Mode::Next { line, depth }))
            }
            Command::Finish => {
                let (_, depth) = self.current_position();
                Some(if depth <= 1 {
                    Err(Response::Error {
                        message: "cannot finish the outermost frame".into(),
                    })
                } else {
                    // Depth as reported in Return events is 0-based.
                    Ok(Mode::Finish { depth: depth - 1 })
                })
            }
            _ => None,
        }
    }

    fn current_position(&self) -> (u32, usize) {
        let line = self.vm.frames().last().map(|f| f.line).unwrap_or(0);
        (line, self.vm.frames().len())
    }
}

impl Engine for MinicEngine {
    fn handle(&mut self, command: Command) -> Response {
        match self.prepare(&command) {
            Some(Err(resp)) => return resp,
            Some(Ok(mode)) => return self.control(mode),
            None => {}
        }
        match command {
            Command::Start | Command::Resume | Command::Step | Command::Next | Command::Finish => {
                unreachable!("control commands are routed through prepare")
            }
            Command::SetBreakLine { line } => {
                // Like GDB: slide to the next line that really holds code.
                let lines = self.vm.program().breakable_lines();
                let Some(&actual) = lines.range(line..).next() else {
                    return Response::Error {
                        message: format!("no code at or after line {line}"),
                    };
                };
                let id = self.alloc_id();
                self.bps.push(Breakpoint {
                    id,
                    kind: BpKind::Line(actual),
                });
                Response::Created { id }
            }
            Command::SetBreakFunc { function, maxdepth } => {
                if self.vm.program().function(&function).is_none() {
                    return Response::Error {
                        message: format!("unknown function `{function}`"),
                    };
                }
                let id = self.alloc_id();
                self.bps.push(Breakpoint {
                    id,
                    kind: BpKind::FuncEntry { function, maxdepth },
                });
                Response::Created { id }
            }
            Command::TrackFunction { function, maxdepth } => {
                if self.vm.program().function(&function).is_none() {
                    return Response::Error {
                        message: format!("unknown function `{function}`"),
                    };
                }
                self.tracked.push(Track { function, maxdepth });
                let id = self.alloc_id();
                Response::Created { id }
            }
            Command::Watch { variable } => {
                let last = self.eval_watch(&variable);
                let id = self.alloc_id();
                self.watches.push(Watch {
                    id,
                    name: variable,
                    last,
                });
                // Watchpoints require store events: this is the expensive
                // mode the paper warns about.
                self.vm.set_store_events(true);
                Response::Created { id }
            }
            Command::Delete { id } => {
                let before = self.bps.len() + self.watches.len();
                self.bps.retain(|b| b.id != id);
                self.watches.retain(|w| w.id != id);
                if self.watches.is_empty() {
                    self.vm.set_store_events(false);
                }
                if self.bps.len() + self.watches.len() == before {
                    Response::Error {
                        message: format!("no breakpoint or watchpoint {id}"),
                    }
                } else {
                    Response::Ok
                }
            }
            Command::GetState => {
                if !self.started || self.vm.frames().is_empty() {
                    return Response::Error {
                        message: "no frames to inspect".into(),
                    };
                }
                let frame = inspect::current_frame(&self.vm);
                let globals = inspect::global_variables(&self.vm);
                Response::State(Box::new(ProgramState::new(
                    frame,
                    globals,
                    self.last_reason.clone(),
                )))
            }
            Command::GetGlobals => Response::Globals(inspect::global_variables(&self.vm)),
            Command::GetVariable { name } => Response::Variable(self.lookup_variable(&name)),
            Command::GetRegisters => {
                // Pseudo-registers of the C VM: stack pointer and current
                // line (the paper's Fig. 7 registers come from the
                // assembly engine; these are still useful for tools).
                let sp = self.vm.stack_pointer();
                let (line, depth) = self.current_position();
                Response::Registers(vec![
                    Variable::new(
                        "sp",
                        state::Scope::Register,
                        Value::primitive(Prim::Int(sp as i64), "u64")
                            .with_location(state::Location::Register),
                    ),
                    Variable::new(
                        "line",
                        state::Scope::Register,
                        Value::primitive(Prim::Int(line as i64), "u32")
                            .with_location(state::Location::Register),
                    ),
                    Variable::new(
                        "depth",
                        state::Scope::Register,
                        Value::primitive(Prim::Int(depth as i64), "u32")
                            .with_location(state::Location::Register),
                    ),
                ])
            }
            Command::ReadMemory { addr, len } => {
                match self.vm.memory().read_bytes(addr, len.min(64 * 1024)) {
                    Ok(bytes) => Response::Memory(bytes.to_vec()),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Command::GetOutput => {
                let all = self.vm.output();
                let new = all[self.output_cursor.min(all.len())..].to_owned();
                self.output_cursor = all.len();
                let with_crash = match &self.crashed {
                    Some(msg) if !self.crash_reported => {
                        self.crash_reported = true;
                        format!("{new}{msg}\n")
                    }
                    _ => new,
                };
                Response::Output(with_crash)
            }
            Command::GetExitCode => Response::ExitCode(if self.crashed.is_some() {
                Some(-1)
            } else {
                self.vm.exit_code()
            }),
            Command::GetSource => Response::Source {
                file: self.vm.program().file.clone(),
                text: self.vm.program().source.clone(),
            },
            Command::GetBreakableLines => {
                Response::Lines(self.vm.program().breakable_lines().into_iter().collect())
            }
            Command::Analyze => {
                // Diagnose the program the user wrote, not the one the
                // optimizer produced: dead-code deletion must not change
                // the static findings.
                let program = self
                    .analysis_program
                    .as_deref()
                    .unwrap_or_else(|| self.vm.program());
                let diags = match &self.registry {
                    Some(reg) => analysis::analyze_with_registry(program, reg),
                    None => analysis::analyze(program),
                };
                Response::Diagnostics(diags)
            }
            Command::Verify => {
                // The program the VM actually executes — for optimized
                // sessions this re-checks the optimizer's output on
                // demand.
                let findings = analysis::verify::verify(self.vm.program())
                    .iter()
                    .map(ToString::to_string)
                    .collect();
                Response::Verified { findings }
            }
            Command::SetSanitizer { on } => {
                if self.started {
                    return Response::Error {
                        message: "sanitizer mode must be set before start".into(),
                    };
                }
                self.vm.set_sanitizer(on);
                Response::Ok
            }
            Command::SetProfile { mode, period } => {
                if self.started && mode != obs::ProfileMode::Off {
                    return Response::Error {
                        message: "profiling must be armed before start".into(),
                    };
                }
                self.vm.set_profile(mode, period);
                Response::Ok
            }
            Command::ProfileReport { .. } => Response::Profile(Box::new(self.vm.profile_report())),
            // The serve loop normally answers Ping and Telemetry itself;
            // answering here too keeps `handle` total for engines driven
            // directly.
            Command::Ping => Response::Pong {
                now_us: self.registry.as_ref().map_or(0, obs::Registry::now_us),
            },
            Command::Telemetry { since } => {
                // No export ring at this layer: metrics only.
                let frame = match &self.registry {
                    Some(reg) => obs::telemetry::collect_frame(reg, None, since),
                    None => obs::TelemetryFrame::default(),
                };
                Response::Telemetry(Box::new(frame))
            }
            Command::Terminate => Response::Ok,
            Command::SetLimits {
                max_steps,
                max_heap_bytes,
                ..
            } => {
                // Steps and heap are enforced in-engine; wall time and
                // queue depth are the host's job (it applies them as the
                // command passes through). Converges: re-setting the same
                // budgets is a no-op, `None` clears.
                self.max_steps = max_steps;
                self.max_heap_bytes = max_heap_bytes;
                Response::Ok
            }
            // Session management is the host's job, not an engine's.
            Command::OpenSession { .. }
            | Command::CloseSession { .. }
            | Command::OpenReplay { .. } => Response::Error {
                message: "session commands are handled by the host, not an engine".into(),
            },
            // The trace vocabulary is served by the RecordingEngine
            // wrapper every spawned session carries, never by a bare
            // engine.
            Command::Record { .. }
            | Command::Seek { .. }
            | Command::QueryHistory { .. }
            | Command::TraceStats
            | Command::PublishTrace { .. } => Response::Error {
                message: "trace commands are handled by the recording wrapper".into(),
            },
        }
    }

    fn handle_sliced(&mut self, command: Command, fuel: u64) -> SliceOutcome {
        match self.prepare(&command) {
            Some(Err(resp)) => SliceOutcome::Done(resp),
            Some(Ok(mode)) => self.control_sliced(mode, Some(fuel)),
            None => SliceOutcome::Done(self.handle(command)),
        }
    }

    fn resume_sliced(&mut self, fuel: u64) -> SliceOutcome {
        match self.pending_slice {
            // Resume, not restart: `finish_fired` and the stashed mode
            // are the command's progress and survive the yield.
            Some(mode) => self.burst(mode, Some(fuel)),
            None => SliceOutcome::Done(Response::Error {
                message: "no sliced command pending".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::compile;

    fn engine(src: &str) -> MinicEngine {
        MinicEngine::new(&compile("t.c", src).unwrap())
    }

    fn paused(r: Response) -> PauseReason {
        match r {
            Response::Paused(p) => p,
            other => panic!("expected Paused, got {other:?}"),
        }
    }

    const COUNT: &str = "int main() {\nint i = 0;\nwhile (i < 5) {\ni = i + 1;\n}\nreturn i;\n}";

    #[test]
    fn start_pauses_before_first_line() {
        let mut e = engine(COUNT);
        let r = paused(e.handle(Command::Start));
        assert_eq!(r, PauseReason::Started);
        // Inspect: i not yet visible or zero; frame is main.
        match e.handle(Command::GetState) {
            Response::State(st) => {
                assert_eq!(st.frame.name(), "main");
                assert_eq!(st.frame.location().line(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn step_moves_line_by_line() {
        let mut e = engine(COUNT);
        e.handle(Command::Start);
        let mut lines = Vec::new();
        loop {
            match paused(e.handle(Command::Step)) {
                PauseReason::Step => {
                    if let Response::State(st) = e.handle(Command::GetState) {
                        lines.push(st.frame.location().line());
                    }
                }
                PauseReason::Exited(ExitStatus::Exited(code)) => {
                    assert_eq!(code, 5);
                    break;
                }
                other => panic!("unexpected {other}"),
            }
        }
        // 3,4 repeated five times, then 6.
        assert_eq!(lines[0], 3);
        assert_eq!(*lines.last().unwrap(), 6);
        assert_eq!(lines.iter().filter(|&&l| l == 4).count(), 5);
    }

    #[test]
    fn line_breakpoints_slide_and_hit() {
        let mut e = engine(COUNT);
        let id = match e.handle(Command::SetBreakLine { line: 4 }) {
            Response::Created { id } => id,
            other => panic!("unexpected {other:?}"),
        };
        e.handle(Command::Start);
        let r = paused(e.handle(Command::Resume));
        match r {
            PauseReason::Breakpoint { id: hit, location } => {
                assert_eq!(hit, id);
                assert_eq!(location.line(), 4);
            }
            other => panic!("unexpected {other}"),
        }
        // Hits again each iteration.
        let r = paused(e.handle(Command::Resume));
        assert!(matches!(r, PauseReason::Breakpoint { .. }));
        // Delete, then run to exit.
        assert_eq!(e.handle(Command::Delete { id }), Response::Ok);
        let r = paused(e.handle(Command::Resume));
        assert_eq!(r, PauseReason::Exited(ExitStatus::Exited(5)));
    }

    const REC: &str = "int fact(int n) {\nif (n <= 1) { return 1; }\nreturn n * fact(n - 1);\n}\nint main() {\nreturn fact(4);\n}";

    #[test]
    fn function_breakpoint_with_maxdepth() {
        let mut e = engine(REC);
        e.handle(Command::SetBreakFunc {
            function: "fact".into(),
            maxdepth: Some(2),
        });
        e.handle(Command::Start);
        let mut hits = 0;
        loop {
            match paused(e.handle(Command::Resume)) {
                PauseReason::Breakpoint { .. } => {
                    hits += 1;
                    // Arguments are bound at the pause.
                    match e.handle(Command::GetVariable { name: "n".into() }) {
                        Response::Variable(Some(v)) => {
                            assert_eq!(v.scope(), state::Scope::Parameter);
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                PauseReason::Exited(_) => break,
                other => panic!("unexpected {other}"),
            }
        }
        // Depths are 1 and 2 only (of 4 recursive activations).
        assert_eq!(hits, 2);
    }

    #[test]
    fn track_function_pairs_calls_and_returns() {
        let mut e = engine(REC);
        e.handle(Command::TrackFunction {
            function: "fact".into(),
            maxdepth: None,
        });
        e.handle(Command::Start);
        let mut calls = 0;
        let mut returns = Vec::new();
        loop {
            match paused(e.handle(Command::Resume)) {
                PauseReason::FunctionCall { function, .. } => {
                    assert_eq!(function, "fact");
                    calls += 1;
                }
                PauseReason::FunctionReturn {
                    function,
                    return_value,
                    ..
                } => {
                    assert_eq!(function, "fact");
                    // Frame still live: n is inspectable.
                    match e.handle(Command::GetVariable { name: "n".into() }) {
                        Response::Variable(Some(_)) => {}
                        other => panic!("unexpected {other:?}"),
                    }
                    returns.push(return_value.unwrap());
                }
                PauseReason::Exited(ExitStatus::Exited(code)) => {
                    assert_eq!(code, 24);
                    break;
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(calls, 4);
        assert_eq!(returns, vec!["1", "2", "6", "24"]);
    }

    #[test]
    fn watchpoint_reports_old_and_new() {
        let mut e = engine(COUNT);
        e.handle(Command::Start);
        e.handle(Command::Watch {
            variable: "i".into(),
        });
        let mut transitions = Vec::new();
        loop {
            match paused(e.handle(Command::Resume)) {
                PauseReason::Watchpoint {
                    old, new, variable, ..
                } => {
                    assert_eq!(variable, "i");
                    transitions.push((old, new));
                }
                PauseReason::Exited(_) => break,
                other => panic!("unexpected {other}"),
            }
        }
        // The fresh stack slot already reads 0 when the watch is created,
        // so only the five increments 1..=5 trigger.
        assert_eq!(transitions.len(), 5);
        assert_eq!(transitions[0], (Some("0".into()), "1".into()));
        assert_eq!(transitions[4], (Some("4".into()), "5".into()));
    }

    #[test]
    fn next_steps_over_calls() {
        let src = "int f(int x) {\nint y = x * 2;\nreturn y;\n}\nint main() {\nint a = f(3);\nreturn a;\n}";
        let mut e = engine(src);
        e.handle(Command::Start); // paused at line 6
        let r = paused(e.handle(Command::Next));
        assert_eq!(r, PauseReason::Step);
        if let Response::State(st) = e.handle(Command::GetState) {
            assert_eq!(st.frame.name(), "main");
            assert_eq!(st.frame.location().line(), 7);
        } else {
            panic!("no state");
        }
        // Whereas step enters.
        let mut e = engine(src);
        e.handle(Command::Start);
        paused(e.handle(Command::Step));
        if let Response::State(st) = e.handle(Command::GetState) {
            assert_eq!(st.frame.name(), "f");
        } else {
            panic!("no state");
        }
    }

    #[test]
    fn finish_returns_to_caller() {
        let src = "int f(int x) {\nint y = x * 2;\nreturn y;\n}\nint main() {\nint a = f(3);\nreturn a;\n}";
        let mut e = engine(src);
        e.handle(Command::Start);
        paused(e.handle(Command::Step)); // inside f
        let r = paused(e.handle(Command::Finish));
        assert_eq!(r, PauseReason::Step);
        if let Response::State(st) = e.handle(Command::GetState) {
            assert_eq!(st.frame.name(), "main");
        } else {
            panic!("no state");
        }
    }

    #[test]
    fn output_and_exit_code() {
        let mut e = engine("int main() {\nprintf(\"hi %d\\n\", 3);\nreturn 9;\n}");
        e.handle(Command::Start);
        assert_eq!(e.handle(Command::GetExitCode), Response::ExitCode(None));
        paused(e.handle(Command::Resume));
        assert_eq!(e.handle(Command::GetExitCode), Response::ExitCode(Some(9)));
        assert_eq!(
            e.handle(Command::GetOutput),
            Response::Output("hi 3\n".into())
        );
        // Cursor advanced: second read is empty.
        assert_eq!(
            e.handle(Command::GetOutput),
            Response::Output(String::new())
        );
    }

    #[test]
    fn crash_reported_as_crashed() {
        let mut e = engine("int main() {\nint* p = NULL;\nreturn *p;\n}");
        e.handle(Command::Start);
        let r = paused(e.handle(Command::Resume));
        assert_eq!(r, PauseReason::Exited(ExitStatus::Crashed));
        assert_eq!(e.handle(Command::GetExitCode), Response::ExitCode(Some(-1)));
        match e.handle(Command::GetOutput) {
            Response::Output(o) => assert!(o.contains("invalid memory")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_before_start_rejected() {
        let mut e = engine(COUNT);
        assert!(matches!(e.handle(Command::Resume), Response::Error { .. }));
        assert!(matches!(
            e.handle(Command::GetState),
            Response::Error { .. }
        ));
    }

    #[test]
    fn errors_for_unknown_targets() {
        let mut e = engine(COUNT);
        assert!(matches!(
            e.handle(Command::SetBreakFunc {
                function: "nope".into(),
                maxdepth: None
            }),
            Response::Error { .. }
        ));
        assert!(matches!(
            e.handle(Command::SetBreakLine { line: 999 }),
            Response::Error { .. }
        ));
        assert!(matches!(
            e.handle(Command::Delete { id: 42 }),
            Response::Error { .. }
        ));
    }

    #[test]
    fn memory_and_registers() {
        let mut e = engine("int g = 258;\nint main() {\nreturn g;\n}");
        e.handle(Command::Start);
        let g_addr = e.vm().program().global("g").unwrap().addr;
        match e.handle(Command::ReadMemory {
            addr: g_addr,
            len: 4,
        }) {
            Response::Memory(bytes) => assert_eq!(bytes, 258i32.to_le_bytes()),
            other => panic!("unexpected {other:?}"),
        }
        match e.handle(Command::GetRegisters) {
            Response::Registers(regs) => {
                assert!(regs.iter().any(|r| r.name() == "sp"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod sanitizer_tests {
    use super::*;
    use minic::compile;
    use state::DiagnosticKind;

    const UAF: &str =
        "int main() {\nint* p = malloc(4);\n*p = 7;\nfree(p);\nint x = *p;\nreturn x;\n}";

    fn engine(src: &str) -> MinicEngine {
        MinicEngine::new(&compile("t.c", src).unwrap())
    }

    fn paused(r: Response) -> PauseReason {
        match r {
            Response::Paused(p) => p,
            other => panic!("expected Paused, got {other:?}"),
        }
    }

    #[test]
    fn sanitizer_trap_pauses_with_the_diagnostic() {
        let mut e = engine(UAF);
        assert_eq!(e.handle(Command::SetSanitizer { on: true }), Response::Ok);
        e.handle(Command::Start);
        match paused(e.handle(Command::Resume)) {
            PauseReason::Sanitizer { diagnostic } => {
                assert_eq!(diagnostic.kind, DiagnosticKind::UseAfterFree);
                assert_eq!(diagnostic.span, 5);
                assert_eq!(diagnostic.function, "main");
            }
            other => panic!("unexpected {other}"),
        }
        // The trap is an observation, not a fault: the inferior still
        // runs to completion (quarantined memory retains its value).
        let r = paused(e.handle(Command::Resume));
        assert_eq!(r, PauseReason::Exited(ExitStatus::Exited(7)));
    }

    #[test]
    fn state_is_inspectable_at_a_sanitizer_pause() {
        let mut e = engine(UAF);
        e.handle(Command::SetSanitizer { on: true });
        e.handle(Command::Start);
        paused(e.handle(Command::Resume)); // the UAF trap
        match e.handle(Command::GetState) {
            Response::State(st) => {
                assert_eq!(st.frame.name(), "main");
                assert!(matches!(st.reason, PauseReason::Sanitizer { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sanitizer_traps_counter_is_published() {
        let reg = obs::Registry::new();
        let mut e = engine(UAF);
        e.set_registry(reg.clone());
        e.handle(Command::SetSanitizer { on: true });
        e.handle(Command::Start);
        loop {
            if let PauseReason::Exited(_) = paused(e.handle(Command::Resume)) {
                break;
            }
        }
        assert_eq!(reg.snapshot().counter("sanitizer.traps"), 1);
    }

    #[test]
    fn set_sanitizer_rejected_after_start() {
        let mut e = engine(UAF);
        e.handle(Command::Start);
        assert!(matches!(
            e.handle(Command::SetSanitizer { on: true }),
            Response::Error { .. }
        ));
    }

    #[test]
    fn analyze_reports_without_running() {
        let mut e = engine(UAF);
        // No Start: the analysis is compile-time only.
        match e.handle(Command::Analyze) {
            Response::Diagnostics(diags) => {
                assert!(diags
                    .iter()
                    .any(|d| d.kind == DiagnosticKind::UseAfterFree && d.span == 5));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.handle(Command::GetExitCode), Response::ExitCode(None));
    }

    #[test]
    fn analyze_is_clean_on_a_safe_program() {
        let mut e = engine("int main() {\nint x = 1;\nreturn x;\n}");
        match e.handle(Command::Analyze) {
            Response::Diagnostics(diags) => assert!(diags.is_empty(), "{diags:?}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod function_symbol_tests {
    use super::*;
    use minic::compile;

    #[test]
    fn function_symbols_are_function_values() {
        let mut e = MinicEngine::new(
            &compile(
                "t.c",
                "int helper(int x) { return x; }\nint main() { return helper(1); }",
            )
            .unwrap(),
        );
        e.handle(Command::Start);
        match e.handle(Command::GetVariable {
            name: "helper".into(),
        }) {
            Response::Variable(Some(v)) => {
                assert_eq!(v.value().abstract_type(), state::AbstractType::Function);
                assert_eq!(state::render_value(v.value()), "<fn helper>");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
