//! `mi-server` — serves a debugger engine for one inferior over
//! stdin/stdout, one JSON frame per line.
//!
//! This is the paper's deployment shape made literal: the tracker runs
//! `mi-server <program>` as a child process and talks to it through real
//! OS pipes, exactly as its GDB tracker runs `gdb --interpreter=mi`.
//!
//! ```text
//! mi-server prog.c          # MiniC engine
//! mi-server prog.s          # RISC-V engine
//! mi-server /tmp/x.c p.c    # read /tmp/x.c, report locations as `p.c`
//! ```
//!
//! The optional second argument is the *logical* file name used in
//! reported source locations. Trackers that ship a program via a
//! temporary file pass the original name here so state snapshots are
//! byte-identical to an in-process run of the same program.

use mi::transport::StreamTransport;
use mi::{asm_engine::AsmEngine, minic_engine::MinicEngine, Server};
use std::io::{stdin, stdout, Read};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: mi-server <program.c|program.s> [logical-name]");
        std::process::exit(2);
    };
    let logical = args.next();
    // `-` reads the program from a leading source block on stdin is not
    // supported (frames own stdin); require a file path.
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mi-server: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let name = logical.as_deref().unwrap_or(&path);
    let transport = StreamTransport::new(LockedStdin, stdout());
    let end = if name.ends_with(".s") || name.ends_with(".asm") {
        let program = match miniasm::asm::assemble(name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mi-server: {e}");
                std::process::exit(1);
            }
        };
        Server::new(AsmEngine::new(&program), transport).serve()
    } else {
        let program = match minic::compile(name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mi-server: {e}");
                std::process::exit(1);
            }
        };
        Server::new(MinicEngine::new(&program), transport).serve()
    };
    // Never end silently on a broken boundary: a supervisor watching this
    // process must be able to tell "session finished" (exit 0) from "the
    // transport failed mid-session" (exit 3 + diagnostic).
    if let Err(e) = end {
        eprintln!("mi-server: transport failure: {e}");
        std::process::exit(3);
    }
}

/// `Stdin` is not `Read` by value without locking games; a tiny adapter.
struct LockedStdin;

impl Read for LockedStdin {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        stdin().lock().read(buf)
    }
}
