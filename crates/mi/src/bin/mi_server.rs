//! `mi-server` — serves a debugger engine for one inferior over
//! stdin/stdout, one JSON frame per line.
//!
//! This is the paper's deployment shape made literal: the tracker runs
//! `mi-server <program>` as a child process and talks to it through real
//! OS pipes, exactly as its GDB tracker runs `gdb --interpreter=mi`.
//!
//! ```text
//! mi-server prog.c     # MiniC engine
//! mi-server prog.s     # RISC-V engine
//! ```

use mi::transport::StreamTransport;
use mi::{asm_engine::AsmEngine, minic_engine::MinicEngine, Server};
use std::io::{stdin, stdout, Read};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: mi-server <program.c|program.s|->");
        std::process::exit(2);
    };
    // `-` reads the program from a leading source block on stdin is not
    // supported (frames own stdin); require a file path.
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mi-server: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let transport = StreamTransport::new(LockedStdin, stdout());
    if path.ends_with(".s") || path.ends_with(".asm") {
        let program = match miniasm::asm::assemble(&path, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mi-server: {e}");
                std::process::exit(1);
            }
        };
        Server::new(AsmEngine::new(&program), transport).serve();
    } else {
        let program = match minic::compile(&path, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mi-server: {e}");
                std::process::exit(1);
            }
        };
        Server::new(MinicEngine::new(&program), transport).serve();
    }
}

/// `Stdin` is not `Read` by value without locking games; a tiny adapter.
struct LockedStdin;

impl Read for LockedStdin {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        stdin().lock().read(buf)
    }
}
