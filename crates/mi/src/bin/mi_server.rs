//! `mi-server` — serves a debugger engine for one inferior over
//! stdin/stdout, one JSON frame per line.
//!
//! This is the paper's deployment shape made literal: the tracker runs
//! `mi-server <program>` as a child process and talks to it through real
//! OS pipes, exactly as its GDB tracker runs `gdb --interpreter=mi`.
//!
//! ```text
//! mi-server prog.c          # MiniC engine
//! mi-server prog.s          # RISC-V engine
//! mi-server /tmp/x.c p.c    # read /tmp/x.c, report locations as `p.c`
//! ```
//!
//! The optional second argument is the *logical* file name used in
//! reported source locations. Trackers that ship a program via a
//! temporary file pass the original name here so state snapshots are
//! byte-identical to an in-process run of the same program.
//!
//! The server hosts its own [`obs::Registry`]: engine/VM spans and stats
//! accumulate here (tagged with trace contexts propagated in command
//! frames) and drain back to the tracker over `Command::Telemetry`. It
//! also keeps an always-on flight recorder of served commands; on an
//! abnormal end — transport failure or panic — the recorder's ring is
//! printed as one marked stderr line, which the tracker's stderr tail
//! capture carries into the post-mortem dump.

use mi::transport::{StreamFrameRx, StreamFrameTx, StreamTransport};
use mi::{asm_engine::AsmEngine, minic_engine::MinicEngine, Server, SessionHost};
use std::io::{stdin, stdout, Read};

fn usage() -> String {
    format!(
        "usage: mi-server <program.c|program.s> [logical-name] [--opt N]\n       \
         mi-server --host [--workers N] [--max-sessions N] [--slice-steps N]\n\
         \n\
         solo options:\n  \
         --opt N            optimization level for MiniC programs (default 0);\n                     \
         the optimizer is observation-preserving and verified\n                     \
         before and after every pass\n\
         \n\
         host options:\n  \
         --workers N        worker threads driving the run queue (default 4)\n  \
         --max-sessions N   hard cap on open sessions; opens past it are\n                     \
         rejected with the retryable Overloaded response\n  \
         --slice-steps N    fuel per engine slice in VM steps (default {}); 0\n                     \
         disables preemption (a hot loop then pins a worker)",
        mi::DEFAULT_SLICE_STEPS
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };
    if path == "--help" || path == "-h" {
        println!("{}", usage());
        return;
    }
    if path == "--host" {
        host_main(args);
        return;
    }
    let mut logical = None;
    let mut opt: u8 = 0;
    let mut rest = args;
    while let Some(arg) = rest.next() {
        if arg == "--opt" {
            opt = rest.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
                eprintln!("mi-server: --opt takes a small non-negative integer");
                std::process::exit(2);
            });
        } else if logical.is_none() {
            logical = Some(arg);
        } else {
            eprintln!("mi-server: unexpected argument {arg}");
            std::process::exit(2);
        }
    }
    // `-` reads the program from a leading source block on stdin is not
    // supported (frames own stdin); require a file path.
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mi-server: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let registry = obs::Registry::new();
    let flight = obs::FlightRecorder::new(256);
    // A panicking engine must still get its last gasp out: the default
    // hook prints the panic, ours prepends the flight ring.
    let hook_flight = flight.clone();
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        eprintln!("{}", hook_flight.last_gasp_line());
        default_hook(info);
    }));
    let name = logical.as_deref().unwrap_or(&path);
    let transport = StreamTransport::new(LockedStdin, stdout());
    let end = if name.ends_with(".s") || name.ends_with(".asm") {
        let program = match miniasm::asm::assemble(name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mi-server: {e}");
                std::process::exit(1);
            }
        };
        let mut engine = AsmEngine::new(&program);
        engine.set_registry(registry.clone());
        let engine = mi::RecordingEngine::new(engine);
        let mut server = Server::with_telemetry(engine, transport, registry);
        server.set_flight_recorder(flight.clone());
        server.serve()
    } else {
        let program = match minic::compile(name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mi-server: {e}");
                std::process::exit(1);
            }
        };
        let mut engine = match MinicEngine::with_opt(&program, opt) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("mi-server: optimizer rejected the program:\n{e}");
                std::process::exit(1);
            }
        };
        engine.set_registry(registry.clone());
        let engine = mi::RecordingEngine::new(engine);
        let mut server = Server::with_telemetry(engine, transport, registry);
        server.set_flight_recorder(flight.clone());
        server.serve()
    };
    // Never end silently on a broken boundary: a supervisor watching this
    // process must be able to tell "session finished" (exit 0) from "the
    // transport failed mid-session" (exit 3 + diagnostic). The last-gasp
    // line rides the same stderr capture into the tracker's post-mortem.
    if let Err(e) = end {
        eprintln!("{}", flight.last_gasp_line());
        eprintln!("mi-server: transport failure: {e}");
        std::process::exit(3);
    }
}

/// `mi-server --host [--workers N] [--max-sessions N] [--slice-steps N]`:
/// the multi-session mode. Programs
/// arrive inside `OpenSession` frames (no filesystem involved), many
/// sessions multiplex over the one stdio connection, and a worker pool
/// drives them. Exits 0 when the peer closes stdin — a connection
/// dying is a *per-session* end under the host, never the exit-3
/// transport-failure path of the single-session mode.
fn host_main(mut args: impl Iterator<Item = String>) {
    let mut config = mi::HostConfig::default();
    let numeric = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
            eprintln!("mi-server: {flag} takes a non-negative integer");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                config.workers = numeric(&mut args, "--workers").max(1) as usize;
            }
            "--max-sessions" => {
                config.max_sessions = Some(numeric(&mut args, "--max-sessions") as usize);
            }
            "--slice-steps" => {
                // 0 = unsliced: run every control command to its next
                // pause, the pre-governance behavior.
                let fuel = numeric(&mut args, "--slice-steps");
                config.slice_steps = (fuel > 0).then_some(fuel);
            }
            other => {
                eprintln!("mi-server: unknown host option {other}");
                std::process::exit(2);
            }
        }
    }
    let host = SessionHost::with_config(config, obs::Registry::new());
    let conn = host.accept(
        StreamFrameRx::new(LockedStdin),
        StreamFrameTx::new(stdout()),
    );
    conn.join();
    host.shutdown();
}

/// `Stdin` is not `Read` by value without locking games; a tiny adapter.
struct LockedStdin;

impl Read for LockedStdin {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        stdin().lock().read(buf)
    }
}
