//! The MI command/response vocabulary.
//!
//! Everything here is serde-serializable; the transport sends JSON frames,
//! so the state really crosses a serialization boundary, like the paper's
//! pickled objects crossing the GDB pipe.

use serde::{Deserialize, Serialize};
use state::{Diagnostic, PauseReason, ProgramState, Variable};

/// A command from the tracker to the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Run until the first line of the entry function.
    Start,
    /// Run until the next pause condition (breakpoint, watchpoint,
    /// tracked-function boundary) or exit.
    Resume,
    /// Run until the next different source line (entering calls).
    Step,
    /// Like `Step` but never pauses deeper than the current frame.
    Next,
    /// Run until the current function is about to return to its caller.
    Finish,
    /// Create a line breakpoint.
    SetBreakLine {
        /// 1-based source line.
        line: u32,
    },
    /// Create a function-entry breakpoint (paused with arguments bound).
    SetBreakFunc {
        /// Function name (a label for assembly engines).
        function: String,
        /// Ignore hits whose call depth exceeds this.
        maxdepth: Option<u32>,
    },
    /// Pause at every entry and exit of the function.
    TrackFunction {
        /// Function name.
        function: String,
        /// Ignore events whose call depth exceeds this.
        maxdepth: Option<u32>,
    },
    /// Pause whenever the named variable changes value.
    ///
    /// Names are `var`, `function::var`, a register name (assembly), or
    /// `*0xADDR:SIZE` for a raw memory watch (assembly).
    Watch {
        /// Variable identifier.
        variable: String,
    },
    /// Remove a breakpoint/watchpoint by id.
    Delete {
        /// Identifier returned at creation.
        id: u64,
    },
    /// Fetch the innermost frame (with parent chain) and globals.
    GetState,
    /// Fetch only the global variables.
    GetGlobals,
    /// Fetch a single variable by (possibly qualified) name.
    GetVariable {
        /// `var` or `function::var`.
        name: String,
    },
    /// Fetch machine registers (engine-specific pseudo-registers for the C
    /// VM; the real register file for assembly).
    GetRegisters,
    /// Read raw memory.
    ReadMemory {
        /// Start address.
        addr: u64,
        /// Byte count.
        len: u64,
    },
    /// Fetch output produced since the previous `GetOutput`.
    GetOutput,
    /// Fetch the exit code (None while running).
    GetExitCode,
    /// Fetch the source file name and text.
    GetSource,
    /// Fetch the lines valid as breakpoint targets.
    GetBreakableLines,
    /// Run the static memory-safety analysis over the loaded program and
    /// return its diagnostics. Purely compile-time: the inferior does not
    /// run (and need not have started).
    Analyze,
    /// Run the bytecode verifier over the loaded program and return its
    /// findings (empty = the program is well-formed). Like `Analyze`,
    /// purely static: the inferior does not run. When the engine executes
    /// an optimized program, the *optimized* bytecode is verified — this
    /// is the on-demand face of the optimizer's translation validation.
    Verify,
    /// Switch the runtime memory sanitizer on or off. Must be issued
    /// before `Start`: shadow state is built as frames are pushed, so
    /// toggling mid-run would miss already-live frames.
    SetSanitizer {
        /// `true` enables sanitized execution (redzones, quarantine,
        /// shadow init bits); `false` restores plain execution.
        on: bool,
    },
    /// Drain engine-side telemetry: cumulative counters, gauges, and
    /// histograms from the engine's registry, plus trace events with
    /// absolute index `>= since`. Served by the boundary (like `Ping`),
    /// not the engine, and read-only: the cursor lives client-side, so
    /// re-issuing the same drain returns the same frame — safe for the
    /// supervision layer to retry.
    Telemetry {
        /// Absolute event-index cursor; events before it are skipped.
        since: u64,
    },
    /// Arm or disarm the in-engine profiler. Journaled as configuration,
    /// like `SetSanitizer`, so a respawned engine re-arms before replay;
    /// re-issuing the same mode and period converges (the profile simply
    /// restarts empty), so retries are safe.
    SetProfile {
        /// `Off` disarms; `Counting` attributes every step exactly;
        /// `Sampling` attributes on a deterministic interval clock.
        mode: obs::ProfileMode,
        /// Mean sampling interval in VM step units (ignored when not
        /// sampling; clamped to ≥ 1).
        period: u64,
    },
    /// Drain the collected profile. Cumulative with *set* semantics and
    /// journal-free, like `Telemetry`: the report always covers the whole
    /// run so far, the client keeps the cursor, and re-issuing the same
    /// drain returns the same report — safe to retry.
    ProfileReport {
        /// The client's last-seen unit cursor, echoed back so the client
        /// can detect a respawned (rewound) engine and reset.
        since: u64,
    },
    /// Liveness probe: the serve loop answers [`Response::Pong`] without
    /// involving the engine, so a healthy-but-busy boundary and a wedged
    /// one are distinguishable. Supervisors use it as a heartbeat; the
    /// echoed engine clock also feeds tracker↔engine clock alignment.
    Ping,
    /// Stop the inferior and shut the engine down. Under a session host
    /// this ends only the addressed session, never the host process.
    Terminate,
    /// Host-level: compile `source` and open a fresh session for it.
    ///
    /// Only a [`crate::host::SessionHost`] answers this (with
    /// [`Response::SessionOpened`]); the single-session serve loop
    /// rejects it. Sent with `session: None` in the envelope — it
    /// *creates* the id later frames will carry. The source text rides
    /// the command itself, so the host needs no shared filesystem with
    /// its clients.
    OpenSession {
        /// Logical file name; the extension selects the engine
        /// (`.c` → MiniC, `.s` → MiniAsm).
        file: String,
        /// Full program text.
        source: String,
        /// Optimization level for MiniC programs (0 = off, the default
        /// so older peers' frames decode unchanged; ignored by the
        /// assembly engine). The optimizer is observation-preserving, so
        /// sessions opened at different levels stay byte-identical
        /// through the debugging surface.
        #[serde(default)]
        opt: u8,
    },
    /// Host-level: tear down one session and free its table slot. The
    /// target id is a field, not the envelope `session`, so the reply
    /// routes to the control stream even when the session is already
    /// gone.
    CloseSession {
        /// Id returned by [`Response::SessionOpened`].
        session: u64,
    },
    /// Arm trace recording. Must precede `Start`: the store captures
    /// every pause from the first line on, so arming mid-run would leave
    /// a hole at the front of the recording. Journaled as configuration
    /// (like `SetSanitizer`), so a respawned engine re-arms and the
    /// journal replay rebuilds an equivalent recording. Re-arming before
    /// `Start` converges (the empty store is simply re-created), so
    /// retries are safe.
    Record {
        /// Keyframe cadence: one full snapshot per this many pauses
        /// (deltas in between). 0 is clamped to 1.
        keyframe_every: u32,
    },
    /// Jump the inspection cursor to a recorded pause — O(log n) through
    /// the store's keyframe index. While seeked, state inspections
    /// (`GetState`, `GetGlobals`, `GetVariable`) answer from the
    /// recording; any control command snaps back to the live position.
    /// Read-only and repeatable, so not journaled: a respawned engine
    /// comes back at its live position.
    Seek {
        /// Recorded pause index (0-based).
        pause: u64,
    },
    /// Query the recording's variable-write index: all writes to
    /// `variable` in `[from, to]`, or only the most recent one at or
    /// before `to` when `last_only`. Bare names match the variable in
    /// any frame plus globals; `frame::var` qualifies. Answered from the
    /// index by binary search — no replay.
    QueryHistory {
        /// Variable name, optionally frame-qualified.
        variable: String,
        /// First pause considered (default 0).
        from: Option<u64>,
        /// Last pause considered (default: end of recording).
        to: Option<u64>,
        /// Return only the latest hit.
        last_only: bool,
    },
    /// Fetch recording statistics: pauses captured, keyframes, and the
    /// store's serialized size. Read-only.
    TraceStats,
    /// Host-level, session-scoped: publish this session's recording
    /// under `name` on the host's trace shelf, where [`Command::OpenReplay`]
    /// can find it. Re-publishing the same recording converges.
    PublishTrace {
        /// Shelf key for the recording.
        name: String,
    },
    /// Host-level: open a *replay* session over a recording previously
    /// published with [`Command::PublishTrace`]. Like `OpenSession`, rides
    /// the control plane (`session: None`) and answers
    /// [`Response::SessionOpened`]; the new session serves the recorded
    /// execution (`Start`/`Step`/`Seek`/inspections/`QueryHistory`) from
    /// the shared store — record once, scrub many.
    OpenReplay {
        /// Shelf key the recording was published under.
        name: String,
    },
    /// Set (or clear) the session's hard resource budgets. Exceeding a
    /// budget surfaces as the typed [`Response::ResourceExhausted`] and
    /// ends the session — budgets are quota enforcement, not pause
    /// conditions. `None` clears that budget; the command converges
    /// (re-issuing the same limits is a no-op), so it retries safely and
    /// is journaled as configuration so a respawned session runs under
    /// the same quota.
    SetLimits {
        /// VM steps the inferior may execute, total.
        max_steps: Option<u64>,
        /// Live heap bytes the inferior may hold at once (MiniC).
        max_heap_bytes: Option<u64>,
        /// Accumulated engine execution wall time, in milliseconds,
        /// measured by the host across the session's run slices.
        max_wall_ms: Option<u64>,
        /// Commands the host will queue for the session at once.
        /// Exceeding it is the *retryable* [`Response::QueueFull`], not
        /// a terminal exhaustion.
        max_queue_depth: Option<u64>,
    },
}

/// Which governed resource a budget verdict is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceKind {
    /// VM steps executed ([`Command::SetLimits`] `max_steps`).
    Steps,
    /// Live heap bytes (`max_heap_bytes`).
    HeapBytes,
    /// Accumulated execution wall time in ms (`max_wall_ms`).
    WallMs,
    /// Per-session queued commands (`max_queue_depth`).
    QueueDepth,
}

impl ResourceKind {
    /// Stable short name, used in metrics and flight-recorder entries.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Steps => "steps",
            ResourceKind::HeapBytes => "heap_bytes",
            ResourceKind::WallMs => "wall_ms",
            ResourceKind::QueueDepth => "queue_depth",
        }
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Command {
    /// Stable short name of the command kind, used as the metric-name
    /// suffix in observability series (`mi.client.roundtrip.<kind>`,
    /// `mi.server.cmd.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            Command::Start => "Start",
            Command::Resume => "Resume",
            Command::Step => "Step",
            Command::Next => "Next",
            Command::Finish => "Finish",
            Command::SetBreakLine { .. } => "SetBreakLine",
            Command::SetBreakFunc { .. } => "SetBreakFunc",
            Command::TrackFunction { .. } => "TrackFunction",
            Command::Watch { .. } => "Watch",
            Command::Delete { .. } => "Delete",
            Command::GetState => "GetState",
            Command::GetGlobals => "GetGlobals",
            Command::GetVariable { .. } => "GetVariable",
            Command::GetRegisters => "GetRegisters",
            Command::ReadMemory { .. } => "ReadMemory",
            Command::GetOutput => "GetOutput",
            Command::GetExitCode => "GetExitCode",
            Command::GetSource => "GetSource",
            Command::GetBreakableLines => "GetBreakableLines",
            Command::Analyze => "Analyze",
            Command::Verify => "Verify",
            Command::SetSanitizer { .. } => "SetSanitizer",
            Command::Telemetry { .. } => "Telemetry",
            Command::SetProfile { .. } => "SetProfile",
            Command::ProfileReport { .. } => "ProfileReport",
            Command::Ping => "Ping",
            Command::Terminate => "Terminate",
            Command::OpenSession { .. } => "OpenSession",
            Command::CloseSession { .. } => "CloseSession",
            Command::Record { .. } => "Record",
            Command::Seek { .. } => "Seek",
            Command::QueryHistory { .. } => "QueryHistory",
            Command::TraceStats => "TraceStats",
            Command::PublishTrace { .. } => "PublishTrace",
            Command::OpenReplay { .. } => "OpenReplay",
            Command::SetLimits { .. } => "SetLimits",
        }
    }

    /// Whether re-issuing this command after a lost or timed-out response
    /// cannot change the inferior's state. The supervision layer only
    /// auto-retries idempotent commands; everything else surfaces the
    /// error (or triggers a full respawn) instead.
    ///
    /// `GetOutput` is deliberately *not* idempotent: it drains the output
    /// buffer, so a retry whose first attempt actually reached the engine
    /// would silently lose output. `Analyze` never touches the inferior,
    /// and `SetSanitizer` converges (setting the same mode twice is a
    /// no-op), so both retry safely. `Telemetry` is read-only — the
    /// drain cursor is carried *in* the command, not kept server-side —
    /// so the same request always returns the same frame. `SetProfile`
    /// converges like `SetSanitizer`, and `ProfileReport` is a
    /// cursor-in-command read like `Telemetry`. `OpenSession` is *not*
    /// idempotent — a retry whose first attempt landed would leak a
    /// session — and `CloseSession` is: closing an already-closed id is
    /// answered with a typed error the caller treats as done.
    /// `SetLimits` converges like `SetSanitizer`: setting the same
    /// budgets twice is a no-op. `Record` converges (re-arming before
    /// `Start` recreates the same empty store), `Seek` positions a
    /// read-only cursor (re-seeking the same pause lands in the same
    /// place), and `QueryHistory`/`TraceStats`/`PublishTrace` are pure
    /// reads of (or convergent writes keyed on) the finished recording —
    /// all retry safely. `OpenReplay` is *not* idempotent for the same
    /// reason as `OpenSession`: a retry whose first attempt landed would
    /// leak a replay session.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Command::GetState
                | Command::GetGlobals
                | Command::GetVariable { .. }
                | Command::GetRegisters
                | Command::ReadMemory { .. }
                | Command::GetExitCode
                | Command::GetSource
                | Command::GetBreakableLines
                | Command::Analyze
                | Command::Verify
                | Command::SetSanitizer { .. }
                | Command::Telemetry { .. }
                | Command::SetProfile { .. }
                | Command::ProfileReport { .. }
                | Command::Ping
                | Command::Terminate
                | Command::CloseSession { .. }
                | Command::Record { .. }
                | Command::Seek { .. }
                | Command::QueryHistory { .. }
                | Command::TraceStats
                | Command::PublishTrace { .. }
                | Command::SetLimits { .. }
        )
    }
}

/// The sequence-numbered wire envelope for a [`Command`].
///
/// [`crate::Client`] wraps every command in one of these; the server
/// echoes the `seq` back in the matching [`ResponseFrame`]. Sequence
/// numbers are what make the boundary robust against frame-level faults:
/// after a duplicated frame or a response lost mid-command, the client
/// can tell stale responses from the one it is waiting for and discard
/// them instead of silently desynchronizing. Servers keep accepting bare
/// [`Command`] frames from older peers and then answer with bare
/// [`Response`] frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandFrame {
    /// Client-assigned sequence number, strictly increasing per session.
    pub seq: u64,
    /// The command itself.
    pub cmd: Command,
    /// Trace context of the tracker-side span this command was sent
    /// under, if any: the engine tags the spans it opens while handling
    /// the command as children of this one, so both processes merge
    /// into a single trace. Absent on the wire (`null`) for peers and
    /// sessions that do not trace — older frames without the field
    /// decode as `None`.
    pub trace: Option<obs::TraceContext>,
    /// Session this frame addresses when talking to a
    /// [`crate::host::SessionHost`]. `None` is the single-session wire
    /// form unchanged from PR 2 (and the host's control plane:
    /// `OpenSession`/`CloseSession`/`Ping`/`Telemetry` ride with no
    /// session); older frames without the field decode as `None`.
    pub session: Option<u64>,
}

/// The sequence-numbered wire envelope for a [`Response`]; `seq` echoes
/// the triggering [`CommandFrame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseFrame {
    /// Sequence number of the command this responds to.
    pub seq: u64,
    /// The response itself.
    pub resp: Response,
    /// Echo of the commanding frame's `session`, so one connection can
    /// interleave many sessions' responses and the client can demux
    /// them without inspecting payloads. `None` from single-session
    /// servers and for host-level (control) replies.
    pub session: Option<u64>,
}

/// A response from the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Command accepted, nothing to report.
    Ok,
    /// The inferior paused (or exited) for this reason.
    Paused(PauseReason),
    /// A breakpoint/watchpoint was created.
    Created {
        /// Its identifier.
        id: u64,
    },
    /// Full state snapshot.
    State(Box<ProgramState>),
    /// Global variables.
    Globals(Vec<Variable>),
    /// A single variable (None when not found).
    Variable(Option<Variable>),
    /// Register values.
    Registers(Vec<Variable>),
    /// Raw memory bytes.
    Memory(Vec<u8>),
    /// Buffered output.
    Output(String),
    /// Exit code (None while running).
    ExitCode(Option<i64>),
    /// Source file name and text.
    Source {
        /// File name.
        file: String,
        /// Full text.
        text: String,
    },
    /// Lines that can hold a breakpoint.
    Lines(Vec<u32>),
    /// Static-analysis findings for [`Command::Analyze`].
    Diagnostics(Vec<Diagnostic>),
    /// Verifier findings for [`Command::Verify`], one rendered line per
    /// finding; empty means the loaded bytecode is well-formed.
    Verified {
        /// The findings, already formatted with function/op/line anchors.
        findings: Vec<String>,
    },
    /// One telemetry drain for [`Command::Telemetry`].
    Telemetry(Box<obs::TelemetryFrame>),
    /// One profile drain for [`Command::ProfileReport`].
    Profile(Box<obs::ProfileReport>),
    /// Answer to [`Command::OpenSession`]: the session is compiled,
    /// registered in the host's table, and ready for commands carrying
    /// this id in their envelope.
    SessionOpened {
        /// Host-assigned id, unique for the host's lifetime (never
        /// recycled, so a stale id is always a typed error rather than
        /// someone else's session).
        session: u64,
    },
    /// The addressed session no longer exists in the host (terminated,
    /// closed, or swept after its connection died). A typed liveness
    /// signal, distinct from [`Response::Error`]: the client maps it to
    /// engine loss so supervision re-opens the session and replays its
    /// journal, instead of surfacing a command failure.
    SessionGone {
        /// The id the rejected frame addressed.
        session: u64,
    },
    /// A hard per-session budget ([`Command::SetLimits`]) was exceeded.
    /// Terminal: the host sweeps the session after shipping this, so the
    /// client must not retry or replay — a deterministic replay would
    /// exhaust the same budget again. Distinct from [`Response::Error`]
    /// so supervisors can tell quota enforcement from command failure.
    ResourceExhausted {
        /// Which budget was exceeded.
        which: ResourceKind,
        /// Observed usage when the budget tripped.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The host refused admission: session table at `--max-sessions`
    /// capacity or run queue past its high-water mark. Nothing was
    /// executed, so retrying after backoff is safe for *any* command —
    /// the rejection happens before the command touches an engine.
    Overloaded {
        /// Current load on the refusing resource (open sessions or
        /// queued run slots).
        load: u64,
        /// The capacity it hit.
        limit: u64,
    },
    /// The session's own command queue is at its `max_queue_depth`.
    /// Like [`Response::Overloaded`], a pre-execution rejection:
    /// retryable with backoff, not terminal.
    QueueFull {
        /// Commands already queued for the session.
        depth: u64,
        /// The configured depth limit.
        limit: u64,
    },
    /// Answer to [`Command::QueryHistory`]: the matching writes, in
    /// pause order.
    History {
        /// Matching (pause, rendered value) pairs.
        hits: Vec<trace::HistoryHit>,
    },
    /// Answer to [`Command::TraceStats`]: the recording's shape so far.
    TraceStats {
        /// Pauses captured.
        pauses: u64,
        /// Full keyframe snapshots among them.
        keyframes: u64,
        /// Size of the store's serialized (on-disk) form.
        bytes: u64,
    },
    /// Answer to [`Command::Ping`]: the serve loop is alive and reading.
    Pong {
        /// The responder's monotonic clock (microseconds since its
        /// registry epoch; 0 when it has none). Together with the local
        /// send/receive times this estimates the cross-process clock
        /// offset used to merge traces.
        now_us: u64,
    },
    /// The command failed.
    Error {
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// Short single-line form for flight-recorder entries: the variant
    /// name plus the few fields cheap enough to keep in a bounded ring.
    pub fn summary(&self) -> String {
        match self {
            Response::Ok => "Ok".into(),
            Response::Paused(reason) => format!("Paused({reason})"),
            Response::Created { id } => format!("Created({id})"),
            Response::State(_) => "State".into(),
            Response::Globals(v) => format!("Globals({})", v.len()),
            Response::Variable(v) => format!("Variable({})", v.is_some()),
            Response::Registers(v) => format!("Registers({})", v.len()),
            Response::Memory(b) => format!("Memory({}B)", b.len()),
            Response::Output(s) => format!("Output({}B)", s.len()),
            Response::ExitCode(c) => format!("ExitCode({c:?})"),
            Response::Source { file, .. } => format!("Source({file})"),
            Response::Lines(v) => format!("Lines({})", v.len()),
            Response::Diagnostics(v) => format!("Diagnostics({})", v.len()),
            Response::Verified { findings } => format!("Verified({})", findings.len()),
            Response::Telemetry(f) => format!("Telemetry({} events)", f.events.len()),
            Response::Profile(r) => format!("Profile({}, {} units)", r.mode.name(), r.units),
            Response::SessionOpened { session } => format!("SessionOpened({session})"),
            Response::SessionGone { session } => format!("SessionGone({session})"),
            Response::ResourceExhausted { which, used, limit } => {
                format!("ResourceExhausted({which} {used}/{limit})")
            }
            Response::Overloaded { load, limit } => format!("Overloaded({load}/{limit})"),
            Response::QueueFull { depth, limit } => format!("QueueFull({depth}/{limit})"),
            Response::History { hits } => format!("History({})", hits.len()),
            Response::TraceStats {
                pauses,
                keyframes,
                bytes,
            } => format!("TraceStats({pauses} pauses, {keyframes} kf, {bytes}B)"),
            Response::Pong { now_us } => format!("Pong({now_us})"),
            Response::Error { message } => format!("Error({message})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::{ExitStatus, SourceLocation};

    #[test]
    fn commands_roundtrip_through_json() {
        let cmds = vec![
            Command::Start,
            Command::SetBreakFunc {
                function: "sort".into(),
                maxdepth: Some(3),
            },
            Command::Watch {
                variable: "main::x".into(),
            },
            Command::ReadMemory {
                addr: 0x1000,
                len: 64,
            },
            Command::Terminate,
        ];
        for c in cmds {
            let json = serde_json::to_string(&c).unwrap();
            let back: Command = serde_json::from_str(&json).unwrap();
            assert_eq!(c, back);
        }
    }

    #[test]
    fn envelopes_roundtrip_and_stay_distinguishable_from_bare_frames() {
        let cf = CommandFrame {
            seq: 7,
            cmd: Command::Step,
            trace: None,
            session: None,
        };
        let json = serde_json::to_string(&cf).unwrap();
        let back: CommandFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(cf, back);
        // An envelope never decodes as a bare command, and vice versa, so
        // the server can accept both wire forms unambiguously.
        assert!(serde_json::from_str::<Command>(&json).is_err());
        let bare = serde_json::to_string(&Command::Step).unwrap();
        assert!(serde_json::from_str::<CommandFrame>(&bare).is_err());

        let rf = ResponseFrame {
            seq: 7,
            resp: Response::Paused(PauseReason::Step),
            session: None,
        };
        let json = serde_json::to_string(&rf).unwrap();
        let back: ResponseFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(rf, back);
        assert!(serde_json::from_str::<Response>(&json).is_err());
    }

    #[test]
    fn trace_context_rides_the_envelope_and_stays_optional() {
        let cf = CommandFrame {
            seq: 3,
            cmd: Command::Resume,
            trace: Some(obs::TraceContext {
                trace_id: 0xAB,
                span_id: 0xCD,
            }),
            session: None,
        };
        let json = serde_json::to_string(&cf).unwrap();
        let back: CommandFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(cf, back);
        // Frames from peers predating the field decode with trace: None.
        let legacy = r#"{"seq":3,"cmd":"Resume"}"#;
        let back: CommandFrame = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.seq, 3);
        assert_eq!(back.trace, None);
    }

    #[test]
    fn session_rides_the_envelope_and_stays_optional() {
        let cf = CommandFrame {
            seq: 11,
            cmd: Command::Step,
            trace: None,
            session: Some(4),
        };
        let json = serde_json::to_string(&cf).unwrap();
        let back: CommandFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(cf, back);
        // Single-session peers predating the field still interoperate:
        // their frames decode with session: None on both directions.
        let legacy_cmd = r#"{"seq":11,"cmd":"Step"}"#;
        let back: CommandFrame = serde_json::from_str(legacy_cmd).unwrap();
        assert_eq!(back.session, None);
        let legacy_resp = r#"{"seq":11,"resp":"Ok"}"#;
        let back: ResponseFrame = serde_json::from_str(legacy_resp).unwrap();
        assert_eq!(back.session, None);
        assert_eq!(back.resp, Response::Ok);

        let rf = ResponseFrame {
            seq: 11,
            resp: Response::SessionOpened { session: 4 },
            session: Some(4),
        };
        let json = serde_json::to_string(&rf).unwrap();
        let back: ResponseFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(rf, back);
        assert_eq!(back.resp.summary(), "SessionOpened(4)");
    }

    #[test]
    fn session_commands_are_named_and_classified() {
        let open = Command::OpenSession {
            file: "t.c".into(),
            source: "int main() { return 0; }".into(),
            opt: 0,
        };
        assert_eq!(open.kind(), "OpenSession");
        assert!(!open.is_idempotent());
        let close = Command::CloseSession { session: 9 };
        assert_eq!(close.kind(), "CloseSession");
        assert!(close.is_idempotent());
        for cmd in [open, close] {
            let json = serde_json::to_string(&cmd).unwrap();
            let back: Command = serde_json::from_str(&json).unwrap();
            assert_eq!(cmd, back);
        }
    }

    #[test]
    fn telemetry_is_idempotent_and_named() {
        let cmd = Command::Telemetry { since: 40 };
        assert!(cmd.is_idempotent());
        assert_eq!(cmd.kind(), "Telemetry");
        let json = serde_json::to_string(&cmd).unwrap();
        let back: Command = serde_json::from_str(&json).unwrap();
        assert_eq!(cmd, back);
        let resp = Response::Telemetry(Box::default());
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
        assert_eq!(back.summary(), "Telemetry(0 events)");
    }

    #[test]
    fn profile_commands_are_idempotent_and_roundtrip() {
        let arm = Command::SetProfile {
            mode: obs::ProfileMode::Sampling,
            period: 64,
        };
        assert!(arm.is_idempotent());
        assert_eq!(arm.kind(), "SetProfile");
        let drain = Command::ProfileReport { since: 12 };
        assert!(drain.is_idempotent());
        assert_eq!(drain.kind(), "ProfileReport");
        for cmd in [arm, drain] {
            let json = serde_json::to_string(&cmd).unwrap();
            let back: Command = serde_json::from_str(&json).unwrap();
            assert_eq!(cmd, back);
        }
        let resp = Response::Profile(Box::default());
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
        assert_eq!(back.summary(), "Profile(off, 0 units)");
    }

    #[test]
    fn governance_commands_are_named_classified_and_roundtrip() {
        let limits = Command::SetLimits {
            max_steps: Some(10_000),
            max_heap_bytes: None,
            max_wall_ms: Some(250),
            max_queue_depth: Some(8),
        };
        assert_eq!(limits.kind(), "SetLimits");
        assert!(limits.is_idempotent(), "SetLimits converges, retry-safe");
        let json = serde_json::to_string(&limits).unwrap();
        let back: Command = serde_json::from_str(&json).unwrap();
        assert_eq!(limits, back);

        let rs = vec![
            Response::ResourceExhausted {
                which: ResourceKind::Steps,
                used: 10_001,
                limit: 10_000,
            },
            Response::Overloaded {
                load: 64,
                limit: 64,
            },
            Response::QueueFull { depth: 8, limit: 8 },
        ];
        for r in rs {
            let json = serde_json::to_string(&r).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(r, back);
        }
        assert_eq!(
            Response::ResourceExhausted {
                which: ResourceKind::WallMs,
                used: 300,
                limit: 250,
            }
            .summary(),
            "ResourceExhausted(wall_ms 300/250)"
        );
        assert_eq!(
            Response::Overloaded {
                load: 65,
                limit: 64
            }
            .summary(),
            "Overloaded(65/64)"
        );
        assert_eq!(
            Response::QueueFull { depth: 9, limit: 8 }.summary(),
            "QueueFull(9/8)"
        );
        for kind in [
            ResourceKind::Steps,
            ResourceKind::HeapBytes,
            ResourceKind::WallMs,
            ResourceKind::QueueDepth,
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let back: ResourceKind = serde_json::from_str(&json).unwrap();
            assert_eq!(kind, back);
        }
    }

    #[test]
    fn trace_commands_are_named_classified_and_roundtrip() {
        let record = Command::Record { keyframe_every: 32 };
        assert_eq!(record.kind(), "Record");
        assert!(record.is_idempotent(), "Record converges before Start");
        let seek = Command::Seek { pause: 1234 };
        assert_eq!(seek.kind(), "Seek");
        assert!(seek.is_idempotent(), "Seek is a read cursor");
        let query = Command::QueryHistory {
            variable: "main::x".into(),
            from: Some(10),
            to: None,
            last_only: false,
        };
        assert_eq!(query.kind(), "QueryHistory");
        assert!(query.is_idempotent());
        let stats = Command::TraceStats;
        assert_eq!(stats.kind(), "TraceStats");
        assert!(stats.is_idempotent());
        let publish = Command::PublishTrace {
            name: "run1".into(),
        };
        assert_eq!(publish.kind(), "PublishTrace");
        assert!(publish.is_idempotent(), "re-publishing converges");
        let replay = Command::OpenReplay {
            name: "run1".into(),
        };
        assert_eq!(replay.kind(), "OpenReplay");
        assert!(
            !replay.is_idempotent(),
            "a retried OpenReplay would leak a session, like OpenSession"
        );
        for cmd in [record, seek, query, stats, publish, replay] {
            let json = serde_json::to_string(&cmd).unwrap();
            let back: Command = serde_json::from_str(&json).unwrap();
            assert_eq!(cmd, back);
        }

        let hist = Response::History {
            hits: vec![trace::HistoryHit {
                pause: 41,
                value: "7".into(),
            }],
        };
        let json = serde_json::to_string(&hist).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(hist, back);
        assert_eq!(back.summary(), "History(1)");
        let stats = Response::TraceStats {
            pauses: 100_000,
            keyframes: 3125,
            bytes: 1 << 20,
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
        assert_eq!(
            back.summary(),
            "TraceStats(100000 pauses, 3125 kf, 1048576B)"
        );
    }

    #[test]
    fn old_peers_decode_frames_without_limits() {
        // A frame from a peer predating SetLimits carries none of the
        // governance vocabulary and must keep decoding unchanged.
        let legacy_cmd = r#"{"seq":21,"cmd":"Step"}"#;
        let back: CommandFrame = serde_json::from_str(legacy_cmd).unwrap();
        assert_eq!(back.cmd, Command::Step);
        // And a SetLimits encoded by a new peer is explicit JSON an old
        // reader would reject typed (unknown variant), never misparse.
        let cmd = Command::SetLimits {
            max_steps: None,
            max_heap_bytes: Some(1 << 20),
            max_wall_ms: None,
            max_queue_depth: None,
        };
        let json = serde_json::to_string(&cmd).unwrap();
        assert!(json.contains("SetLimits"), "{json}");
    }

    #[test]
    fn responses_roundtrip_through_json() {
        let rs = vec![
            Response::Ok,
            Response::Paused(PauseReason::Breakpoint {
                id: 2,
                location: SourceLocation::new("a.c", 7),
            }),
            Response::Paused(PauseReason::Exited(ExitStatus::Exited(3))),
            Response::Created { id: 9 },
            Response::ExitCode(None),
            Response::Memory(vec![1, 2, 3]),
            Response::Error {
                message: "nope".into(),
            },
        ];
        for r in rs {
            let json = serde_json::to_string(&r).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(r, back);
        }
    }
}
